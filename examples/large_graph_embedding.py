#!/usr/bin/env python
"""Embedding a graph whose embedding matrix does not fit in device memory.

This example reproduces the Section 3.3 scenario at laptop scale: the
simulated GPU is configured so that the full embedding matrix does not fit,
which forces GOSH through the partitioned engine (vertex-set partitioning,
inside-out rotations over sub-matrix pairs, host-side sample pools).  A
GraphVite-like baseline — which has no partitioning fallback — fails with an
out-of-memory error on the same device, exactly as Table 7 reports.

    python examples/large_graph_embedding.py
"""

from __future__ import annotations

from repro.baselines import GraphViteConfig, graphvite_embed
from repro.embedding import NORMAL, GoshEmbedder
from repro.eval import evaluate_embedding, train_test_split
from repro.gpu import DeviceMemoryError, DeviceSpec, SimulatedDevice
from repro.graph import social_community


def main() -> None:
    dim = 32
    graph = social_community(4000, intra_degree=12, hub_fraction=0.005, seed=7,
                             name="large-twin")
    print(f"Input graph: {graph}")

    # A device that can hold only ~one third of the embedding matrix.
    matrix_bytes = graph.num_vertices * dim * 4
    device = SimulatedDevice(spec=DeviceSpec(name="small-gpu", memory_bytes=matrix_bytes // 3))
    print(f"Embedding matrix needs {matrix_bytes / 1024:.0f} KiB, "
          f"device has {device.spec.memory_bytes / 1024:.0f} KiB")

    split = train_test_split(graph, seed=0)

    # GraphVite-like tools fail outright on this device.
    try:
        graphvite_embed(split.train_graph, GraphViteConfig(dim=dim, epochs=10), device=device)
    except DeviceMemoryError as exc:
        print(f"GraphVite-like baseline: OUT OF MEMORY ({exc})")

    # GOSH falls back to the partitioned engine and succeeds.
    config = NORMAL.scaled(0.2, dim=dim)
    result = GoshEmbedder(config, device=device).embed(split.train_graph)
    stats = result.large_graph_stats[0]
    print(f"GOSH used the partitioned engine: K = {stats.num_parts} parts, "
          f"{stats.rotations} rotations, {stats.kernels} pair kernels, "
          f"{stats.submatrix_switches} sub-matrix switches")
    print(f"Peak device memory: {device.peak_allocated_bytes / 1024:.0f} KiB "
          f"(capacity {device.spec.memory_bytes / 1024:.0f} KiB)")

    quality = evaluate_embedding(result.embedding, split, classifier="sgd", seed=0)
    print(f"Link-prediction AUCROC: {100 * quality.auc:.2f}%")


if __name__ == "__main__":
    main()
