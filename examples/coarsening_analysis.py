#!/usr/bin/env python
"""Analysing MultiEdgeCollapse: shrink rates, hub handling, and MILE comparison.

Reproduces the coarsening-focused experiments of the paper (Tables 4 and 5)
on a synthetic twin and prints per-level statistics for:

* sequential MultiEdgeCollapse (Algorithm 4),
* the parallel/vectorised variant (Section 3.2.2),
* the MILE heavy-edge-matching baseline.

    python examples/coarsening_analysis.py
"""

from __future__ import annotations

from repro.coarsening import (
    hub_merge_count,
    mile_coarsen,
    multi_edge_collapse,
    parallel_multi_edge_collapse,
    shrink_rates,
    summarize,
)
from repro.graph import social_community
from repro.harness import print_table


def describe(name: str, result) -> dict[str, object]:
    report = summarize(result)
    return {
        "coarsener": name,
        "levels": report.num_levels,
        "sizes": report.level_sizes,
        "last level": report.last_level_size,
        "mean shrink": round(report.mean_shrink_rate, 3),
        "total time (s)": round(report.total_time, 4),
    }


def main() -> None:
    graph = social_community(3000, intra_degree=14, hub_fraction=0.01, hub_reach=0.05,
                             seed=3, name="coarsening-demo")
    print(f"Input graph: {graph} (max degree {int(graph.degrees.max())})")

    sequential = multi_edge_collapse(graph, threshold=100)
    parallel = parallel_multi_edge_collapse(graph, threshold=100)
    mile = mile_coarsen(graph, num_levels=max(2, sequential.num_levels - 1))

    print_table(
        [describe("MultiEdgeCollapse (sequential)", sequential),
         describe("MultiEdgeCollapse (parallel)", parallel),
         describe("MILE (SEM + heavy-edge matching)", mile)],
        title="Coarsening comparison",
    )

    # Per-level shrink rates for the sequential coarsener.
    rows = []
    rates = shrink_rates(sequential)
    for i in range(1, sequential.num_levels):
        mapping = sequential.mappings[i - 1]
        rows.append({
            "level": i,
            "|V_i|": sequential.graphs[i].num_vertices,
            "|E_i|": sequential.graphs[i].num_undirected_edges,
            "shrink rate": round(rates[i - 1], 3),
            "clusters w/ 2+ hubs": hub_merge_count(sequential.graphs[i - 1], mapping),
        })
    print_table(rows, title="Sequential MultiEdgeCollapse per level")

    speedup = sequential.total_time() / max(parallel.total_time(), 1e-9)
    print(f"Parallel coarsening speedup over sequential: {speedup:.2f}x "
          f"(Table 4 reports 5.8-10.5x on billion-edge graphs with 32 threads)")


if __name__ == "__main__":
    main()
