#!/usr/bin/env python
"""Quickstart: embed a graph through the unified tool API and evaluate it.

Runs in a few seconds on a laptop:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import EmbeddingService, available_tools, get_tool
from repro.eval import run_link_prediction
from repro.graph import social_community


def main() -> None:
    # 1. Build (or load) a graph.  `social_community` produces a realistic
    #    community-structured graph with hub vertices; in practice you would
    #    use `repro.graph.read_edge_list("my_graph.txt")`.
    graph = social_community(1500, intra_degree=10, hub_fraction=0.01, seed=42)
    print(f"Input graph: {graph}")
    print(f"Registered tools: {', '.join(available_tools())}")

    # 2. Resolve a tool from the registry and embed.  Every backend returns
    #    the same `EmbeddingResult` envelope: the matrix plus per-stage
    #    timings and stats.  `epoch_scale` shrinks the epoch budget
    #    proportionally for small graphs; `dim` is the embedding dimension d.
    tool = get_tool("gosh-normal", dim=64, epoch_scale=0.3)
    result = tool.embed(graph)
    print(f"Coarsening levels: {result.stats['level_sizes']}")
    print(f"Epochs per level:  {result.stats['epochs_per_level']}")
    print(f"Embedding shape:   {result.embedding.shape}")
    print(f"Total time:        {result.seconds:.2f}s "
          f"(coarsening {result.timings['coarsening']:.2f}s)")

    # 3. Evaluate with the paper's link-prediction pipeline (80/20 split,
    #    Hadamard features, logistic regression, AUCROC).  The pipeline
    #    accepts the tool directly — no wrapper lambda needed.
    evaluation = run_link_prediction(graph, tool, seed=0)
    print(f"Link-prediction AUCROC: {100 * evaluation.auc:.2f}%")

    # 4. The serving layer: the `EmbeddingService` resolves tools by name and
    #    caches coarsening hierarchies, so sweeping GOSH configurations over
    #    the same graph coarsens it exactly once.
    service = EmbeddingService(dim=64, epoch_scale=0.3)
    fast = service.embed("gosh-fast", graph)       # builds the hierarchy
    slow = service.embed("gosh-slow", graph)       # reuses it
    print(f"Gosh-fast: {fast.seconds:.2f}s, Gosh-slow: {slow.seconds:.2f}s "
          f"(hierarchy cache hit: {slow.stats['hierarchy_cache_hit']})")
    print(f"Service stats: {service.stats()}")


if __name__ == "__main__":
    main()
