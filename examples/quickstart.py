#!/usr/bin/env python
"""Quickstart: embed a graph with GOSH and evaluate link prediction.

Runs in a few seconds on a laptop:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.embedding import FAST, NORMAL, embed
from repro.eval import run_link_prediction
from repro.graph import social_community


def main() -> None:
    # 1. Build (or load) a graph.  `social_community` produces a realistic
    #    community-structured graph with hub vertices; in practice you would
    #    use `repro.graph.read_edge_list("my_graph.txt")`.
    graph = social_community(1500, intra_degree=10, hub_fraction=0.01, seed=42)
    print(f"Input graph: {graph}")

    # 2. Pick a configuration (Table 3 of the paper) and embed.  `.scaled()`
    #    shrinks the epoch budget proportionally for small graphs; `dim` is
    #    the embedding dimension d.
    config = NORMAL.scaled(0.3, dim=64)
    result = embed(graph, config)
    print(f"Coarsening levels: {result.hierarchy.level_sizes()}")
    print(f"Epochs per level:  {result.epochs_per_level}")
    print(f"Embedding shape:   {result.embedding.shape}")
    print(f"Total time:        {result.total_seconds:.2f}s "
          f"(coarsening {result.coarsening_seconds:.2f}s)")

    # 3. Evaluate with the paper's link-prediction pipeline (80/20 split,
    #    Hadamard features, logistic regression, AUCROC).
    evaluation = run_link_prediction(
        graph,
        lambda train_graph: embed(train_graph, config).embedding,
        seed=0,
    )
    print(f"Link-prediction AUCROC: {100 * evaluation.auc:.2f}%")

    # 4. The fast configuration trades a little quality for a lot of speed.
    fast_eval = run_link_prediction(
        graph,
        lambda train_graph: embed(train_graph, FAST.scaled(0.3, dim=64)).embedding,
        seed=0,
    )
    print(f"Gosh-fast AUCROC:       {100 * fast_eval.auc:.2f}% "
          f"({fast_eval.embed_seconds:.2f}s vs {evaluation.embed_seconds:.2f}s)")


if __name__ == "__main__":
    main()
