#!/usr/bin/env python
"""Compare GOSH against the reimplemented baselines on one graph (mini Table 6).

Runs every tool in the `repro.api` registry — VERSE, MILE, the GraphVite-like
trainer, and the four GOSH configurations — on a single synthetic twin,
evaluates link prediction for each, and prints the paper's table format
(Algorithm, Time, Speedup vs VERSE, AUCROC).

    python examples/tool_comparison.py [dataset-name]
"""

from __future__ import annotations

import sys

from repro.api import available_tools
from repro.harness import ExperimentRunner, dataset_names, default_tools, load_dataset, print_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "com-dblp"
    if name not in dataset_names():
        raise SystemExit(f"unknown dataset {name!r}; options: {', '.join(dataset_names())}")
    graph = load_dataset(name, seed=0)
    print(f"Dataset twin: {graph}")
    print(f"Tool suite (from the registry): {', '.join(available_tools())}")

    # `default_tools` is a pure registry query: every registered tool,
    # instantiated with a shared dim / epoch budget so comparisons are fair.
    runner = ExperimentRunner(
        tools=default_tools(dim=32, epoch_scale=0.2, seed=0),
        baseline_tool="Verse",
        seed=0,
    )
    runner.run_graph(graph)
    print_table(runner.rows(), title=f"Tool comparison on the {name} twin "
                                     "(scaled-down epoch budgets)")

    gosh_fast = next(r for r in runner.results if r.tool == "Gosh-fast")
    verse = next(r for r in runner.results if r.tool == "Verse")
    print(f"Gosh-fast is {verse.seconds / gosh_fast.seconds:.1f}x faster than VERSE "
          f"with an AUCROC gap of {100 * (verse.auc - gosh_fast.auc):.2f} points.")


if __name__ == "__main__":
    main()
