"""Setuptools shim for environments without PEP 517 build tooling (offline installs)."""
from setuptools import setup

setup()
