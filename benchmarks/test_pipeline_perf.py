"""Perf smoke test: pipelined vs sequential large-graph execution.

Asserts the tentpole claim of the pipelined engine on a generated ~50k-edge
graph (12.5k vertices, m = 4 power-law): running Algorithm 5 with pool
production on a background producer thread (``execution_mode="pipelined"``)
is **≥ 1.3×** faster end-to-end than the single-threaded oracle
(``"sequential"``), at **bit-identical** output.

The workload is chosen so production carries a realistic share of the work
— ``degree_biased`` sampling (weighted searchsorted draws), B = 20 positive
samples per vertex, small-dimension embeddings — mirroring the paper's
regime where host-side sampling is substantial next to device kernels.  On
this workload the producer (pool build + direction split + scatter-plan
preparation + negative pre-draws) accounts for ~40% of sequential
wall-clock, an ideal overlap ceiling of ~1.7×; the floor leaves headroom
for imperfect overlap on a busy runner.

Thread overlap needs a second core: the test skips (rather than fails) on
single-CPU machines, where the measured print-out still reports the
producer/consumer split.  Marked ``perf`` so the tier-1 job skips it
(``-m "not perf"``); the CI perf-smoke job runs it non-blockingly.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np
import pytest

from repro.embedding import init_embedding
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.graph import powerlaw_cluster
from repro.large import LargeGraphConfig, LargeGraphTrainer

from conftest import record_perf_json

pytestmark = pytest.mark.perf

#: Floor deliberately below the ideal-overlap ceiling (~1.7x on this
#: workload) so imperfect overlap on a noisy CI runner does not flake.
PIPELINE_SPEEDUP_FLOOR = 1.3
REPS = 3
NUM_PARTS = 4
B = 20
DIM = 8
NS = 1
ROTATIONS = 3


def _cpus() -> int:
    """CPUs actually usable by this process (affinity-aware, conservative)."""
    cpu_count = os.cpu_count() or 1
    try:
        return min(len(os.sched_getaffinity(0)), cpu_count)
    except AttributeError:  # pragma: no cover - non-Linux
        return cpu_count


@pytest.fixture(scope="module")
def graph_50k():
    g = powerlaw_cluster(12_500, m=4, seed=0)
    assert g.num_undirected_edges >= 49_000
    return g


def _run(graph, mode: str) -> tuple[float, np.ndarray, object]:
    emb = init_embedding(graph.num_vertices, DIM, 0)
    matrix_bytes = graph.num_vertices * DIM * 4
    device = SimulatedDevice(spec=DeviceSpec(
        name="bench", memory_bytes=max(int(matrix_bytes * 0.9),
                                       3 * (matrix_bytes // NUM_PARTS) + 4096)))
    cfg = LargeGraphConfig(seed=0, min_parts=NUM_PARTS,
                           positive_batch_per_vertex=B, negative_samples=NS,
                           sampler_backend="degree_biased", execution_mode=mode)
    t0 = perf_counter()
    stats = LargeGraphTrainer(device, cfg).train(graph, emb, epochs=B * NUM_PARTS * ROTATIONS)
    return perf_counter() - t0, emb, stats


class TestPipelineSpeedup:
    def test_pipelined_1_3x_on_50k_edges(self, graph_50k):
        g = graph_50k
        times: dict[str, float] = {}
        embeddings: dict[str, np.ndarray] = {}
        stats: dict[str, object] = {}
        for mode in ("sequential", "pipelined"):
            best = float("inf")
            for _ in range(REPS):
                seconds, emb, st = _run(g, mode)
                best = min(best, seconds)
            times[mode], embeddings[mode], stats[mode] = best, emb, st

        produce = stats["sequential"].pool_produce_seconds
        print(f"\n[perf] pipelined engine on |V|={g.num_vertices}, "
              f"|E|={g.num_undirected_edges} (K={NUM_PARTS}, B={B}, dim={DIM}, "
              f"ns={NS}, {ROTATIONS} rotations, cpus={_cpus()}): "
              f"sequential={times['sequential'] * 1e3:.0f}ms "
              f"(produce={produce * 1e3:.0f}ms) "
              f"pipelined={times['pipelined'] * 1e3:.0f}ms "
              f"stall={stats['pipelined'].pool_stall_seconds * 1e3:.0f}ms "
              f"max_ready={stats['pipelined'].max_ready_pools} "
              f"speedup={times['sequential'] / times['pipelined']:.2f}x")

        # Scheduling must never change the result.
        assert np.array_equal(embeddings["sequential"], embeddings["pipelined"])
        assert stats["pipelined"].max_ready_pools <= 4   # S_GPU bound held

        # Record the CPU budget alongside the measurement: a 0.975x "speedup"
        # from a 1-CPU box is a fact about the runner, not the engine, and
        # the artifact must say so (PR-4 caveat follow-up).
        record_perf_json("pipeline_perf", {
            "vertices": g.num_vertices, "edges": g.num_undirected_edges,
            "parts": NUM_PARTS, "cpus": _cpus(),
            "cpu_count": os.cpu_count() or 1,
            "floor_engaged": _cpus() >= 2,
            "sequential_ms": round(times["sequential"] * 1e3, 1),
            "pipelined_ms": round(times["pipelined"] * 1e3, 1),
            "produce_ms": round(produce * 1e3, 1),
            "stall_ms": round(stats["pipelined"].pool_stall_seconds * 1e3, 1),
            "speedup": round(times["sequential"] / times["pipelined"], 3),
            "floor": PIPELINE_SPEEDUP_FLOOR,
        })

        if (os.cpu_count() or 1) < 2 or _cpus() < 2:
            pytest.skip(
                f"pipelined-overlap speedup floor needs >= 2 CPUs "
                f"(os.cpu_count()={os.cpu_count()}, usable={_cpus()}); "
                "parity and S_GPU bounds verified, floor skipped")
        speedup = times["sequential"] / times["pipelined"]
        assert speedup >= PIPELINE_SPEEDUP_FLOOR, (
            f"pipelined execution is only {speedup:.2f}x faster "
            f"(required: {PIPELINE_SPEEDUP_FLOOR}x)")
