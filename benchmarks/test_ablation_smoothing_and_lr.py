"""Ablations on the training schedule: smoothing ratio p and learning-rate decay.

The smoothing ratio controls how the epoch budget is split between uniform
and geometric (coarse-heavy) distribution; the paper leaves it as the main
user-facing performance/accuracy knob (it is what distinguishes fast, normal
and slow).  The learning-rate schedule resets at every level and decays
linearly within it.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.embedding import NORMAL, GoshEmbedder, distribute_epochs
from repro.eval import evaluate_embedding, train_test_split
from repro.harness import load_dataset, print_table

from conftest import BENCH_DIM, BENCH_SCALE

P_VALUES = (0.0, 0.1, 0.3, 0.5, 1.0)


@pytest.fixture(scope="module")
def split():
    graph = load_dataset("com-dblp", seed=0)
    return train_test_split(graph, seed=0)


def test_ablation_smoothing_ratio(split):
    rows = []
    aucs = {}
    for p in P_VALUES:
        cfg = NORMAL.scaled(max(BENCH_SCALE, 0.2), dim=BENCH_DIM).with_(smoothing_ratio=p)
        t0 = perf_counter()
        result = GoshEmbedder(cfg).embed(split.train_graph)
        seconds = perf_counter() - t0
        auc = evaluate_embedding(result.embedding, split, seed=0).auc
        aucs[p] = auc
        rows.append({
            "p": p,
            "epochs per level": result.epochs_per_level,
            "Time (s)": round(seconds, 3),
            "AUCROC (%)": round(100 * auc, 2),
        })
    print_table(rows, title="Ablation — smoothing ratio p (com-dblp twin)")
    # Every setting must learn something useful; the knob trades speed for
    # fine-level training, it should not destroy quality at either end.
    assert all(a > 0.6 for a in aucs.values())


def test_ablation_epoch_distribution_shape():
    rows = []
    for p in P_VALUES:
        rows.append({"p": p, "e_i for D=5, e=1000": distribute_epochs(1000, 5, p)})
    print_table(rows, title="Ablation — epoch distribution across 5 levels")
    geometric = distribute_epochs(1000, 5, 0.0)
    uniform = distribute_epochs(1000, 5, 1.0)
    assert geometric[-1] > uniform[-1]
    assert geometric[0] < uniform[0]


def test_ablation_learning_rate_decay(split):
    rows = []
    results = {}
    for floor, label in ((1e-4, "paper decay (floor 1e-4)"), (1.0, "no decay")):
        cfg = NORMAL.scaled(max(BENCH_SCALE, 0.2), dim=BENCH_DIM).with_(learning_rate_decay_floor=floor)
        result = GoshEmbedder(cfg).embed(split.train_graph)
        auc = evaluate_embedding(result.embedding, split, seed=0).auc
        results[label] = auc
        rows.append({"variant": label, "AUCROC (%)": round(100 * auc, 2)})
    print_table(rows, title="Ablation — learning-rate decay (com-dblp twin)")
    assert all(a > 0.55 for a in results.values())


def test_ablation_smoothing_benchmark(benchmark, split):
    cfg = NORMAL.scaled(BENCH_SCALE, dim=BENCH_DIM).with_(smoothing_ratio=0.3)
    benchmark.pedantic(lambda: GoshEmbedder(cfg).embed(split.train_graph), rounds=1, iterations=1)
