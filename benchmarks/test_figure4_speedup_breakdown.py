"""Figure 4 — speedup breakdown across intermediate GOSH versions.

The paper compares four versions against a 16-thread CPU baseline:

1. *Naive GPU* — no memory optimisations, no coarsening (slower than the CPU),
2. *Optimized GPU* — shared-memory staging + coalescing, no coarsening,
3. *Sequential coarsening* — optimized kernel + multilevel training,
4. *Parallel coarsening* — the final GOSH.

On this substrate the CPU baseline is the per-vertex Python VERSE loop (the
scalar reference) and the naive/optimized kernels are the two NumPy kernel
variants.  Two complementary metrics are reported, because the naive kernel's
penalty on a real GPU is *memory traffic*, which host wall-clock cannot see:

* ``Host time`` — wall-clock of the run (drives the coarsening speedups),
* ``Sim device time`` — the simulated device's cost model (compute at the
  measured lane efficiency plus transfers), which is where the
  naive-vs-optimized gap lives.

Asserted shape: naive costs more device time than optimized; adding
coarsening cuts host time; parallel coarsening does not lose those gains; and
the batched kernels beat the scalar CPU loop outright.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.embedding import FAST, GoshEmbedder, LevelTrainer, VerseConfig, init_embedding, verse_embed
from repro.gpu import SimulatedDevice
from repro.harness import load_dataset, print_table

from conftest import BENCH_DIM

GRAPH = "com-amazon"
EPOCHS = 20   # shared budget for every version; the CPU loop bounds this

#: Figure 4 reconstructs the paper's *intermediate versions*, whose economics
#: (kernel cost dominating coarsening cost) only hold for the loop-based
#: kernels — under the repo's vectorized default the 10-30ms host times would
#: make the version ordering a coin flip.  Pin the oracle backend.
KERNEL_BACKEND = "reference"


def _device_seconds(device: SimulatedDevice) -> float:
    return device.simulated_compute_seconds + device.simulated_transfer_seconds


@pytest.fixture(scope="module")
def breakdown():
    graph = load_dataset(GRAPH, seed=0)
    rows = []
    measurements: dict[str, tuple[float, float]] = {}

    # CPU baseline: scalar per-vertex loop (single core stands in for 16 threads).
    t0 = perf_counter()
    verse_embed(graph, VerseConfig(dim=BENCH_DIM, epochs=EPOCHS, mode="loop", seed=0))
    cpu_seconds = perf_counter() - t0
    rows.append({"Version": "CPU (loop baseline)", "Host time (s)": round(cpu_seconds, 3),
                 "Sim device time (s)": "-", "Speedup (host)": "1.00x"})
    measurements["cpu"] = (cpu_seconds, 0.0)

    def add(key: str, version: str, host: float, device: float) -> None:
        rows.append({
            "Version": version,
            "Host time (s)": round(host, 3),
            "Sim device time (s)": round(device, 6),
            "Speedup (host)": f"{cpu_seconds / max(host, 1e-9):.2f}x",
        })
        measurements[key] = (host, device)

    # Naive GPU kernel, no coarsening.
    device = SimulatedDevice()
    emb = init_embedding(graph.num_vertices, BENCH_DIM, 0)
    t0 = perf_counter()
    LevelTrainer(kernel="naive", backend=KERNEL_BACKEND, learning_rate=0.05,
                 seed=0, device=device).train(graph, emb, EPOCHS)
    add("naive", "Naive GPU (no coarsening)", perf_counter() - t0, _device_seconds(device))

    # Optimized GPU kernel, no coarsening.
    device = SimulatedDevice()
    emb = init_embedding(graph.num_vertices, BENCH_DIM, 0)
    t0 = perf_counter()
    LevelTrainer(kernel="optimized", backend=KERNEL_BACKEND, learning_rate=0.05,
                 seed=0, device=device).train(graph, emb, EPOCHS)
    add("optimized", "Optimized GPU (no coarsening)", perf_counter() - t0, _device_seconds(device))

    # Optimized kernel + sequential coarsening (multilevel).
    device = SimulatedDevice()
    cfg_seq = FAST.scaled(1.0, dim=BENCH_DIM).with_(epochs=EPOCHS, use_parallel_coarsening=False,
                                                    kernel_backend=KERNEL_BACKEND)
    t0 = perf_counter()
    GoshEmbedder(cfg_seq, device=device).embed(graph)
    add("seq", "Optimized GPU + sequential coarsening", perf_counter() - t0, _device_seconds(device))

    # Final GOSH: optimized kernel + parallel coarsening.
    device = SimulatedDevice()
    cfg_par = FAST.scaled(1.0, dim=BENCH_DIM).with_(epochs=EPOCHS, use_parallel_coarsening=True,
                                                    kernel_backend=KERNEL_BACKEND)
    t0 = perf_counter()
    GoshEmbedder(cfg_par, device=device).embed(graph)
    add("par", "Optimized GPU + parallel coarsening (GOSH)", perf_counter() - t0, _device_seconds(device))

    return rows, measurements


def test_figure4_speedup_breakdown(breakdown):
    rows, m = breakdown
    print_table(rows, title=f"Figure 4 — speedup breakdown on {GRAPH} ({EPOCHS} epochs)")
    cpu_host, _ = m["cpu"]
    # Memory-traffic claim: the naive kernel costs more simulated device time.
    assert m["naive"][1] > m["optimized"][1]
    # The batched (GPU-style) kernels beat the scalar CPU loop in host time.
    assert m["optimized"][0] < cpu_host
    # Coarsening cuts host time further, parallel coarsening keeps the gains.
    assert m["seq"][0] < m["optimized"][0]
    assert m["par"][0] <= m["seq"][0] * 1.15


def test_figure4_optimized_kernel_benchmark(benchmark):
    graph = load_dataset(GRAPH, seed=0)
    emb = init_embedding(graph.num_vertices, BENCH_DIM, 0)
    trainer = LevelTrainer(kernel="optimized", backend=KERNEL_BACKEND, seed=0)
    benchmark.pedantic(lambda: trainer.train(graph, emb, 5), rounds=3, iterations=1)


def test_figure4_naive_kernel_benchmark(benchmark):
    graph = load_dataset(GRAPH, seed=0)
    emb = init_embedding(graph.num_vertices, BENCH_DIM, 0)
    trainer = LevelTrainer(kernel="naive", backend=KERNEL_BACKEND, seed=0)
    benchmark.pedantic(lambda: trainer.train(graph, emb, 5), rounds=3, iterations=1)
