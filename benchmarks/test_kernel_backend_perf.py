"""Perf smoke test: the vectorized backend vs the reference backend.

Asserts the tentpole claim of the kernel-backend layer on a generated
~50k-edge graph (12.5k vertices, m = 4 power-law):

* whole-epoch training through the ``"vectorized"`` backend is **≥ 5×**
  faster than the ``"reference"`` backend (measured ≈ 10× locally), and
* the batched pair kernel (large-graph engine) is **≥ 2×** faster
  (measured ≈ 7×).

Timing isolates the kernels: samples are drawn once up front, so neither
sampler cost nor graph generation dilutes the ratio.  Both sides get a
warm-up call and best-of-``REPS`` timing to shrug off CI noise.

Marked ``perf`` so the tier-1 job can skip it (``-m "not perf"``); the CI
perf-smoke job runs it non-blockingly.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.embedding import init_embedding
from repro.gpu import get_backend
from repro.graph import powerlaw_cluster
from repro.graph.samplers import NegativeSampler, PositiveSampler

from conftest import record_perf_json

pytestmark = pytest.mark.perf

#: Thresholds are deliberately below the locally measured ratios (~10x epoch,
#: ~7x pair) so a noisy CI runner does not flake the job.
EPOCH_SPEEDUP_FLOOR = 5.0
PAIR_SPEEDUP_FLOOR = 2.0
REPS = 3


def _best_of(reps: int, fn) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def graph_50k():
    g = powerlaw_cluster(12_500, m=4, seed=0)
    assert g.num_undirected_edges >= 49_000
    return g


class TestVectorizedSpeedup:
    def test_epoch_kernel_5x_on_50k_edges(self, graph_50k):
        g = graph_50k
        rng = np.random.default_rng(0)
        sources = np.arange(g.num_vertices, dtype=np.int64)
        positives = PositiveSampler(g, seed=rng).sample(sources)
        negatives = NegativeSampler(g.num_vertices, seed=rng).sample((g.num_vertices, 3))
        base = init_embedding(g.num_vertices, 32, 1)

        times = {}
        for name in ("reference", "vectorized"):
            backend = get_backend(name)
            emb = base.copy()
            backend.train_epoch(emb, sources, positives, negatives, 0.035)  # warm-up
            times[name] = _best_of(
                REPS, lambda: backend.train_epoch(emb, sources, positives,
                                                  negatives, 0.035))
        speedup = times["reference"] / times["vectorized"]
        print(f"\n[perf] epoch kernel on |V|={g.num_vertices}, |E|={g.num_undirected_edges}: "
              f"reference={times['reference'] * 1e3:.1f}ms "
              f"vectorized={times['vectorized'] * 1e3:.1f}ms speedup={speedup:.1f}x")
        record_perf_json("kernel_epoch_perf", {
            "vertices": g.num_vertices, "edges": g.num_undirected_edges,
            "reference_ms": round(times["reference"] * 1e3, 2),
            "vectorized_ms": round(times["vectorized"] * 1e3, 2),
            "speedup": round(speedup, 2), "floor": EPOCH_SPEEDUP_FLOOR,
        })
        assert speedup >= EPOCH_SPEEDUP_FLOOR, (
            f"vectorized backend is only {speedup:.1f}x faster "
            f"(required: {EPOCH_SPEEDUP_FLOOR}x)")

    def test_pair_kernel_2x(self, graph_50k):
        g = graph_50k
        rng = np.random.default_rng(0)
        half = g.num_vertices // 2
        part_a = np.arange(half, dtype=np.int64)
        part_b = np.arange(half, g.num_vertices, dtype=np.int64)
        base_a = init_embedding(half, 32, 2)
        base_b = init_embedding(g.num_vertices - half, 32, 3)
        B = 5
        pos_src = np.repeat(part_a, B)
        pos_dst = part_b[rng.integers(0, part_b.shape[0], part_a.shape[0] * B)]

        times = {}
        for name in ("reference", "vectorized"):
            backend = get_backend(name)
            sub_a, sub_b = base_a.copy(), base_b.copy()

            def call():
                backend.train_pair(part_a, part_b, sub_a, sub_b, pos_src, pos_dst,
                                   3, 0.035, np.random.default_rng(1))

            call()  # warm-up
            times[name] = _best_of(REPS, call)
        speedup = times["reference"] / times["vectorized"]
        print(f"\n[perf] pair kernel (|V^a|={half}, B={B}): "
              f"reference={times['reference'] * 1e3:.1f}ms "
              f"vectorized={times['vectorized'] * 1e3:.1f}ms speedup={speedup:.1f}x")
        record_perf_json("kernel_pair_perf", {
            "part_size": half, "batch_per_vertex": B,
            "reference_ms": round(times["reference"] * 1e3, 2),
            "vectorized_ms": round(times["vectorized"] * 1e3, 2),
            "speedup": round(speedup, 2), "floor": PAIR_SPEEDUP_FLOOR,
        })
        assert speedup >= PAIR_SPEEDUP_FLOOR, (
            f"vectorized pair kernel is only {speedup:.1f}x faster "
            f"(required: {PAIR_SPEEDUP_FLOOR}x)")
