"""Perf smoke test: serving SLO under shard failure, and recovery time.

Two phases, one artifact (``bench_results/serve_failover.json``):

* **SLO under failure** — a router over 2 vertex ranges x 2 replicas takes
  closed-loop traffic while one replica is killed mid-run.  Within-request
  failover must absorb the kill: the run finishes with zero errors and the
  throughput floor intact, and the router's ``failovers`` counter shows the
  kill actually happened during traffic.
* **Recovery time** — a router over single-replica ranges has one shard
  killed and restarted at the same address; the recorded number is the
  wall-clock from restart to the background prober readmitting it
  (``healthy`` again), after which the range must serve correctly.

Floors sit far under local measurements (failover adds one refused connect
to the affected requests; readmission is bounded by the probe backoff cap)
so a noisy shared runner does not flake the non-blocking job.

Marked ``perf`` so the tier-1 job skips it.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.loadgen import LoadConfig, LoadGenerator
from repro.serve import HEALTH_HEALTHY, QueryServer, ServeClient, ServerThread, ShardRouter

from conftest import record_perf_json

pytestmark = pytest.mark.perf

CLIENTS = 8
DURATION_S = 2.0
TOP_K = 10
DIM = 16
NUM_VERTICES = 2_000
KILL_AFTER_S = 0.6

#: Floors.  Failover keeps most of the healthy throughput (the affected
#: requests pay one refused connect each); readmission is bounded by the
#: probe schedule (interval 0.05s, backoff cap 0.5s) plus server startup.
MIN_QUERIES_PER_S_UNDER_FAILURE = 50.0
MAX_RECOVERY_S = 5.0


def _shard_service_factory(store):
    def shard_service() -> EmbeddingService:
        return EmbeddingService(dim=DIM, epoch_scale=0.05, store=store)
    return shard_service


class TestServeFailover:
    def test_failover_slo_and_recovery_time(self, tmp_path):
        graph = powerlaw_cluster(NUM_VERTICES, m=3, seed=0)
        shard_service = _shard_service_factory(tmp_path / "store")
        shard_service().ensure_stored("gosh-fast", graph)      # warm once

        # ---- Phase A: kill a replica under closed-loop traffic -------- #
        router = ShardRouter.spawn(shard_service, {"bench": graph},
                                   shard_count=2, replicas=2,
                                   default_tool="gosh-fast",
                                   shard_timeout_s=5.0,
                                   probe_interval_s=0.1,
                                   probe_backoff_max_s=1.0)
        with router as address:
            victim = router._owned[0]            # range 0's primary replica
            killer = threading.Timer(KILL_AFTER_S, victim.stop)
            killer.start()
            report = LoadGenerator(LoadConfig(
                address=address, clients=CLIENTS, mode="closed",
                duration_s=DURATION_S, k=TOP_K,
                num_vertices=NUM_VERTICES, seed=11)).run()
            killer.join()
            failovers = sum(g.failovers for g in router.backend.groups)
            failure_counters = {
                "failovers": failovers,
                "shard_errors": router.backend.shard_errors,
                "requests_ok": router.backend.requests_ok,
                "requests_failed": router.backend.requests_failed,
            }
        lat = report.latency_ms
        print(f"\n[perf] failover: {CLIENTS} closed-loop clients, replica "
              f"killed at t={KILL_AFTER_S}s of {DURATION_S}s: "
              f"{report.queries_per_s:,.0f} queries/s, "
              f"p99={lat['p99']:.2f}ms, errors={report.errors}, "
              f"failovers={failovers}")

        # ---- Phase B: kill + restart, measure time-to-readmission ----- #
        router = ShardRouter.spawn(shard_service, {"bench": graph},
                                   shard_count=2,
                                   default_tool="gosh-fast",
                                   shard_timeout_s=5.0,
                                   probe_interval_s=0.05,
                                   probe_backoff_max_s=0.5)
        with router as address, \
                ServeClient(address, timeout_s=30.0) as client:
            expected = client.query(vertices=[0, NUM_VERTICES - 1], k=TOP_K)
            assert expected["ok"] is True
            link = router.backend.groups[1].links[0]
            dead_address = link.address
            router._owned[1].stop()
            failed = client.query(vertices=[NUM_VERTICES - 1], k=TOP_K)
            assert failed["ok"] is False         # the range is down ...

            restart_start = time.monotonic()
            host, _, port = dead_address.rpartition(":")
            replacement = None
            while replacement is None:
                assert time.monotonic() - restart_start < 10.0
                handle = ServerThread(QueryServer(
                    shard_service(), {"bench": graph},
                    host=host, port=int(port)))
                try:
                    handle.start()
                    replacement = handle
                except OSError:                  # port still in teardown
                    time.sleep(0.05)
            try:
                while link.health.state != HEALTH_HEALTHY:
                    assert time.monotonic() - restart_start < 30.0, \
                        "restarted shard was never readmitted"
                    time.sleep(0.01)
                recovery_s = time.monotonic() - restart_start
                recovered = client.query(vertices=[0, NUM_VERTICES - 1],
                                         k=TOP_K)
                assert recovered["ok"] is True   # ... and back, bit-exact
                assert recovered["ids"] == expected["ids"]
                assert recovered["scores"] == expected["scores"]
                readmissions = link.health.readmissions
                probes = {"sent": link.probes_sent, "ok": link.probes_ok}
            finally:
                replacement.stop()
        print(f"[perf] recovery: killed+restarted shard readmitted in "
              f"{recovery_s * 1e3:.0f}ms ({probes['sent']} probe(s) sent)")

        record_perf_json("serve_failover", {
            "graph": {"vertices": graph.num_vertices,
                      "edges": graph.num_undirected_edges, "dim": DIM},
            "failover": {
                "mode": "closed", "clients": CLIENTS,
                "duration_s": DURATION_S, "kill_after_s": KILL_AFTER_S,
                "shards": 2, "replicas": 2,
                **failure_counters,
                **report.as_json(),
            },
            "recovery": {
                "shards": 2, "replicas": 1,
                "probe_interval_s": 0.05, "probe_backoff_max_s": 0.5,
                "recovery_s": round(recovery_s, 4),
                "readmissions": readmissions,
                "probes": probes,
            },
            "floor": {
                "min_queries_per_s_under_failure":
                    MIN_QUERIES_PER_S_UNDER_FAILURE,
                "max_recovery_s": MAX_RECOVERY_S,
            },
        })

        # SLO under failure: the kill is absorbed, not surfaced to clients.
        assert report.answered > 0
        assert report.errors == 0, f"{report.errors} requests failed over a " \
                                   f"replicated range"
        assert report.timeouts == 0 and report.disconnects == 0
        assert failovers >= 1, "the kill never exercised failover"
        assert report.queries_per_s >= MIN_QUERIES_PER_S_UNDER_FAILURE

        # Recovery: the prober readmitted the restarted shard promptly.
        assert readmissions >= 1
        assert recovery_s <= MAX_RECOVERY_S, (
            f"readmission took {recovery_s:.2f}s "
            f"(bound: {MAX_RECOVERY_S}s)")
