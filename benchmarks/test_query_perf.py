"""Perf smoke test: blocked vs exact k-NN query serving throughput.

Asserts the tentpole claim of the query layer on a 50k x 64 float32 matrix
with a 96-query microbatch (the serving shape: many small concurrent
requests stacked by ``EmbeddingService.query_batch``): the ``"blocked"``
backend — chunked matmul, per-block candidate selection, no materialised
``|V| x Q`` score matrix, no full sorts — answers **≥ 5×** faster than the
``"exact"`` brute-force oracle.  Both backends return bit-identical answers
(asserted here too, on the measured batch), so the comparison is
answer-for-answer.

Marked ``perf`` so the tier-1 job skips it (``-m "not perf"``); the CI
perf-smoke job runs it non-blockingly and uploads the JSON recorded via
``record_perf_json`` as a workflow artifact.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np
import pytest

from repro.query import PreparedMatrix, get_query_backend

from conftest import record_perf_json

pytestmark = pytest.mark.perf

#: Floor deliberately below the locally measured ratio (~9-10x) so a noisy
#: CI runner does not flake the job.
QUERY_SPEEDUP_FLOOR = 5.0
REPS = 3

NUM_ROWS = int(os.environ.get("REPRO_QUERY_BENCH_ROWS", "50000"))
DIM = int(os.environ.get("REPRO_QUERY_BENCH_DIM", "64"))
NUM_QUERIES = int(os.environ.get("REPRO_QUERY_BENCH_QUERIES", "96"))
TOP_K = 10
BLOCK_ROWS = 4096


def _best_of(reps: int, fn) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


class TestQueryThroughput:
    def test_blocked_backend_5x_on_50k_vertices(self):
        rng = np.random.default_rng(7)
        matrix = rng.standard_normal((NUM_ROWS, DIM)).astype(np.float32)
        queries = rng.standard_normal((NUM_QUERIES, DIM)).astype(np.float32)
        prepared = PreparedMatrix(matrix, metric="cosine")
        prepared.inv_norms                      # shared precompute off the clock

        times = {}
        answers = {}
        for name in ("exact", "blocked"):
            backend = get_query_backend(name)

            def batch(backend=backend):
                return backend.topk(prepared, queries, TOP_K,
                                    block_rows=BLOCK_ROWS)

            answers[name] = batch()             # warm-up (and parity check)
            times[name] = _best_of(REPS, batch)

        # Work-for-work: identical ids and score bits on the measured batch.
        assert (answers["exact"][0] == answers["blocked"][0]).all()
        assert (answers["exact"][1] == answers["blocked"][1]).all()

        speedup = times["exact"] / times["blocked"]
        queries_per_s = NUM_QUERIES / times["blocked"]
        print(f"\n[perf] top-{TOP_K} over {NUM_ROWS}x{DIM} "
              f"({NUM_QUERIES}-query microbatch, block_rows={BLOCK_ROWS}): "
              f"exact={times['exact'] * 1e3:.1f}ms "
              f"blocked={times['blocked'] * 1e3:.1f}ms "
              f"speedup={speedup:.1f}x ({queries_per_s:,.0f} queries/s)")
        record_perf_json("query_backend_perf", {
            "rows": NUM_ROWS, "dim": DIM, "queries": NUM_QUERIES,
            "top_k": TOP_K, "block_rows": BLOCK_ROWS,
            "exact_ms": round(times["exact"] * 1e3, 2),
            "blocked_ms": round(times["blocked"] * 1e3, 2),
            "speedup": round(speedup, 2),
            "queries_per_s": round(queries_per_s, 1),
            "floor": QUERY_SPEEDUP_FLOOR,
        })
        assert speedup >= QUERY_SPEEDUP_FLOOR, (
            f"blocked query backend is only {speedup:.1f}x faster "
            f"(required: {QUERY_SPEEDUP_FLOOR}x)")
