"""Perf smoke test: vectorized vs reference host-side sample-pool production.

Asserts the tentpole claim of the sampler-backend layer on a generated
~50k-edge graph (12.5k vertices, m = 4 power-law): producing one full
rotation's worth of sample pools through the ``"vectorized"`` backend is
**≥ 5×** faster than through the ``"reference"`` per-vertex loop.

The measurement is steady-state pool production — the large-graph engine's
hot loop: managers are warmed with one full rotation first (which also fills
the vectorized backend's per-(part, partner-part) filtered-adjacency cache,
exactly as repeated rotations reuse it), then the best of ``REPS`` full
rotations is timed per backend.  Both backends draw identical pairs for a
fixed seed, so the comparison is work-for-work.

Marked ``perf`` so the tier-1 job can skip it (``-m "not perf"``); the CI
perf-smoke job runs it non-blockingly.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np
import pytest

from repro.graph import contiguous_partition, powerlaw_cluster
from repro.large import SamplePoolManager
from repro.large.rotation import inside_out_order

from conftest import record_perf_json

pytestmark = pytest.mark.perf

#: Floor deliberately below the locally measured ratio (~40-80x) so a noisy
#: CI runner does not flake the job.
POOL_SPEEDUP_FLOOR = 5.0
REPS = 3
NUM_PARTS = 4
B = 5


def _best_of(reps: int, fn) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = perf_counter()
        fn()
        best = min(best, perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def graph_50k():
    g = powerlaw_cluster(12_500, m=4, seed=0)
    assert g.num_undirected_edges >= 49_000
    return g


class TestSamplerSpeedup:
    def test_pool_production_5x_on_50k_edges(self, graph_50k):
        g = graph_50k
        partition = contiguous_partition(g.num_vertices, NUM_PARTS)
        order = inside_out_order(NUM_PARTS)

        times = {}
        samples = {}
        for name in ("reference", "vectorized"):
            manager = SamplePoolManager(graph=g, partition=partition,
                                        batch_per_vertex=B, seed=0,
                                        sampler_backend=name)

            def rotation():
                for a, b in order:
                    manager.build_pool(a, b)

            rotation()  # warm-up (fills the filtered-adjacency cache)
            times[name] = _best_of(REPS, rotation)
            samples[name] = manager.samples_produced

        assert samples["reference"] == samples["vectorized"]  # same work
        speedup = times["reference"] / times["vectorized"]
        print(f"\n[perf] pool production on |V|={g.num_vertices}, "
              f"|E|={g.num_undirected_edges} (K={NUM_PARTS}, B={B}): "
              f"reference={times['reference'] * 1e3:.1f}ms "
              f"vectorized={times['vectorized'] * 1e3:.1f}ms speedup={speedup:.1f}x")
        record_perf_json("sampler_pool_perf", {
            "vertices": g.num_vertices, "edges": g.num_undirected_edges,
            "parts": NUM_PARTS, "batch_per_vertex": B,
            "reference_ms": round(times["reference"] * 1e3, 2),
            "vectorized_ms": round(times["vectorized"] * 1e3, 2),
            "speedup": round(speedup, 2), "floor": POOL_SPEEDUP_FLOOR,
        })
        assert speedup >= POOL_SPEEDUP_FLOOR, (
            f"vectorized sampler is only {speedup:.1f}x faster "
            f"(required: {POOL_SPEEDUP_FLOOR}x)")
