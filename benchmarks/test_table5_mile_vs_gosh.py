"""Table 5 — MILE vs GOSH coarsening per level on the com-orkut twin.

The paper fixes 8 coarsening levels and reports per-level time and |V_i| for
both tools; GOSH shrinks to a few hundred vertices while MILE is still above
ten thousand, at a fraction of the time.  At twin scale we use fewer levels
but verify the same two claims: much smaller last level and much lower total
time for MultiEdgeCollapse.
"""

from __future__ import annotations

import pytest

from repro.coarsening import mile_coarsen, multi_edge_collapse
from repro.harness import load_dataset, print_table

NUM_LEVELS = 6


@pytest.fixture(scope="module")
def orkut_twin():
    return load_dataset("com-orkut", seed=0)


def test_table5_per_level_comparison(orkut_twin):
    gosh = multi_edge_collapse(orkut_twin, threshold=1, max_levels=NUM_LEVELS)
    mile = mile_coarsen(orkut_twin, num_levels=NUM_LEVELS)

    rows = []
    depth = max(gosh.num_levels, mile.num_levels)
    for i in range(depth):
        rows.append({
            "i": i,
            "Mile time (s)": round(mile.level_times[i - 1], 4) if 0 < i < mile.num_levels else "-",
            "Mile |Vi|": mile.graphs[i].num_vertices if i < mile.num_levels else "-",
            "Gosh time (s)": round(gosh.level_times[i - 1], 4) if 0 < i < gosh.num_levels else "-",
            "Gosh |Vi|": gosh.graphs[i].num_vertices if i < gosh.num_levels else "-",
        })
    rows.append({
        "i": "Total",
        "Mile time (s)": round(mile.total_time(), 4),
        "Mile |Vi|": "-",
        "Gosh time (s)": round(gosh.total_time(), 4),
        "Gosh |Vi|": "-",
    })
    print_table(rows, title="Table 5 — Mile vs Gosh coarsening on the com-orkut twin")

    # Paper claims: Gosh coarsening is much faster and shrinks much further.
    assert gosh.total_time() < mile.total_time()
    assert gosh.graphs[-1].num_vertices < mile.graphs[-1].num_vertices


def test_table5_gosh_coarsening_benchmark(benchmark, orkut_twin):
    result = benchmark.pedantic(
        lambda: multi_edge_collapse(orkut_twin, threshold=1, max_levels=NUM_LEVELS),
        rounds=2, iterations=1,
    )
    assert result.num_levels >= 3


def test_table5_mile_coarsening_benchmark(benchmark, orkut_twin):
    result = benchmark.pedantic(
        lambda: mile_coarsen(orkut_twin, num_levels=NUM_LEVELS),
        rounds=1, iterations=1,
    )
    assert result.num_levels >= 2
