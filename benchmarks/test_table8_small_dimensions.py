"""Table 8 — small-dimension embedding with and without warp packing (SM).

The paper's claim: without the small-dimension optimisation, d = 8, 16 and 32
all take the same time (idle warp lanes absorb the difference); with it,
d = 8 is ~2.6-2.7x faster and d = 16 ~1.8-1.9x faster, while d = 32 is
unchanged.  The execution-geometry claim is verified exactly through the warp
model's lane efficiency; the wall-clock table is regenerated from the
simulated device's compute-cost model, which uses that efficiency.
"""

from __future__ import annotations

import pytest

from repro.embedding import LevelTrainer, init_embedding
from repro.gpu import SimulatedDevice, warp_lane_efficiency
from repro.harness import load_dataset, print_table

from conftest import BENCH_SCALE

DIMS = (8, 16, 32)
GRAPHS = ("com-orkut", "soc-LiveJournal")


def _simulated_time(graph, dim: int, small_dim_mode: bool, epochs: int) -> float:
    device = SimulatedDevice()
    emb = init_embedding(graph.num_vertices, dim, 0)
    trainer = LevelTrainer(negative_samples=3, learning_rate=0.05,
                           small_dim_mode=small_dim_mode, device=device, seed=0)
    trainer.train(graph, emb, epochs)
    return device.simulated_compute_seconds


@pytest.fixture(scope="module")
def table8_rows():
    epochs = max(2, int(100 * BENCH_SCALE))
    rows = []
    for name in GRAPHS:
        graph = load_dataset(name, seed=0)
        for small_dim in (False, True):
            for dim in DIMS:
                rows.append({
                    "Graph": name,
                    "SM": "Yes" if small_dim else "No",
                    "d": dim,
                    "sim time (s)": round(_simulated_time(graph, dim, small_dim, epochs), 6),
                })
    return rows


def test_table8_small_dimension_shape(table8_rows):
    print_table(table8_rows, title="Table 8 — small-dimension embedding (simulated kernel cost)")
    by_key = {(r["Graph"], r["SM"], r["d"]): r["sim time (s)"] for r in table8_rows}
    for name in GRAPHS:
        # Without SM: d=8, 16, 32 take (approximately) the same time.
        no_sm = [by_key[(name, "No", d)] for d in DIMS]
        assert max(no_sm) / min(no_sm) < 1.15
        # With SM: d=8 and d=16 get large speedups, d=32 is unchanged.
        assert by_key[(name, "No", 8)] / by_key[(name, "Yes", 8)] > 2.0
        assert by_key[(name, "No", 16)] / by_key[(name, "Yes", 16)] > 1.5
        ratio_32 = by_key[(name, "No", 32)] / by_key[(name, "Yes", 32)]
        assert 0.8 < ratio_32 < 1.25


def test_table8_lane_efficiency_model():
    # The execution-geometry claim behind Table 8, independent of any graph.
    assert warp_lane_efficiency(8, small_dim_mode=True) / warp_lane_efficiency(8, small_dim_mode=False) == pytest.approx(4.0)
    assert warp_lane_efficiency(16, small_dim_mode=True) / warp_lane_efficiency(16, small_dim_mode=False) == pytest.approx(2.0)
    assert warp_lane_efficiency(32, small_dim_mode=True) == warp_lane_efficiency(32, small_dim_mode=False)


def test_table8_d8_kernel_benchmark(benchmark):
    graph = load_dataset("com-orkut", seed=0)
    emb = init_embedding(graph.num_vertices, 8, 0)
    trainer = LevelTrainer(negative_samples=3, small_dim_mode=True, seed=0)
    benchmark.pedantic(lambda: trainer.train(graph, emb, 2), rounds=3, iterations=1)
