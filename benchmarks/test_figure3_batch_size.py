"""Figure 3 — effect of the positive batch size B on large-graph embedding.

The paper sweeps B for hyperlink2012 and shows the trade-off: larger B means
fewer rotations (faster) but more isolated updates per sub-matrix pair (lower
AUCROC).  The bench reproduces the sweep on the hyperlink twin with the
memory-constrained device and asserts both directions of the trade-off.
"""

from __future__ import annotations

from time import perf_counter

import pytest

from repro.embedding import NORMAL, GoshEmbedder
from repro.eval import evaluate_embedding, train_test_split
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.harness import load_dataset, print_table

from conftest import BENCH_DIM, BENCH_SCALE

B_VALUES = (1, 3, 5, 10, 20)


@pytest.fixture(scope="module")
def figure3_rows():
    graph = load_dataset("hyperlink2012", seed=0)
    split = train_test_split(graph, seed=0)
    matrix_bytes = graph.num_vertices * BENCH_DIM * 4
    rows = []
    for B in B_VALUES:
        device = SimulatedDevice(spec=DeviceSpec(name="constrained",
                                                 memory_bytes=max(matrix_bytes // 3, 64 * 1024)))
        cfg = NORMAL.scaled(BENCH_SCALE, dim=BENCH_DIM).with_(positive_batch_per_vertex=B)
        t0 = perf_counter()
        result = GoshEmbedder(cfg, device=device).embed(split.train_graph)
        seconds = perf_counter() - t0
        quality = evaluate_embedding(result.embedding, split, classifier="sgd", seed=0)
        stats = result.large_graph_stats[0] if result.large_graph_stats else None
        rows.append({
            "B": B,
            "Time (s)": round(seconds, 3),
            "AUCROC (%)": round(100 * quality.auc, 2),
            "rotations": stats.rotations if stats else "-",
            "kernels": stats.kernels if stats else "-",
        })
    return rows


def test_figure3_batch_size_tradeoff(figure3_rows):
    print_table(figure3_rows, title="Figure 3 — batch size B vs time and AUCROC (hyperlink twin)")
    by_b = {r["B"]: r for r in figure3_rows}
    # Larger B => fewer rotations (the mechanism behind the paper's speedup).
    assert by_b[20]["rotations"] <= by_b[1]["rotations"]
    assert by_b[5]["rotations"] <= by_b[1]["rotations"]
    # Larger B => fewer rotation sweeps => lower or comparable embedding time.
    assert by_b[5]["Time (s)"] <= by_b[1]["Time (s)"] * 1.25
    # Quality stays in a usable band across the sweep.  Note: at twin scale
    # the rotation count is quantised (ceil(e / (B*K)) reaches 1 quickly), so
    # the paper's accuracy *degradation* at large B is muted here; the bench
    # verifies the speed mechanism and records the AUCROC series for
    # EXPERIMENTS.md rather than asserting the degradation direction.
    aucs = [r["AUCROC (%)"] for r in figure3_rows]
    assert all(a > 55.0 for a in aucs)
    assert max(aucs) - min(aucs) < 20.0


def test_figure3_single_point_benchmark(benchmark):
    graph = load_dataset("hyperlink2012", seed=0)
    matrix_bytes = graph.num_vertices * BENCH_DIM * 4
    cfg = NORMAL.scaled(BENCH_SCALE, dim=BENCH_DIM).with_(positive_batch_per_vertex=5)

    def run():
        device = SimulatedDevice(spec=DeviceSpec(name="constrained",
                                                 memory_bytes=max(matrix_bytes // 3, 64 * 1024)))
        return GoshEmbedder(cfg, device=device).embed(graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.embedding.shape[0] == graph.num_vertices
