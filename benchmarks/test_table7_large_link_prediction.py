"""Table 7 — link prediction on the large-scale twins (partitioned engine).

The paper's large graphs do not fit on the GPU: GraphVite runs out of memory,
MILE/VERSE time out, and GOSH embeds them through the Section 3.3 engine.
The bench reproduces that situation by shrinking the simulated device below
the size of the embedding matrix, then reports the same rows: Algorithm,
Time, AUCROC — with the GraphVite row showing the out-of-memory failure.
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest

from repro.baselines import GraphViteConfig, graphvite_embed
from repro.embedding import FAST, NORMAL, SLOW, GoshEmbedder
from repro.eval import evaluate_embedding, train_test_split
from repro.gpu import DeviceMemoryError, DeviceSpec, SimulatedDevice
from repro.harness import LARGE_DATASETS, load_dataset, print_table

from conftest import BENCH_DIM, BENCH_SCALE

_selector = os.environ.get("REPRO_BENCH_TABLE7_GRAPHS", "hyperlink2012,soc-sinaweibo")
if _selector.strip().lower() == "all":
    GRAPH_NAMES = [spec.name for spec in LARGE_DATASETS]
else:
    GRAPH_NAMES = [name.strip() for name in _selector.split(",") if name.strip()]


def _constrained_device(num_vertices: int, dim: int) -> SimulatedDevice:
    """A device that can hold roughly a third of the embedding matrix."""
    matrix_bytes = num_vertices * dim * 4
    return SimulatedDevice(spec=DeviceSpec(name="constrained", memory_bytes=max(matrix_bytes // 3, 64 * 1024)))


@pytest.fixture(scope="module")
def table7_rows():
    rows = []
    for name in GRAPH_NAMES:
        graph = load_dataset(name, seed=0)
        split = train_test_split(graph, seed=0)
        device = _constrained_device(graph.num_vertices, BENCH_DIM)

        # GraphVite-like: must fail with out-of-memory (no partitioning fallback).
        try:
            graphvite_embed(split.train_graph, GraphViteConfig(dim=BENCH_DIM, epochs=10),
                            device=device)
            graphvite_row = "ran (unexpected)"
        except DeviceMemoryError:
            graphvite_row = "out of device memory"
        rows.append({"Graph": name, "Algorithm": "Graphvite", "Time (s)": "-",
                     "AUCROC (%)": "-", "Note": graphvite_row})

        for cfg0 in (FAST, NORMAL, SLOW):
            cfg = cfg0.scaled(BENCH_SCALE, dim=BENCH_DIM)
            t0 = perf_counter()
            result = GoshEmbedder(cfg, device=device).embed(split.train_graph)
            seconds = perf_counter() - t0
            quality = evaluate_embedding(result.embedding, split, classifier="sgd", seed=0)
            rows.append({
                "Graph": name,
                "Algorithm": f"Gosh-{cfg0.name}",
                "Time (s)": round(seconds, 3),
                "AUCROC (%)": round(100 * quality.auc, 2),
                "Note": f"K parts used: {result.large_graph_stats[0].num_parts}"
                if result.large_graph_stats else "in-memory",
            })
        device.reset()
    return rows


def test_table7_large_graph_rows(table7_rows):
    print_table(table7_rows, title=f"Table 7 — large twins on a memory-constrained device (scale={BENCH_SCALE})")
    gosh_rows = [r for r in table7_rows if str(r["Algorithm"]).startswith("Gosh")]
    graphvite_rows = [r for r in table7_rows if r["Algorithm"] == "Graphvite"]
    # GraphVite must fail on every large twin, GOSH must succeed on every one.
    assert all(r["Note"] == "out of device memory" for r in graphvite_rows)
    assert all(isinstance(r["AUCROC (%)"], float) and r["AUCROC (%)"] > 55.0 for r in gosh_rows)
    # the partitioned engine (not the in-memory path) must have been used
    assert all("K parts" in str(r["Note"]) for r in gosh_rows)


def test_table7_gosh_fast_partitioned_benchmark(benchmark):
    graph = load_dataset(GRAPH_NAMES[0], seed=0)
    device = _constrained_device(graph.num_vertices, BENCH_DIM)
    cfg = FAST.scaled(BENCH_SCALE, dim=BENCH_DIM)

    def run():
        device.reset()
        return GoshEmbedder(cfg, device=device).embed(graph)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.embedding.shape[0] == graph.num_vertices
