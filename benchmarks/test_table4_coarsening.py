"""Table 4 — sequential vs parallel coarsening on the large-scale twins.

The paper reports, per large graph: coarsening time for τ=1 and τ=32, the
speedup, the number of levels D, and the last-level size |V_{D-1}|.  Here the
"parallel" algorithm is the vectorised implementation (see DESIGN.md), so the
speedup column measures vectorised-vs-scalar on the same machine; the shape
claim (parallel much faster, same level structure) is what is verified.
"""

from __future__ import annotations

import pytest

from repro.coarsening import multi_edge_collapse, parallel_multi_edge_collapse
from repro.harness import LARGE_DATASETS, load_dataset, print_table


@pytest.fixture(scope="module")
def table4_rows():
    rows = []
    for spec in LARGE_DATASETS:
        graph = load_dataset(spec.name, seed=0)
        seq = multi_edge_collapse(graph, threshold=100)
        par = parallel_multi_edge_collapse(graph, threshold=100)
        speedup = seq.total_time() / max(par.total_time(), 1e-9)
        rows.append({
            "Graph": spec.name,
            "seq time (s)": round(seq.total_time(), 4),
            "par time (s)": round(par.total_time(), 4),
            "Speedup": f"{speedup:.2f}x",
            "D (seq)": seq.num_levels,
            "D (par)": par.num_levels,
            "|V_D-1| (seq)": seq.graphs[-1].num_vertices,
            "|V_D-1| (par)": par.graphs[-1].num_vertices,
        })
    return rows


def test_table4_parallel_coarsening_speedup(table4_rows):
    print_table(table4_rows, title="Table 4 — sequential vs parallel coarsening")
    for row in table4_rows:
        # the parallel algorithm must win on every large twin
        assert float(row["Speedup"].rstrip("x")) > 1.0
        # and produce a comparable hierarchy (levels within 2, similar shrink)
        assert abs(row["D (seq)"] - row["D (par)"]) <= 2


def test_table4_sequential_coarsening_benchmark(benchmark):
    graph = load_dataset("soc-sinaweibo", seed=0)
    result = benchmark.pedantic(lambda: multi_edge_collapse(graph, threshold=100),
                                rounds=1, iterations=1)
    assert result.num_levels >= 2


def test_table4_parallel_coarsening_benchmark(benchmark):
    graph = load_dataset("soc-sinaweibo", seed=0)
    result = benchmark.pedantic(lambda: parallel_multi_edge_collapse(graph, threshold=100),
                                rounds=3, iterations=1)
    assert result.num_levels >= 2
