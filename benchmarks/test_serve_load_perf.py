"""Perf smoke test: the resident server under traffic-scale load.

Boots one warmed :class:`~repro.serve.QueryServer` (2k-vertex power-law
graph, stored embedding, admission control at its defaults) and drives it
closed-loop at **two concurrent-client counts**, exactly the testbed
methodology of the related scalability work: every request stamped at
creation, latency = reply receipt − create on the client's clock, server
queue-wait attributed from the reply's timing breakdown.

The recorded artifact (``bench_results/serve_load.json``) carries one row
per client count — p50/p95/p99 latency, queries/s, rejection rate,
queue-wait share — so CI accumulates an SLO trajectory next to the kernel
and query floors.  The floor asserts the SLO itself at the higher client
count: a minimum sustained queries/s and a bounded p99.  Floors are set far
under local measurements (thousands of queries/s, single-digit-ms p99) so
a noisy shared runner does not flake the non-blocking job.

Marked ``perf`` so the tier-1 job skips it.
"""

from __future__ import annotations

import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.loadgen import LoadConfig, LoadGenerator
from repro.serve import QueryServer, ServerThread

from conftest import record_perf_json

pytestmark = pytest.mark.perf

CLIENT_COUNTS = (2, 8)
DURATION_S = 1.5
TOP_K = 10
DIM = 16
NUM_VERTICES = 2_000

#: SLO floor at the higher client count.  Local closed-loop measurements on
#: this workload run well past 1,000 queries/s with p99 under 10 ms; the
#: floor leaves an order of magnitude for runner noise.
MIN_QUERIES_PER_S = 100.0
MAX_P99_MS = 500.0


class TestServeUnderLoad:
    def test_server_sustains_closed_loop_slo(self, tmp_path):
        graph = powerlaw_cluster(NUM_VERTICES, m=3, seed=0)
        service = EmbeddingService(dim=DIM, epoch_scale=0.05,
                                   store=tmp_path / "store")
        entry, _ = service.ensure_stored("gosh-fast", graph)   # warm once
        server = QueryServer(service, {"bench": graph},
                             default_tool="gosh-fast")
        runs = []
        with ServerThread(server) as address:
            for clients in CLIENT_COUNTS:
                report = LoadGenerator(LoadConfig(
                    address=address, clients=clients, mode="closed",
                    duration_s=DURATION_S, k=TOP_K,
                    num_vertices=NUM_VERTICES, seed=clients)).run()
                runs.append(report)
                lat = report.latency_ms
                print(f"\n[perf] serve {clients} closed-loop client(s) over "
                      f"|V|={NUM_VERTICES}, dim={DIM}, k={TOP_K}: "
                      f"{report.queries_per_s:,.0f} queries/s, "
                      f"p50={lat['p50']:.2f}ms p95={lat['p95']:.2f}ms "
                      f"p99={lat['p99']:.2f}ms, "
                      f"rejections={report.rejected}, "
                      f"queue-wait share={100 * report.queue_wait_share:.1f}%")

        record_perf_json("serve_load", {
            "graph": {"vertices": graph.num_vertices,
                      "edges": graph.num_undirected_edges, "dim": DIM},
            "mode": "closed", "duration_s": DURATION_S, "top_k": TOP_K,
            "admission": {"max_inflight": server.max_inflight,
                          "queue_depth": server.queue_depth,
                          "max_batch": server.max_batch},
            "runs": [r.as_json() for r in runs],
            "server": {"microbatches": server.microbatches,
                       "max_batch_seen": server.max_batch_seen,
                       "queries_answered": server.queries_answered},
            "floor": {"min_queries_per_s": MIN_QUERIES_PER_S,
                      "max_p99_ms": MAX_P99_MS,
                      "at_clients": CLIENT_COUNTS[-1]},
        })

        # Health invariants at every load level.
        for report in runs:
            assert report.errors == 0
            assert report.timeouts == 0 and report.disconnects == 0
            assert report.answered > 0

        # The SLO floor at the highest client count.
        heavy = runs[-1]
        assert heavy.queries_per_s >= MIN_QUERIES_PER_S, (
            f"server sustained only {heavy.queries_per_s:,.1f} queries/s "
            f"under {heavy.clients} clients (floor: {MIN_QUERIES_PER_S})")
        assert heavy.latency_ms["p99"] <= MAX_P99_MS, (
            f"p99 latency {heavy.latency_ms['p99']:.1f}ms exceeds the "
            f"{MAX_P99_MS}ms bound under {heavy.clients} clients")
