"""Perf smoke test: the observability layer's disabled-path cost.

The tentpole overhead contract (see ``repro/obs/trace.py``): with tracing
*disabled* — the default in every serving and training path — an
instrumented site costs one module-attribute read plus (for ``span``)
returning a shared no-op singleton.  This bench pins that two ways:

* a microbenchmark of the per-site cost in nanoseconds, and
* an end-to-end partitioned training run (the pipeline-perf workload at
  reduced scale, whose hot loop crosses kernel/pool/rotation trace sites
  every iteration): **disabled-tracing wall-clock must stay within 2%**
  of a baseline run.  Enabled-tracing wall-clock is recorded in the same
  artifact for visibility but not gated — recording is opt-in and priced
  separately.

The 2% gate compares best-of-N runs of the *same* code path (the trace
sites are compiled in either way), so what it really measures is that the
``trace.enabled`` check is too cheap to see over measurement noise.
Marked ``perf`` so tier-1 skips it; CI's perf-smoke job runs it and
uploads ``bench_results/obs_overhead.json``.
"""

from __future__ import annotations

import json
from time import perf_counter

import numpy as np
import pytest

from repro.embedding import init_embedding
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.graph import powerlaw_cluster
from repro.large import LargeGraphConfig, LargeGraphTrainer
from repro.obs import trace

from conftest import BENCH_JSON_DIR, record_perf_json

pytestmark = pytest.mark.perf

#: Disabled-path overhead ceiling, as a fraction of baseline wall-clock.
DISABLED_OVERHEAD_CEILING = 0.02
REPS = 3
NUM_PARTS = 4
B = 20
DIM = 8
NS = 1
ROTATIONS = 3


@pytest.fixture(scope="module")
def graph_12k():
    return powerlaw_cluster(3_000, m=4, seed=0)


def _run(graph) -> tuple[float, np.ndarray]:
    emb = init_embedding(graph.num_vertices, DIM, 0)
    matrix_bytes = graph.num_vertices * DIM * 4
    device = SimulatedDevice(spec=DeviceSpec(
        name="bench", memory_bytes=max(int(matrix_bytes * 0.9),
                                       3 * (matrix_bytes // NUM_PARTS) + 4096)))
    cfg = LargeGraphConfig(seed=0, min_parts=NUM_PARTS,
                           positive_batch_per_vertex=B, negative_samples=NS,
                           sampler_backend="degree_biased",
                           execution_mode="sequential")
    t0 = perf_counter()
    LargeGraphTrainer(device, cfg).train(graph, emb, epochs=B * NUM_PARTS * ROTATIONS)
    return perf_counter() - t0, emb


def _best_of(reps: int, graph) -> tuple[float, np.ndarray]:
    best, kept = float("inf"), None
    for _ in range(reps):
        seconds, emb = _run(graph)
        if seconds < best:
            best, kept = seconds, emb
    return best, kept


def _span_site_ns(iterations: int = 200_000) -> float:
    """Nanoseconds per *disabled* ``trace.span`` call site."""
    assert not trace.is_enabled()
    t0 = perf_counter()
    for _ in range(iterations):
        trace.span("site")
    return (perf_counter() - t0) / iterations * 1e9


class TestObsOverhead:
    def test_disabled_tracing_costs_under_2_percent(self, graph_12k):
        g = graph_12k
        trace.disable()
        trace.drain()
        site_ns = _span_site_ns()

        # Baseline and "disabled" runs execute the identical code path;
        # interleaving best-of-N makes the comparison a noise measurement.
        baseline_s, base_emb = _best_of(REPS, g)
        disabled_s, dis_emb = _best_of(REPS, g)

        trace.enable()
        enabled_s, en_emb = _best_of(1, g)
        events = trace.event_count()
        sample_trace = BENCH_JSON_DIR / "obs_overhead_sample.trace.json"
        BENCH_JSON_DIR.mkdir(parents=True, exist_ok=True)
        trace.export(sample_trace)
        trace.disable()

        overhead = disabled_s / baseline_s - 1.0
        enabled_overhead = enabled_s / baseline_s - 1.0
        print(f"\n[perf] obs overhead on |V|={g.num_vertices}, "
              f"|E|={g.num_undirected_edges} (K={NUM_PARTS}, B={B}, dim={DIM}, "
              f"{ROTATIONS} rotations): disabled span site={site_ns:.0f}ns "
              f"baseline={baseline_s * 1e3:.0f}ms "
              f"disabled={disabled_s * 1e3:.0f}ms ({overhead * 100:+.2f}%) "
              f"enabled={enabled_s * 1e3:.0f}ms ({enabled_overhead * 100:+.2f}%, "
              f"{events} events)")

        # Tracing must never change training arithmetic.
        assert np.array_equal(base_emb, dis_emb)
        assert np.array_equal(base_emb, en_emb)
        # The enabled run actually recorded the training profile.
        assert events > 0
        payload = json.loads(sample_trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"kernel", "pool-produce", "rotation"} <= names

        record_perf_json("obs_overhead", {
            "vertices": g.num_vertices, "edges": g.num_undirected_edges,
            "parts": NUM_PARTS, "rotations": ROTATIONS,
            "span_site_ns": round(site_ns, 1),
            "baseline_ms": round(baseline_s * 1e3, 1),
            "disabled_ms": round(disabled_s * 1e3, 1),
            "enabled_ms": round(enabled_s * 1e3, 1),
            "disabled_overhead_fraction": round(overhead, 4),
            "enabled_overhead_fraction": round(enabled_overhead, 4),
            "enabled_events": events,
            "ceiling": DISABLED_OVERHEAD_CEILING,
        })

        assert overhead <= DISABLED_OVERHEAD_CEILING, (
            f"disabled-path tracing overhead is {overhead * 100:.2f}% "
            f"(allowed: {DISABLED_OVERHEAD_CEILING * 100:.0f}%)")
