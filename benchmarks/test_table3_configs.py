"""Table 3 — GOSH configurations (fast / normal / slow / no-coarsening).

Prints the configuration table and benchmarks one GOSH-normal run so the
configuration plumbing has a timing baseline.
"""

from __future__ import annotations

from repro.embedding import CONFIGURATIONS, FAST, NO_COARSE, NORMAL, SLOW, GoshEmbedder
from repro.harness import load_dataset, print_table

from conftest import BENCH_DIM, BENCH_SCALE


def test_table3_configuration_values():
    rows = []
    for cfg in (FAST, NORMAL, SLOW, NO_COARSE):
        rows.append({
            "Configuration": cfg.name,
            "p": cfg.smoothing_ratio if cfg.use_coarsening else "-",
            "lr": cfg.learning_rate,
            "e_normal": cfg.epochs,
            "e_large": cfg.epochs_large,
            "coarsening": "yes" if cfg.use_coarsening else "no",
        })
    print_table(rows, title="Table 3 — Gosh configurations")
    assert len(CONFIGURATIONS) >= 4
    assert FAST.learning_rate > NORMAL.learning_rate > SLOW.learning_rate
    assert FAST.epochs < NORMAL.epochs < SLOW.epochs


def test_table3_normal_config_run(benchmark):
    graph = load_dataset("com-amazon", seed=0)
    cfg = NORMAL.scaled(BENCH_SCALE, dim=BENCH_DIM)

    def run():
        return GoshEmbedder(cfg).embed(graph)

    result = benchmark(run)
    assert result.embedding.shape == (graph.num_vertices, BENCH_DIM)
