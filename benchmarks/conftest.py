"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop scale.
They print paper-formatted rows (captured in ``bench_output.txt`` /
EXPERIMENTS.md) and use pytest-benchmark for the timing-sensitive kernels.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiplies every epoch budget (default 0.15).  The
  relative comparisons (who is faster, by what factor) are scale-invariant;
  raise it for higher-fidelity AUC numbers.
* ``REPRO_BENCH_DIM``   — embedding dimension used by the quality benches
  (default 32; the paper uses 128).
* ``REPRO_BENCH_JSON_DIR`` — where :func:`record_perf_json` drops one JSON
  file per perf measurement (default ``bench_results/``; CI uploads the
  directory as a workflow artifact so floor regressions stay diagnosable).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.gpu import DeviceSpec, SimulatedDevice

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "32"))
BENCH_JSON_DIR = Path(os.environ.get("REPRO_BENCH_JSON_DIR", "bench_results"))


def record_perf_json(name: str, payload: dict) -> Path:
    """Persist one perf measurement as ``<REPRO_BENCH_JSON_DIR>/<name>.json``.

    The perf smoke tests print their numbers to the job log *and* record them
    here so the CI artifact carries machine-readable history (speedups,
    floors, sizes) even when a non-blocking floor assertion fails right
    after the recording.
    """
    BENCH_JSON_DIR.mkdir(parents=True, exist_ok=True)
    path = BENCH_JSON_DIR / f"{name}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    return path


@pytest.fixture
def device() -> SimulatedDevice:
    """A fresh Titan-X-like simulated device per benchmark."""
    return SimulatedDevice()


def tiny_device(bytes_: int) -> SimulatedDevice:
    """A deliberately small device used to force the partitioned engine."""
    return SimulatedDevice(spec=DeviceSpec(name=f"{bytes_ // 1024}kB", memory_bytes=bytes_))
