"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at laptop scale.
They print paper-formatted rows (captured in ``bench_output.txt`` /
EXPERIMENTS.md) and use pytest-benchmark for the timing-sensitive kernels.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — multiplies every epoch budget (default 0.15).  The
  relative comparisons (who is faster, by what factor) are scale-invariant;
  raise it for higher-fidelity AUC numbers.
* ``REPRO_BENCH_DIM``   — embedding dimension used by the quality benches
  (default 32; the paper uses 128).
"""

from __future__ import annotations

import os

import pytest

from repro.gpu import DeviceSpec, SimulatedDevice

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))
BENCH_DIM = int(os.environ.get("REPRO_BENCH_DIM", "32"))


@pytest.fixture
def device() -> SimulatedDevice:
    """A fresh Titan-X-like simulated device per benchmark."""
    return SimulatedDevice()


def tiny_device(bytes_: int) -> SimulatedDevice:
    """A deliberately small device used to force the partitioned engine."""
    return SimulatedDevice(spec=DeviceSpec(name=f"{bytes_ // 1024}kB", memory_bytes=bytes_))
