"""Perf smoke test: crash/resume parity across real process boundaries.

The in-process golden tests (``tests/faults/``) already pin bit-exact
resume; this benchmark repeats the contract the way an operator hits it —
three separate CLI processes sharing only the on-disk store:

* **A (golden)** — one uninterrupted ``embed`` run.
* **B (crashed)** — same flags plus ``--checkpoint-every 1
  --inject-fault rotation-boundary:2``; the process dies with exit code 70
  leaving checkpoints behind.
* **C (resumed)** — same flags plus ``--resume``; picks up B's cursor from
  the store and must finish **bit-identical** to A (``np.array_equal`` on
  the float32 words).

The artifact (``bench_results/resume_parity.json``) records the three
wall-clock times and the work skipped; the resumed run repeats only the
rotations after the cursor, so C finishing is the cheap half of the parity
claim and the byte comparison is the hard half.

Marked ``perf`` so the tier-1 job skips it.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.graph import powerlaw_cluster, write_edge_list

from conftest import record_perf_json

pytestmark = pytest.mark.perf

EXIT_INJECTED_FAULT = 70
NUM_VERTICES = 400
DIM = 16
KILL_SPECS = ["rotation-boundary:2", "level-boundary:1"]


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def run_cli(args: list[str], tmp_path: Path) -> tuple[int, str, float]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root() / "src")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=tmp_path, env=env, capture_output=True, text=True, timeout=300)
    return proc.returncode, proc.stdout + proc.stderr, time.perf_counter() - start


def embed_args(graph_file: Path, store: Path, out: Path, *extra: str) -> list[str]:
    return ["embed", str(graph_file), "--config", "normal", "--dim", str(DIM),
            "--epoch-scale", "0.2", "--seed", "0", "--device-memory-mb", "0.02",
            "--store-dir", str(store), "-o", str(out), *extra]


class TestResumeParity:
    def test_resume_after_process_death_is_bit_exact(self, tmp_path):
        graph_file = tmp_path / "graph.txt"
        write_edge_list(powerlaw_cluster(NUM_VERTICES, m=3, seed=1), graph_file)

        golden = tmp_path / "golden.npy"
        code, out, golden_s = run_cli(
            embed_args(graph_file, tmp_path / "store-golden", golden), tmp_path)
        assert code == 0, out
        golden_matrix = np.load(golden)

        runs = []
        for spec in KILL_SPECS:
            store = tmp_path / f"store-{spec.replace(':', '-')}"
            crashed = tmp_path / "crashed.npy"
            code, out, crash_s = run_cli(
                embed_args(graph_file, store, crashed,
                           "--checkpoint-every", "1", "--inject-fault", spec),
                tmp_path)
            assert code == EXIT_INJECTED_FAULT, out
            assert not crashed.exists()

            resumed = tmp_path / f"resumed-{spec.replace(':', '-')}.npy"
            code, out, resume_s = run_cli(
                embed_args(graph_file, store, resumed, "--resume"), tmp_path)
            assert code == 0, out
            assert "resumed from checkpoint" in out
            resumed_matrix = np.load(resumed)
            bit_exact = bool(np.array_equal(golden_matrix, resumed_matrix))
            runs.append({
                "kill_spec": spec,
                "crashed_run_s": round(crash_s, 3),
                "resumed_run_s": round(resume_s, 3),
                "bit_exact": bit_exact,
            })

        path = record_perf_json("resume_parity", {
            "num_vertices": NUM_VERTICES,
            "dim": DIM,
            "golden_run_s": round(golden_s, 3),
            "runs": runs,
        })
        print(f"\nresume parity: golden {golden_s:.2f}s, "
              + ", ".join(f"{r['kill_spec']} resume {r['resumed_run_s']:.2f}s "
                          f"bit_exact={r['bit_exact']}" for r in runs)
              + f" -> {path}")
        assert all(r["bit_exact"] for r in runs), runs
