"""Ablations on the coarsening design choices (DESIGN.md Section 5).

Two of MultiEdgeCollapse's ingredients are ablated:

* the hub-collision rule (``|Γ(u)|, |Γ(v)| ≤ δ`` check) — disabling it lets
  giant super vertices form, which hurts coarsening *balance*;
* the decreasing-degree processing order — an arbitrary order lets small
  vertices lock hubs, which hurts coarsening *efficiency* (shrink rate).
"""

from __future__ import annotations

import pytest

from repro.coarsening import (
    collapse_once,
    multi_edge_collapse,
    summarize,
    super_vertex_balance,
)
from repro.harness import load_dataset, print_table


@pytest.fixture(scope="module")
def graph():
    return load_dataset("com-orkut", seed=0)


def test_ablation_hub_rule(graph):
    import numpy as np

    with_rule, k_with = collapse_once(graph, hub_rule=True)
    without_rule, k_without = collapse_once(graph, hub_rule=False)
    max_with = int(np.bincount(with_rule).max())
    max_without = int(np.bincount(without_rule).max())
    rows = [
        {"variant": "hub rule ON", "clusters": k_with, "largest cluster": max_with,
         "max/mean cluster size": round(super_vertex_balance(with_rule), 2)},
        {"variant": "hub rule OFF", "clusters": k_without, "largest cluster": max_without,
         "max/mean cluster size": round(super_vertex_balance(without_rule), 2)},
    ]
    print_table(rows, title="Ablation — hub-collision rule (com-orkut twin)")
    # Without the rule, hubs merge into each other and the largest super
    # vertex grows (the "giant vertex sets" the paper's rule avoids).
    assert max_without >= max_with


def test_ablation_degree_ordering(graph):
    ordered = multi_edge_collapse(graph, threshold=100, use_degree_order=True)
    arbitrary = multi_edge_collapse(graph, threshold=100, use_degree_order=False)
    rows = [
        {"variant": "degree order", **summarize(ordered).as_row()},
        {"variant": "natural order", **summarize(arbitrary).as_row()},
    ]
    print_table(rows, title="Ablation — vertex processing order (com-orkut twin)")
    # Degree ordering must not shrink more slowly than the arbitrary order
    # (paper: it substantially increases coarsening efficiency).
    assert summarize(ordered).mean_shrink_rate >= summarize(arbitrary).mean_shrink_rate * 0.9


def test_ablation_hub_rule_benchmark(benchmark, graph):
    benchmark.pedantic(lambda: collapse_once(graph, hub_rule=True), rounds=2, iterations=1)
