"""Table 6 — link prediction on the medium-scale twins.

For every medium twin the bench runs the full tool suite (VERSE, MILE,
GraphVite-like, and the four GOSH configurations), evaluates link-prediction
AUCROC, and prints the paper's columns: Algorithm, Time, Speedup vs VERSE,
AUCROC.  Epoch budgets are scaled by ``REPRO_BENCH_SCALE`` so the whole table
regenerates in minutes; speedup ratios and the quality ordering are the
quantities compared against the paper.

Set REPRO_BENCH_TABLE6_GRAPHS to a comma-separated subset (default: two
representative graphs, one sparse and one dense) to bound runtime; pass
"all" to sweep all eight.
"""

from __future__ import annotations

import os

import pytest

from repro.harness import ExperimentRunner, MEDIUM_DATASETS, default_tools, load_dataset, print_table

from conftest import BENCH_DIM, BENCH_SCALE

_selector = os.environ.get("REPRO_BENCH_TABLE6_GRAPHS", "com-dblp,com-orkut")
if _selector.strip().lower() == "all":
    GRAPH_NAMES = [spec.name for spec in MEDIUM_DATASETS]
else:
    GRAPH_NAMES = [name.strip() for name in _selector.split(",") if name.strip()]

TOOLS = ["Verse", "Mile", "Graphvite", "Gosh-fast", "Gosh-normal", "Gosh-slow", "Gosh-NoCoarse"]


@pytest.fixture(scope="module")
def table6_results():
    runner = ExperimentRunner(
        tools=default_tools(dim=BENCH_DIM, epoch_scale=BENCH_SCALE, seed=0),
        baseline_tool="Verse", seed=0,
    )
    for name in GRAPH_NAMES:
        runner.run_graph(load_dataset(name, seed=0), tools=TOOLS)
    return runner


def test_table6_rows(table6_results):
    rows = table6_results.rows()
    print_table(rows, title=f"Table 6 — link prediction on medium twins (scale={BENCH_SCALE})")
    by_graph: dict[str, dict[str, object]] = {}
    for run in table6_results.results:
        by_graph.setdefault(run.graph, {})[run.tool] = run

    for graph_name, tools in by_graph.items():
        verse = tools["Verse"]
        for gosh_name in ("Gosh-fast", "Gosh-normal", "Gosh-slow"):
            gosh = tools[gosh_name]
            assert gosh.error is None, f"{gosh_name} failed on {graph_name}"
            # the headline claim: every GOSH configuration is faster than VERSE
            assert gosh.seconds < verse.seconds
            # and the embedding is useful (far above chance)
            assert gosh.auc is not None and gosh.auc > 0.6
        # fast <= normal <= slow in wall-clock time
        assert tools["Gosh-fast"].seconds <= tools["Gosh-normal"].seconds <= tools["Gosh-slow"].seconds
        # the no-coarsening configuration is the slowest GOSH variant
        assert tools["Gosh-NoCoarse"].seconds > tools["Gosh-fast"].seconds


def test_table6_gosh_fast_benchmark(benchmark):
    graph = load_dataset(GRAPH_NAMES[0], seed=0)
    tools = default_tools(dim=BENCH_DIM, epoch_scale=BENCH_SCALE, seed=0)
    emb = benchmark.pedantic(lambda: tools["Gosh-fast"](graph), rounds=2, iterations=1)
    assert emb.shape[0] == graph.num_vertices


def test_table6_verse_benchmark(benchmark):
    graph = load_dataset(GRAPH_NAMES[0], seed=0)
    tools = default_tools(dim=BENCH_DIM, epoch_scale=BENCH_SCALE, seed=0)
    emb = benchmark.pedantic(lambda: tools["Verse"](graph), rounds=1, iterations=1)
    assert emb.shape[0] == graph.num_vertices
