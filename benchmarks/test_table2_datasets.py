"""Table 2 — dataset inventory.

Prints each paper graph next to its synthetic twin's measured |V|, |E|, and
density so the scale substitution is visible, and benchmarks twin
construction (the dataset-generation cost of the harness).
"""

from __future__ import annotations

from repro.harness import ALL_DATASETS, load_dataset, paper_table2_rows, print_table


def test_table2_dataset_inventory():
    rows = paper_table2_rows()
    print_table(rows, title="Table 2 — paper graphs and their synthetic twins")
    assert len(rows) == 12
    # relative density ordering of the twins tracks the paper's columns for
    # the extreme cases
    by_name = {r["Graph"]: r for r in rows}
    assert by_name["com-orkut"]["twin density"] > by_name["com-amazon"]["twin density"]
    assert by_name["twitter_rv"]["twin density"] > by_name["soc-sinaweibo"]["twin density"]


def test_table2_twin_generation_speed(benchmark):
    spec = ALL_DATASETS[0]
    graph = benchmark(lambda: load_dataset(spec.name, seed=0))
    assert graph.num_vertices > 0
