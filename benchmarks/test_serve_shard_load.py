"""Perf smoke test: the shard router under traffic-scale load.

Boots a :class:`~repro.serve.ShardRouter` over **two shard counts** — each
shard an in-process :class:`QueryServer` with its own
:class:`EmbeddingService` over the same warmed store (independent serving
locks, shared page cache) — and drives the *router's* front door
closed-loop, so every measured query pays the full fan-out-and-merge path:
route, ranged shard scans, bit-exact top-k merge, reply.

The recorded artifact (``bench_results/serve_shard_load.json``) carries
one row per shard count — p50/p95/p99 latency, queries/s, rejection rate,
plus the router's fan-out counters — extending the serving tier's SLO
trajectory (``serve_load.json``) to the scaled-out deployment.  The floor
asserts the same SLO as the single-server benchmark at every shard count:
sharding must not break the serving SLO even though each query now crosses
two extra socket hops.  Floors sit far under local measurements so a noisy
shared runner does not flake the non-blocking job.

Marked ``perf`` so the tier-1 job skips it.
"""

from __future__ import annotations

import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.loadgen import LoadConfig, LoadGenerator
from repro.serve import ShardRouter

from conftest import record_perf_json

pytestmark = pytest.mark.perf

SHARD_COUNTS = (2, 4)
CLIENTS = 8
DURATION_S = 1.5
TOP_K = 10
DIM = 16
NUM_VERTICES = 2_000

#: SLO floor at every shard count — the single-server serving SLO, which
#: scale-out must preserve.  Local closed-loop runs through the router
#: sustain hundreds-to-thousands of queries/s with p99 in the tens of ms.
MIN_QUERIES_PER_S = 100.0
MAX_P99_MS = 500.0


class TestShardedServeUnderLoad:
    def test_router_sustains_closed_loop_slo_at_every_shard_count(self, tmp_path):
        graph = powerlaw_cluster(NUM_VERTICES, m=3, seed=0)
        store = tmp_path / "store"

        def shard_service() -> EmbeddingService:
            return EmbeddingService(dim=DIM, epoch_scale=0.05, store=store)

        shard_service().ensure_stored("gosh-fast", graph)      # warm once
        runs = []
        for shards in SHARD_COUNTS:
            router = ShardRouter.spawn(shard_service, {"bench": graph},
                                       shard_count=shards,
                                       default_tool="gosh-fast")
            with router as address:
                report = LoadGenerator(LoadConfig(
                    address=address, clients=CLIENTS, mode="closed",
                    duration_s=DURATION_S, k=TOP_K,
                    num_vertices=NUM_VERTICES, seed=shards)).run()
                backend = router.backend
                runs.append({
                    "shards": shards,
                    "report": report,
                    "router": {"fanouts": backend.fanouts,
                               "shard_queries": backend.shard_queries,
                               "shard_errors": backend.shard_errors},
                })
            lat = report.latency_ms
            print(f"\n[perf] route {shards} shard(s), {CLIENTS} closed-loop "
                  f"clients over |V|={NUM_VERTICES}, dim={DIM}, k={TOP_K}: "
                  f"{report.queries_per_s:,.0f} queries/s, "
                  f"p50={lat['p50']:.2f}ms p95={lat['p95']:.2f}ms "
                  f"p99={lat['p99']:.2f}ms, rejections={report.rejected}")

        record_perf_json("serve_shard_load", {
            "graph": {"vertices": graph.num_vertices,
                      "edges": graph.num_undirected_edges, "dim": DIM},
            "mode": "closed", "clients": CLIENTS, "duration_s": DURATION_S,
            "top_k": TOP_K, "shard_counts": list(SHARD_COUNTS),
            "runs": [{"shards": run["shards"], "router": run["router"],
                      **run["report"].as_json()} for run in runs],
            "floor": {"min_queries_per_s": MIN_QUERIES_PER_S,
                      "max_p99_ms": MAX_P99_MS,
                      "at_every_shard_count": True},
        })

        for run in runs:
            report, shards = run["report"], run["shards"]
            # Health invariants: no shard trouble leaked into the run.
            assert report.errors == 0, (shards, report.errors)
            assert report.timeouts == 0 and report.disconnects == 0
            assert report.answered > 0
            assert run["router"]["shard_errors"] == 0
            # Every answered query genuinely fanned out to the shards.
            assert run["router"]["shard_queries"] >= shards

            # The serving SLO must survive scale-out at every shard count.
            assert report.queries_per_s >= MIN_QUERIES_PER_S, (
                f"router over {shards} shards sustained only "
                f"{report.queries_per_s:,.1f} queries/s (floor: "
                f"{MIN_QUERIES_PER_S})")
            assert report.latency_ms["p99"] <= MAX_P99_MS, (
                f"p99 latency {report.latency_ms['p99']:.1f}ms exceeds the "
                f"{MAX_P99_MS}ms bound over {shards} shards")
