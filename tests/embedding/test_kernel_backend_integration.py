"""Backend selection wired through the trainer, config, pipeline, API and CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_tool
from repro.cli import main
from repro.embedding import (
    FAST,
    NORMAL,
    GoshEmbedder,
    LevelTrainer,
    embed,
    init_embedding,
    train_level,
)
from repro.gpu import DeviceSpec, SimulatedDevice, VectorizedBackend
from repro.graph import social_community, stochastic_block_model
from repro.large import LargeGraphConfig, LargeGraphTrainer


class TestLevelTrainerBackend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError):
            LevelTrainer(backend="warp-speed")

    def test_backend_instance_accepted(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 8, 0)
        stats = LevelTrainer(backend=VectorizedBackend(), seed=0).train(
            community_graph, emb, 2)
        assert stats.epochs == 2

    def test_vectorized_backend_learns(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 16, 0)
        LevelTrainer(backend="vectorized", negative_samples=3,
                     learning_rate=0.05, seed=0).train(community_graph, emb, 60)
        labels = np.repeat(np.arange(4), 80)
        rng = np.random.default_rng(0)
        i = rng.integers(0, community_graph.num_vertices, 4000)
        j = rng.integers(0, community_graph.num_vertices, 4000)
        dots = np.einsum("ij,ij->i", emb[i], emb[j])
        same = labels[i] == labels[j]
        assert dots[same].mean() > dots[~same].mean()

    def test_train_level_backend_kwarg(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 8, 0)
        stats = train_level(community_graph, emb, 2, backend="vectorized")
        assert stats.epochs == 2

    def test_both_kernels_run_through_vectorized(self, community_graph):
        for kernel in ("optimized", "naive"):
            emb = init_embedding(community_graph.num_vertices, 8, 0)
            before = emb.copy()
            LevelTrainer(backend="vectorized", kernel=kernel, seed=0).train(
                community_graph, emb, 2)
            assert not np.array_equal(emb, before)


class TestGoshConfigBackend:
    def test_default_is_vectorized(self):
        from repro.gpu.backends import DEFAULT_BACKEND

        assert DEFAULT_BACKEND == "vectorized"
        assert NORMAL.kernel_backend == "vectorized"
        # The reference oracle stays registered for the parity suites.
        from repro.gpu import available_backends
        assert "reference" in available_backends()

    def test_invalid_backend_fails_validation(self):
        with pytest.raises(ValueError):
            NORMAL.with_(kernel_backend="warp-speed").validate()

    def test_pipeline_runs_vectorized(self, small_power_graph):
        cfg = FAST.scaled(0.05, dim=16).with_(kernel_backend="vectorized")
        result = embed(small_power_graph, cfg)
        assert result.embedding.shape == (small_power_graph.num_vertices, 16)
        assert len(result.level_stats) == result.num_levels

    def test_pipeline_deterministic_per_backend(self, small_power_graph):
        cfg = FAST.scaled(0.05, dim=8).with_(kernel_backend="vectorized", seed=11)
        a = embed(small_power_graph, cfg).embedding
        b = embed(small_power_graph, cfg).embedding
        assert np.array_equal(a, b)

    def test_backend_embeddings_numerically_close(self, small_power_graph):
        """End-to-end parity: same config, same seed, backends agree closely.

        The pipeline (coarsening, epoch distribution, sampling) is identical;
        only kernel arithmetic differs.  Per-epoch differences compound
        through the multilevel expansion, so the documented end-to-end bound
        is looser than the per-kernel one: mean cosine >= 0.9.
        """
        base = FAST.scaled(0.1, dim=16).with_(seed=7)
        ref = embed(small_power_graph, base.with_(kernel_backend="reference")).embedding
        vec = embed(small_power_graph, base.with_(kernel_backend="vectorized")).embedding
        cos = np.einsum("ij,ij->i", ref, vec) / (
            np.linalg.norm(ref, axis=1) * np.linalg.norm(vec, axis=1) + 1e-12)
        assert cos.mean() >= 0.9


class TestLargeGraphBackend:
    def _run(self, backend):
        g = social_community(600, intra_degree=6, seed=4)
        device = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=16 * 1024))
        emb = init_embedding(g.num_vertices, 16, 2)
        cfg = LargeGraphConfig(kernel_backend=backend, min_parts=3, seed=0)
        stats = LargeGraphTrainer(device, cfg).train(g, emb, 10)
        return emb, stats

    def test_vectorized_pair_backend_runs(self):
        emb, stats = self._run("vectorized")
        assert stats.kernels > 0
        assert np.all(np.isfinite(emb))

    def test_backends_agree_on_large_graph_path(self):
        ref_emb, ref_stats = self._run("reference")
        vec_emb, vec_stats = self._run("vectorized")
        assert ref_stats.kernels == vec_stats.kernels
        assert ref_stats.num_parts == vec_stats.num_parts
        # identical schedule + host sampling; only kernel arithmetic differs
        np.testing.assert_allclose(vec_emb, ref_emb, atol=2e-2)

    def test_routed_from_pipeline(self):
        g = social_community(600, intra_degree=6, seed=4)
        device = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=16 * 1024))
        cfg = FAST.scaled(0.02, dim=16).with_(kernel_backend="vectorized")
        result = GoshEmbedder(cfg, device=device).embed(g)
        assert result.large_graph_stats


class TestApiAndCli:
    def test_get_tool_accepts_kernel_backend_for_all_builtins(self):
        for name in ("gosh-normal", "verse", "mile", "graphvite"):
            tool = get_tool(name, dim=8, epoch_scale=0.02, kernel_backend="vectorized")
            assert tool is not None

    def test_gosh_tool_propagates_backend(self):
        tool = get_tool("gosh-fast", dim=8, kernel_backend="vectorized")
        assert tool.config.kernel_backend == "vectorized"
        assert "vectorized" in tool.describe()

    def test_gosh_tool_invalid_backend_raises(self):
        with pytest.raises(ValueError):
            get_tool("gosh-fast", dim=8, kernel_backend="warp-speed")

    def test_baselines_reject_invalid_backend_names_too(self):
        """The baselines ignore the option but must not swallow typos."""
        for name in ("verse", "mile", "graphvite"):
            with pytest.raises(ValueError):
                get_tool(name, dim=8, kernel_backend="vectorised")

    def test_gosh_tool_embeds_with_vectorized(self, small_power_graph):
        tool = get_tool("gosh-fast", dim=8, epoch_scale=0.02,
                        kernel_backend="vectorized")
        result = tool.embed(small_power_graph)
        assert result.embedding.shape == (small_power_graph.num_vertices, 8)

    def test_cli_kernel_backend_flag(self, tmp_path, capsys):
        out = tmp_path / "emb.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "--kernel-backend", "vectorized",
                     "-o", str(out)])
        assert code == 0
        assert np.load(out).shape[1] == 8
        assert "vectorized" in capsys.readouterr().out

    def test_cli_unknown_kernel_backend_exits(self):
        with pytest.raises(SystemExit):
            main(["embed", "com-amazon", "--kernel-backend", "warp-speed"])

    def test_cli_parser_default_is_none(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["embed", "com-dblp"])
        assert args.kernel_backend is None


class TestSamplerBackendIntegration:
    """--sampler-backend wired through config, scheduler, API and CLI."""

    def test_config_default_and_validation(self):
        assert NORMAL.sampler_backend == "vectorized"
        with pytest.raises(ValueError):
            NORMAL.with_(sampler_backend="warp-speed").validate()

    def test_large_graph_path_identical_across_sampler_backends(self):
        """Sampler parity is exact, so the whole partitioned training run is
        bit-identical whichever sampler backend produced the pools."""
        g = social_community(600, intra_degree=6, seed=4)
        embeddings = {}
        for backend in ("reference", "vectorized"):
            device = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=16 * 1024))
            emb = init_embedding(g.num_vertices, 16, 2)
            cfg = LargeGraphConfig(sampler_backend=backend, min_parts=3, seed=0)
            stats = LargeGraphTrainer(device, cfg).train(g, emb, 10)
            embeddings[backend] = emb
            assert stats.positive_samples > 0
        assert np.array_equal(embeddings["reference"], embeddings["vectorized"])

    def test_get_tool_accepts_sampler_backend_for_all_builtins(self):
        for name in ("gosh-normal", "verse", "mile", "graphvite"):
            tool = get_tool(name, dim=8, epoch_scale=0.02, sampler_backend="reference")
            assert tool is not None

    def test_gosh_tool_propagates_sampler_backend(self):
        tool = get_tool("gosh-fast", dim=8, sampler_backend="reference")
        assert tool.config.sampler_backend == "reference"
        assert "reference sampler" in tool.describe()

    def test_baselines_reject_invalid_sampler_backend_names(self):
        for name in ("verse", "mile", "graphvite"):
            with pytest.raises(ValueError):
                get_tool(name, dim=8, sampler_backend="vectorised")

    def test_cli_sampler_backend_flag(self, tmp_path):
        out = tmp_path / "emb.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "--sampler-backend", "reference",
                     "-o", str(out)])
        assert code == 0
        assert np.load(out).shape[1] == 8

    def test_cli_unknown_sampler_backend_exits(self):
        with pytest.raises(SystemExit):
            main(["embed", "com-amazon", "--sampler-backend", "warp-speed"])

    def test_cli_parser_default_is_none(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["embed", "com-dblp"])
        assert args.sampler_backend is None


def test_quality_parity_on_sbm():
    """Both backends must recover SBM community structure equally well."""
    g = stochastic_block_model([60, 60, 60], p_in=0.2, p_out=0.01, seed=5)
    labels = np.repeat(np.arange(3), 60)
    rng = np.random.default_rng(1)
    i = rng.integers(0, g.num_vertices, 3000)
    j = rng.integers(0, g.num_vertices, 3000)
    for backend in ("reference", "vectorized"):
        emb = embed(g, NORMAL.scaled(0.1, dim=16).with_(kernel_backend=backend)).embedding
        dots = np.einsum("ij,ij->i", emb[i], emb[j])
        same = labels[i] == labels[j]
        assert dots[same].mean() > dots[~same].mean(), backend


class TestExecutionModeIntegration:
    """--execution-mode wired through config, scheduler, API and CLI."""

    def test_config_default_and_validation(self):
        assert NORMAL.execution_mode == "pipelined"
        with pytest.raises(ValueError):
            NORMAL.with_(execution_mode="warp-speed").validate()

    def test_embedder_routes_mode_to_large_engine(self):
        g = social_community(600, intra_degree=6, seed=4)
        embeddings = {}
        for mode in ("sequential", "pipelined"):
            device = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=16 * 1024))
            cfg = FAST.scaled(0.02, dim=16).with_(execution_mode=mode)
            result = GoshEmbedder(cfg, device=device).embed(g)
            assert result.large_graph_stats
            assert all(s.execution_mode == mode for s in result.large_graph_stats)
            embeddings[mode] = result.embedding
        assert np.array_equal(embeddings["sequential"], embeddings["pipelined"])

    def test_get_tool_accepts_execution_mode_for_all_builtins(self):
        for name in ("gosh-normal", "verse", "mile", "graphvite"):
            tool = get_tool(name, dim=8, epoch_scale=0.02, execution_mode="sequential")
            assert tool is not None

    def test_gosh_tool_propagates_execution_mode(self):
        tool = get_tool("gosh-fast", dim=8, execution_mode="sequential")
        assert tool.config.execution_mode == "sequential"
        assert "sequential execution" in tool.describe()

    def test_default_mode_not_mentioned_in_describe(self):
        tool = get_tool("gosh-fast", dim=8)
        assert "execution" not in tool.describe()

    def test_baselines_reject_invalid_mode_names_too(self):
        for name in ("verse", "mile", "graphvite"):
            with pytest.raises(ValueError):
                get_tool(name, dim=8, execution_mode="pipelined-ish")

    def test_cli_execution_mode_flag(self, tmp_path, capsys):
        out = tmp_path / "emb.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "--execution-mode", "sequential",
                     "-o", str(out)])
        assert code == 0
        assert np.load(out).shape[1] == 8
        assert "sequential" in capsys.readouterr().out

    def test_cli_unknown_execution_mode_exits(self):
        with pytest.raises(SystemExit):
            main(["embed", "com-amazon", "--execution-mode", "warp-speed"])

    def test_cli_parser_default_is_none(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["embed", "com-dblp"])
        assert args.execution_mode is None
