"""Unit tests for GOSH configurations (Table 3) and epoch distribution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    CONFIGURATIONS,
    FAST,
    NO_COARSE,
    NORMAL,
    SLOW,
    GoshConfig,
    distribute_epochs,
    get_config,
    learning_rate_schedule,
    per_epoch_learning_rate,
)


class TestTable3Configurations:
    def test_paper_values(self):
        assert FAST.smoothing_ratio == pytest.approx(0.1)
        assert FAST.learning_rate == pytest.approx(0.050)
        assert FAST.epochs == 600 and FAST.epochs_large == 100
        assert NORMAL.smoothing_ratio == pytest.approx(0.3)
        assert NORMAL.learning_rate == pytest.approx(0.035)
        assert NORMAL.epochs == 1000 and NORMAL.epochs_large == 200
        assert SLOW.smoothing_ratio == pytest.approx(0.5)
        assert SLOW.learning_rate == pytest.approx(0.025)
        assert SLOW.epochs == 1400 and SLOW.epochs_large == 300
        assert NO_COARSE.use_coarsening is False
        assert NO_COARSE.learning_rate == pytest.approx(0.045)

    def test_defaults_from_paper(self):
        assert NORMAL.coarsening_threshold == 100
        assert NORMAL.positive_batch_per_vertex == 5   # B
        assert NORMAL.resident_submatrices == 3        # P_GPU
        assert NORMAL.resident_sample_pools == 4       # S_GPU

    def test_lookup_by_name(self):
        assert get_config("FAST") is FAST
        assert get_config("no-coarsening") is NO_COARSE
        with pytest.raises(KeyError):
            get_config("turbo")
        assert set(CONFIGURATIONS) >= {"fast", "normal", "slow"}

    def test_scaled_keeps_ratios(self):
        scaled = SLOW.scaled(0.1, dim=32)
        assert scaled.epochs == 140
        assert scaled.epochs_large == 30
        assert scaled.dim == 32
        assert scaled.smoothing_ratio == SLOW.smoothing_ratio

    def test_with_override(self):
        cfg = NORMAL.with_(negative_samples=7)
        assert cfg.negative_samples == 7
        assert NORMAL.negative_samples == 3

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            GoshConfig(dim=0).validate()
        with pytest.raises(ValueError):
            GoshConfig(smoothing_ratio=1.5).validate()
        with pytest.raises(ValueError):
            GoshConfig(learning_rate=0).validate()
        with pytest.raises(ValueError):
            GoshConfig(epochs=0).validate()
        with pytest.raises(ValueError):
            GoshConfig(resident_submatrices=1).validate()
        NORMAL.validate()

    def test_resident_sample_pools_must_be_positive(self):
        """S_GPU < 1 would leave the large-graph engine without sample pools."""
        with pytest.raises(ValueError, match="resident_sample_pools"):
            GoshConfig(resident_sample_pools=0).validate()
        with pytest.raises(ValueError, match="S_GPU"):
            GoshConfig(resident_sample_pools=-2).validate()
        GoshConfig(resident_sample_pools=1).validate()


class TestDistributeEpochs:
    def test_sums_to_budget(self):
        for total in (10, 100, 1000, 1401):
            for levels in (1, 2, 3, 5, 8):
                for p in (0.0, 0.1, 0.3, 0.5, 1.0):
                    epochs = distribute_epochs(total, levels, p)
                    assert sum(epochs) == total
                    assert len(epochs) == levels

    def test_single_level_gets_everything(self):
        assert distribute_epochs(123, 1, 0.3) == [123]

    def test_coarser_levels_get_more(self):
        epochs = distribute_epochs(1000, 5, 0.3)
        assert all(epochs[i] <= epochs[i + 1] for i in range(4))
        assert epochs[-1] > epochs[0]

    def test_uniform_when_p_is_one(self):
        epochs = distribute_epochs(100, 4, 1.0)
        assert max(epochs) - min(epochs) <= 1

    def test_geometric_when_p_is_zero(self):
        epochs = distribute_epochs(64 + 32 + 16 + 8, 4, 0.0)
        # pure geometric: each coarser level roughly doubles
        assert epochs[-1] > 1.5 * epochs[-2]

    def test_every_level_gets_an_epoch_when_possible(self):
        epochs = distribute_epochs(50, 6, 0.0)
        assert all(e >= 1 for e in epochs)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            distribute_epochs(0, 3, 0.5)
        with pytest.raises(ValueError):
            distribute_epochs(10, 0, 0.5)
        with pytest.raises(ValueError):
            distribute_epochs(10, 3, 1.5)

    def test_smoothing_interpolates(self):
        geo = distribute_epochs(1000, 4, 0.0)
        uni = distribute_epochs(1000, 4, 1.0)
        mid = distribute_epochs(1000, 4, 0.5)
        # the finest level share grows monotonically with p
        assert geo[0] <= mid[0] <= uni[0] + 1


class TestLearningRateSchedule:
    def test_paper_formula(self):
        # lr_j = lr * max(1 - j/e_i, 1e-4)
        assert per_epoch_learning_rate(0.05, 0, 100) == pytest.approx(0.05)
        assert per_epoch_learning_rate(0.05, 50, 100) == pytest.approx(0.025)
        assert per_epoch_learning_rate(0.05, 100, 100) == pytest.approx(0.05 * 1e-4)

    def test_floor(self):
        assert per_epoch_learning_rate(0.1, 1000, 10) == pytest.approx(0.1 * 1e-4)

    def test_schedule_vector(self):
        sched = learning_rate_schedule(0.04, 10)
        assert sched.shape == (10,)
        assert sched[0] == pytest.approx(0.04)
        assert np.all(np.diff(sched) < 0)

    def test_zero_epochs(self):
        assert learning_rate_schedule(0.1, 0).size == 0
