"""Unit and integration tests for the level trainer, GOSH pipeline, and VERSE baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import (
    FAST,
    NO_COARSE,
    NORMAL,
    GoshEmbedder,
    LevelTrainer,
    VerseConfig,
    embed,
    init_embedding,
    train_level,
    verse_embed,
)
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.graph import social_community, stochastic_block_model


class TestInitEmbedding:
    def test_shape_and_dtype(self):
        emb = init_embedding(100, 16, 0)
        assert emb.shape == (100, 16)
        assert emb.dtype == np.float32

    def test_default_scale(self):
        emb = init_embedding(1000, 64, 0)
        assert np.abs(emb).max() <= 0.5 / 64 + 1e-6

    def test_custom_scale(self):
        emb = init_embedding(100, 8, 0, scale=1.0)
        assert np.abs(emb).max() > 0.5

    def test_deterministic(self):
        assert np.array_equal(init_embedding(50, 8, 7), init_embedding(50, 8, 7))


class TestLevelTrainer:
    def test_embedding_changes(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 16, 0)
        before = emb.copy()
        LevelTrainer(seed=0).train(community_graph, emb, 5)
        assert not np.array_equal(emb, before)

    def test_stats_populated(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 16, 0)
        stats = LevelTrainer(negative_samples=2, seed=0).train(community_graph, emb, 4, level=3)
        assert stats.level == 3
        assert stats.epochs == 4
        assert stats.updates == 4 * community_graph.num_vertices * 3
        assert len(stats.per_epoch_seconds) == 4
        assert stats.seconds > 0

    def test_shape_mismatch_raises(self, community_graph):
        with pytest.raises(ValueError):
            LevelTrainer().train(community_graph, np.zeros((3, 8), dtype=np.float32), 1)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            LevelTrainer(kernel="warp-speed")

    def test_learning_improves_community_separation(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 16, 0)
        LevelTrainer(negative_samples=3, learning_rate=0.05, seed=0).train(
            community_graph, emb, 60)
        labels = np.repeat(np.arange(4), 80)
        # mean intra-community dot must exceed mean inter-community dot
        rng = np.random.default_rng(0)
        i = rng.integers(0, community_graph.num_vertices, 4000)
        j = rng.integers(0, community_graph.num_vertices, 4000)
        dots = np.einsum("ij,ij->i", emb[i], emb[j])
        same = labels[i] == labels[j]
        assert dots[same].mean() > dots[~same].mean()

    def test_naive_kernel_also_learns(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 16, 0)
        stats = LevelTrainer(kernel="naive", seed=0).train(community_graph, emb, 3)
        assert stats.epochs == 3

    def test_functional_wrapper(self, community_graph):
        emb = init_embedding(community_graph.num_vertices, 8, 0)
        stats = train_level(community_graph, emb, 2, device=SimulatedDevice())
        assert stats.epochs == 2


class TestGoshPipeline:
    def test_end_to_end_shapes(self, small_power_graph):
        cfg = NORMAL.scaled(0.05, dim=16)
        result = embed(small_power_graph, cfg)
        assert result.embedding.shape == (small_power_graph.num_vertices, 16)
        assert result.num_levels >= 2
        assert sum(result.epochs_per_level) == cfg.epochs
        assert result.total_seconds > 0

    def test_no_coarsening_single_level(self, small_power_graph):
        cfg = NO_COARSE.scaled(0.05, dim=16)
        result = embed(small_power_graph, cfg)
        assert result.num_levels == 1
        assert result.hierarchy.level(0) is small_power_graph

    def test_level_stats_cover_all_levels(self, small_power_graph):
        cfg = FAST.scaled(0.05, dim=16)
        result = embed(small_power_graph, cfg)
        assert len(result.level_stats) == result.num_levels
        assert not result.large_graph_stats  # fits on the default device

    def test_epochs_override(self, small_power_graph):
        result = embed(small_power_graph, FAST.scaled(0.05, dim=8), epochs=12)
        assert sum(result.epochs_per_level) == 12

    def test_deterministic_given_seed(self, small_power_graph):
        cfg = FAST.scaled(0.05, dim=8).with_(seed=11)
        a = embed(small_power_graph, cfg).embedding
        b = embed(small_power_graph, cfg).embedding
        assert np.array_equal(a, b)

    def test_small_device_routes_through_large_engine(self):
        g = social_community(600, intra_degree=6, seed=4)
        # device too small for the level-0 matrix (600 x 16 x 4 = 38 KB)
        device = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=16 * 1024))
        cfg = FAST.scaled(0.02, dim=16)
        result = GoshEmbedder(cfg, device=device).embed(g)
        assert result.large_graph_stats, "large-graph engine should have been used"
        assert result.embedding.shape == (600, 16)

    def test_summary_keys(self, small_power_graph):
        result = embed(small_power_graph, FAST.scaled(0.02, dim=8))
        summary = result.summary()
        assert {"config", "levels", "epochs_per_level", "total_s"}.issubset(summary)

    def test_quality_on_community_graph(self):
        """Multilevel embedding must separate SBM communities."""
        g = stochastic_block_model([60, 60, 60], p_in=0.2, p_out=0.01, seed=5)
        result = embed(g, NORMAL.scaled(0.1, dim=16))
        emb = result.embedding
        labels = np.repeat(np.arange(3), 60)
        rng = np.random.default_rng(1)
        i = rng.integers(0, g.num_vertices, 3000)
        j = rng.integers(0, g.num_vertices, 3000)
        dots = np.einsum("ij,ij->i", emb[i], emb[j])
        same = labels[i] == labels[j]
        assert dots[same].mean() > dots[~same].mean()


class TestVerseBaseline:
    def test_embedding_shape(self, small_power_graph):
        cfg = VerseConfig(dim=16, epochs=5, seed=0)
        result = verse_embed(small_power_graph, cfg)
        assert result.embedding.shape == (small_power_graph.num_vertices, 16)
        assert result.epochs == 5
        assert result.seconds > 0

    def test_adjacency_similarity_mode(self, small_power_graph):
        cfg = VerseConfig(dim=8, epochs=3, similarity="adjacency", seed=0)
        result = verse_embed(small_power_graph, cfg)
        assert result.embedding.shape[1] == 8

    def test_loop_mode_tiny(self, tiny_graph):
        cfg = VerseConfig(dim=4, epochs=2, mode="loop", seed=0)
        result = verse_embed(tiny_graph, cfg)
        assert result.embedding.shape == (6, 4)

    def test_unknown_mode(self, tiny_graph):
        with pytest.raises(ValueError):
            verse_embed(tiny_graph, VerseConfig(mode="quantum"))
