"""ShardRouter parity: sharded serving must be *bit-exact* vs one server.

The tentpole guarantee under test: a router fanning a query across N
ranged shards and merging with :func:`repro.query.backends.topk_by_score`
returns exactly the ids — and exactly the float32 score bits — a single
unsharded server returns.  Ranged scoring walks the same canonical block
grid (selection is masked, arithmetic is not), JSON round-trips float32
exactly, and the merge reuses the shared descending-score / ascending-id
tie rule, so the comparison below is ``==`` on ids and ``tobytes()`` on
scores, never ``allclose``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EmbeddingResult, EmbeddingService
from repro.graph import powerlaw_cluster
from repro.serve import ServeClient, ShardRouter, partition_ranges

pytestmark = pytest.mark.timeout(120)


class TestPartitionRanges:
    def test_near_even_split_front_loads_the_remainder(self):
        assert partition_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert partition_ranges(9, 3) == [(0, 3), (3, 6), (6, 9)]

    def test_more_shards_than_rows_yields_empty_tails(self):
        assert partition_ranges(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]

    @pytest.mark.parametrize("n,shards", [(1, 1), (7, 2), (300, 7), (0, 3)])
    def test_ranges_tile_the_vertex_space(self, n, shards):
        ranges = partition_ranges(n, shards)
        assert len(ranges) == shards
        assert ranges[0][0] == 0 and ranges[-1][1] == n
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo                      # contiguous, no gaps/overlap

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            partition_ranges(10, 0)
        with pytest.raises(ValueError, match="num_vertices"):
            partition_ranges(-1, 2)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)


@pytest.fixture(scope="module")
def service(graph, tmp_path_factory):
    """One warmed service per module: embedding is paid exactly once."""
    service = EmbeddingService(dim=8, epoch_scale=0.02,
                               store=tmp_path_factory.mktemp("store"))
    service.ensure_stored("gosh-fast", graph)
    return service


@pytest.fixture(scope="module", params=[2, 3], ids=["shards2", "shards3"])
def routed(request, service, graph):
    """A running router over ``request.param`` in-process shard servers."""
    router = ShardRouter.spawn(service, {"pl300": graph},
                               shard_count=request.param,
                               default_tool="gosh-fast")
    address = router.start()
    yield address, router
    router.stop()


def assert_bit_exact(reply, expected):
    """Wire reply == oracle QueryResponse, to the last float32 bit."""
    assert reply["ok"] is True, reply
    assert reply["ids"] == expected.ids.tolist()
    got_scores = np.asarray(reply["scores"], dtype=np.float32)
    assert got_scores.shape == expected.scores.shape
    assert got_scores.tobytes() == expected.scores.tobytes()


class TestMergedParity:
    def test_vertex_query_parity(self, routed, service, graph):
        address, _ = routed
        expected = service.query("gosh-fast", graph, vertices=[0, 5, 299], k=7)
        with ServeClient(address) as client:
            reply = client.query(vertices=[0, 5, 299], k=7)
        assert_bit_exact(reply, expected)
        assert reply["store_hit"] is True
        assert reply["version"] == 1

    def test_vector_query_parity(self, routed, service, graph):
        address, _ = routed
        vectors = [[0.25] * 8, [-1.0] + [0.5] * 7]
        expected = service.query("gosh-fast", graph, vectors=np.asarray(
            vectors, dtype=np.float32), k=5)
        with ServeClient(address) as client:
            reply = client.query(vectors=vectors, k=5)
        assert_bit_exact(reply, expected)

    def test_exclude_self_false_parity(self, routed, service, graph):
        address, _ = routed
        expected = service.query("gosh-fast", graph, vertices=[4, 150], k=3,
                                 exclude_self=False)
        with ServeClient(address) as client:
            reply = client.query(vertices=[4, 150], k=3, exclude_self=False)
        assert_bit_exact(reply, expected)
        assert reply["ids"][0][0] == 4           # self wins its own query

    def test_k_larger_than_graph_clamps_identically(self, routed, service, graph):
        address, _ = routed
        expected = service.query("gosh-fast", graph, vertices=[10], k=310)
        with ServeClient(address) as client:
            reply = client.query(vertices=[10], k=310)
        assert len(reply["ids"][0]) == 299       # n - 1 with exclude_self
        assert_bit_exact(reply, expected)

    def test_ranged_query_parity_through_the_router(self, routed, service, graph):
        # A client-supplied range intersects the shard ranges; the merge
        # must equal a single-server run restricted to the same rows.
        address, _ = routed
        expected = service.query("gosh-fast", graph, vertices=[60], k=5,
                                 vertex_range=(50, 250))
        with ServeClient(address) as client:
            reply = client.query(vertices=[60], k=5, vertex_range=(50, 250))
        assert_bit_exact(reply, expected)

    def test_stats_verb_exposes_router_and_shards(self, routed):
        address, router = routed
        with ServeClient(address) as client:
            assert client.ping() is True
            stats = client.stats()
        router_stats = stats["service"]["router"]
        assert router_stats["shards"] == len(router.backend.addresses)
        assert router_stats["fanouts"] >= 1
        assert router_stats["shard_errors"] == 0
        per_shard = stats["service"]["shards"]
        assert len(per_shard) == router_stats["shards"]
        assert all("server" in s for s in per_shard)


class TestTieBreakAcrossShards:
    def test_duplicate_rows_straddling_the_boundary_merge_deterministically(
            self, tmp_path):
        """Exact score ties whose candidates live in *different* shards must
        resolve by the shared ascending-id rule, not by shard arrival order."""
        n, dim = 12, 4
        graph = powerlaw_cluster(n, m=2, p_triangle=0.5, seed=3)
        rng = np.random.default_rng(0)
        emb = rng.standard_normal((n, dim)).astype(np.float32)
        emb[6] = emb[5]        # identical rows on either side of the 2-shard cut
        service = EmbeddingService(dim=dim, store=tmp_path / "store")
        service.store.save(
            EmbeddingResult(embedding=emb, tool="gosh-fast", graph="tie",
                            seconds=0.0, metadata={"config": "crafted-tie"}),
            fingerprint=graph.fingerprint())
        entry, hit = service.ensure_stored("gosh-fast", graph)
        assert hit, "crafted embedding must be served, not re-embedded"

        router = ShardRouter.spawn(service, {"tie": graph}, shard_count=2,
                                   default_tool="gosh-fast")
        with router as address, ServeClient(address) as client:
            # Vertex 5's duplicate (id 6) lives in the *other* shard and ties
            # every score bit; it must surface as the top neighbour.
            expected = service.query("gosh-fast", graph, vertices=[5, 6], k=4)
            reply = client.query(vertices=[5, 6], k=4)
            assert_bit_exact(reply, expected)
            assert reply["ids"][0][0] == 6       # 5's twin wins 5's query
            assert reply["ids"][1][0] == 5       # and vice versa

            # A vector equal to the twins ties them exactly: ascending id.
            expected = service.query("gosh-fast", graph,
                                     vectors=emb[5:6].copy(), k=3)
            reply = client.query(vectors=[emb[5].tolist()], k=3)
            assert_bit_exact(reply, expected)
            assert reply["ids"][0][:2] == [5, 6]


class TestShardFailure:
    def test_dead_shard_fails_its_queries_not_the_router(self, service, graph):
        router = ShardRouter.spawn(service, {"pl300": graph}, shard_count=2,
                                   default_tool="gosh-fast")
        with router as address, ServeClient(address) as client:
            assert client.query(vertices=[0], k=3)["ok"] is True
            router._owned[1].stop()              # shard dies out from under us
            reply = client.query(vertices=[1], k=3)
            assert reply["ok"] is False
            assert reply["code"] == "error"
            assert "ShardError" in reply["error"]
            # The router itself stays up and observable.
            assert client.ping() is True
            stats = client.stats()
            assert stats["service"]["router"]["shard_errors"] >= 1
