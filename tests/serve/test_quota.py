"""Per-tool admission quotas: one hot tool cannot starve the rest.

Same deterministic-saturation technique as the lifecycle tests (a stub
service that blocks until released), but the saturation is *per tool*:
with ``max_inflight_per_tool=1`` and tool ``a`` stuck in service, another
``a`` query must be rejected ``overloaded`` — with a machine-readable
``detail`` naming the quota — while a ``b`` query is still admitted.
"""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import QueryServer, ServeClient, ServerThread, encode_frame

pytestmark = pytest.mark.timeout(60)

TIMEOUT = 10.0


class BlockingStubService:
    """query_batch blocks until released; answers are all-zeros."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def query_batch(self, requests):
        self.started.set()
        assert self.release.wait(timeout=TIMEOUT), "test never released the stub"
        return [SimpleNamespace(
            ids=np.zeros((r.num_queries, r.k), dtype=np.int64),
            scores=np.zeros((r.num_queries, r.k), dtype=np.float32),
            store_hit=True, entry=SimpleNamespace(version=1))
            for r in requests]

    def stats(self):
        return {}


def send(client: ServeClient, frame: dict) -> None:
    client._sock.sendall(encode_frame(frame))


def read(client: ServeClient) -> dict:
    line = client._file.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


def wait_for(predicate, what: str) -> None:
    deadline = time.monotonic() + TIMEOUT
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.002)


class TestPerToolQuota:
    def test_saturated_tool_is_rejected_other_tools_admitted(self):
        stub = BlockingStubService()
        server = QueryServer(stub, {"g": object()}, default_tool="a",
                             max_inflight=8, queue_depth=8,
                             max_inflight_per_tool=1)
        handle = ServerThread(server)
        address = handle.start()
        try:
            with ServeClient(address, timeout_s=TIMEOUT) as client:
                # Tool a's one slot goes into service and blocks there.
                send(client, {"id": "a1", "verb": "query", "vertices": [0],
                              "tool": "a"})
                assert stub.started.wait(TIMEOUT)
                wait_for(lambda: server._inflight == 1, "a1 admission")

                # A second a is over quota: immediate typed rejection.
                send(client, {"id": "a2", "verb": "query", "vertices": [1],
                              "tool": "a"})
                rejection = read(client)
                assert rejection["id"] == "a2"
                assert rejection["ok"] is False
                assert rejection["code"] == "overloaded"
                assert rejection["detail"] == {"tool": "a",
                                               "max_inflight_per_tool": 1}
                assert "'a'" in rejection["error"]

                # A different tool still gets through the gate.
                send(client, {"id": "b1", "verb": "query", "vertices": [2],
                              "tool": "b"})
                wait_for(lambda: server._inflight == 2, "b1 admission")
                assert server._inflight_by_tool == {"a": 1, "b": 1}

                # Quota state is observable while saturated.
                with ServeClient(address, timeout_s=TIMEOUT) as observer:
                    snapshot = observer.stats()["server"]
                assert snapshot["max_inflight_per_tool"] == 1
                assert snapshot["inflight_by_tool"] == {"a": 1, "b": 1}
                assert snapshot["rejected_tool_quota"] == 1
                assert snapshot["rejected_overload"] == 0

                # Release: both admitted queries answer; per-tool counts
                # drain back to empty.
                stub.release.set()
                answered = {read(client)["id"], read(client)["id"]}
                assert answered == {"a1", "b1"}
                wait_for(lambda: not server._inflight_by_tool,
                         "per-tool inflight drain")
        finally:
            stub.release.set()
            handle.stop()
        assert server.rejected_tool_quota == 1
        assert server.queries_answered == 2

    def test_quota_frees_as_batches_retire(self):
        stub = BlockingStubService()
        server = QueryServer(stub, {"g": object()}, default_tool="a",
                             max_inflight_per_tool=1)
        handle = ServerThread(server)
        address = handle.start()
        try:
            with ServeClient(address, timeout_s=TIMEOUT) as client:
                send(client, {"id": "r1", "verb": "query", "vertices": [0]})
                assert stub.started.wait(TIMEOUT)
                stub.release.set()
                assert read(client)["id"] == "r1"
                # The slot is free again: the next same-tool query admits.
                reply = client.query(vertices=[1], k=2)
                assert reply["ok"] is True
        finally:
            stub.release.set()
            handle.stop()
        assert server.rejected_tool_quota == 0

    def test_no_quota_by_default_and_validation(self):
        stub = BlockingStubService()
        server = QueryServer(stub, {"g": object()}, default_tool="a")
        assert server.max_inflight_per_tool is None
        with pytest.raises(ValueError, match="max_inflight_per_tool"):
            QueryServer(stub, {"g": object()}, default_tool="a",
                        max_inflight_per_tool=0)
