"""The stdlib HTTP/1.1 front: same verbs, same typed errors, HTTP carriage.

Every request funnels through ``QueryServer.submit_frame``, so these tests
pin two things: (1) the HTTP answers are the *same* answers the NDJSON
protocol gives (bit-exact for query scores), and (2) the protocol's typed
error codes surface as the documented status codes (400/404/405/413/503)
with the JSON error body intact.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from http.client import HTTPConnection
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.serve import QueryServer, ServeClient, ServerThread, encode_frame

pytestmark = pytest.mark.timeout(120)

TIMEOUT = 10.0


def http_conn(address: str) -> HTTPConnection:
    host, _, port = address.rpartition(":")
    return HTTPConnection(host, int(port), timeout=TIMEOUT)


def request(conn: HTTPConnection, method: str, path: str,
            payload: "dict | bytes | None" = None):
    body = None
    if payload is not None:
        body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    conn.request(method, path, body=body)
    response = conn.getresponse()
    raw = response.read()
    return response, json.loads(raw)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)


@pytest.fixture(scope="module")
def served(graph, tmp_path_factory):
    """A warmed QueryServer with the HTTP front bound on the same loop."""
    service = EmbeddingService(dim=8, epoch_scale=0.02,
                               store=tmp_path_factory.mktemp("store"))
    service.ensure_stored("gosh-fast", graph)
    server = QueryServer(service, {"pl300": graph}, default_tool="gosh-fast")
    handle = ServerThread(server, http_port=0)
    handle.start()
    assert handle.http_address is not None
    yield handle.http_address, server, service
    handle.stop()


class TestRoutes:
    def test_ping(self, served):
        http_address, _, _ = served
        conn = http_conn(http_address)
        try:
            response, body = request(conn, "GET", "/ping")
        finally:
            conn.close()
        assert response.status == 200
        assert body["ok"] is True and body["verb"] == "ping"

    def test_post_query_matches_library_answer_bit_exactly(self, served, graph):
        http_address, _, service = served
        expected = service.query("gosh-fast", graph, vertices=[0, 5], k=4)
        conn = http_conn(http_address)
        try:
            response, body = request(conn, "POST", "/query",
                                     {"vertices": [0, 5], "k": 4})
        finally:
            conn.close()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/json"
        assert body["ok"] is True
        assert body["ids"] == expected.ids.tolist()
        got = np.asarray(body["scores"], dtype=np.float32)
        assert got.tobytes() == expected.scores.tobytes()
        assert set(body["timing"]) == {"queue_wait_s", "service_s", "total_s"}

    def test_stats_route_includes_http_counters(self, served):
        http_address, _, _ = served
        conn = http_conn(http_address)
        try:
            response, body = request(conn, "GET", "/stats")
        finally:
            conn.close()
        assert response.status == 200
        stats = body["stats"]
        assert stats["http"]["address"] == http_address
        assert stats["http"]["requests_total"] >= 1
        assert stats["server"]["queries_admitted"] >= 0

    def test_keep_alive_serves_many_requests_per_connection(self, served):
        http_address, server, _ = served
        before = server.http_front.connections_total
        conn = http_conn(http_address)
        try:
            for _ in range(3):
                response, body = request(conn, "GET", "/ping")
                assert response.status == 200 and body["ok"] is True
                assert response.getheader("Connection") == "keep-alive"
        finally:
            conn.close()
        assert server.http_front.connections_total == before + 1


class TestHttpErrors:
    def test_bad_json_body_is_400_bad_frame(self, served):
        http_address, server, _ = served
        malformed_before = server.malformed_frames
        conn = http_conn(http_address)
        try:
            response, body = request(conn, "POST", "/query", b"this is not json")
            assert response.status == 400
            assert body["code"] == "bad-frame"
            # Same connection still serves after the bad body.
            response, body = request(conn, "GET", "/ping")
            assert response.status == 200
        finally:
            conn.close()
        assert server.malformed_frames == malformed_before + 1

    def test_bad_request_field_is_400_bad_request(self, served):
        http_address, _, _ = served
        conn = http_conn(http_address)
        try:
            response, body = request(conn, "POST", "/query",
                                     {"vertices": [0], "k": -1})
        finally:
            conn.close()
        assert response.status == 400
        assert body["code"] == "bad-request"

    def test_unknown_route_is_404_with_route_list(self, served):
        http_address, _, _ = served
        conn = http_conn(http_address)
        try:
            response, body = request(conn, "GET", "/nope")
        finally:
            conn.close()
        assert response.status == 404
        assert body["code"] == "unknown-verb"
        assert "POST /query" in body["error"]

    def test_wrong_method_is_405_with_allow_header(self, served):
        http_address, _, _ = served
        conn = http_conn(http_address)
        try:
            response, body = request(conn, "GET", "/query")
            assert response.status == 405
            assert response.getheader("Allow") == "POST"
            response2, _ = request(conn, "POST", "/ping")
            assert response2.status == 405
            assert response2.getheader("Allow") == "GET"
        finally:
            conn.close()
        assert body["code"] == "bad-request"

    def test_framing_level_400_closes_the_connection(self, served):
        """A Content-Length that undercuts the real body leaves its tail in
        the buffer; on a kept-alive connection that tail — here a pipelined
        second request — would be misparsed as the next request line.  A
        framing-level 400 must therefore carry ``Connection: close`` and
        actually close, never serving the pipelined request."""
        http_address, _, _ = served
        host, _, port = http_address.rpartition(":")
        body = b'{"vertices": [0], "k": 3}'
        pipelined = b"GET /ping HTTP/1.1\r\n\r\n"
        with socket.create_connection((host, int(port)), timeout=TIMEOUT) as sock:
            sock.sendall(b"POST /query HTTP/1.1\r\n"
                         b"Content-Length: 5\r\n\r\n" + body + pipelined)
            sock.settimeout(TIMEOUT)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break                      # server closed: framing reset
                raw += chunk
        assert raw.startswith(b"HTTP/1.1 400")
        head, _, _ = raw.partition(b"\r\n\r\n")
        assert b"connection: close" in head.lower()
        # Exactly one response: the pipelined ping was never served.
        assert raw.count(b"HTTP/1.1") == 1

    def test_negative_content_length_is_400_not_a_silent_close(self, served):
        http_address, _, _ = served
        host, _, port = http_address.rpartition(":")
        with socket.create_connection((host, int(port)), timeout=TIMEOUT) as sock:
            sock.sendall(b"POST /query HTTP/1.1\r\n"
                         b"Content-Length: -5\r\n\r\n")
            sock.settimeout(TIMEOUT)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk
        assert raw.startswith(b"HTTP/1.1 400"), raw
        assert b"Content-Length" in raw

    def test_oversized_body_is_413(self, served):
        http_address, _, _ = served
        from repro.serve import MAX_FRAME_BYTES
        conn = http_conn(http_address)
        try:
            conn.putrequest("POST", "/query")
            conn.putheader("Content-Length", str(MAX_FRAME_BYTES + 1))
            conn.endheaders()
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 413
        assert "exceeds" in body["error"]


class BlockingStub:
    """query_batch blocks until released (same shape as the lifecycle stub)."""

    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()

    def query_batch(self, requests):
        self.started.set()
        assert self.release.wait(timeout=TIMEOUT)
        return [SimpleNamespace(ids=np.zeros((r.num_queries, r.k), dtype=np.int64),
                                scores=np.zeros((r.num_queries, r.k),
                                                dtype=np.float32),
                                store_hit=True,
                                entry=SimpleNamespace(version=1))
                for r in requests]

    def stats(self):
        return {}


class TestAdmissionOverHttp:
    def test_overload_is_503_with_retry_after(self):
        stub = BlockingStub()
        server = QueryServer(stub, {"g": object()}, default_tool="stub",
                             max_inflight=1)
        handle = ServerThread(server, http_port=0)
        addr = handle.start()
        try:
            with ServeClient(addr, timeout_s=TIMEOUT) as ndjson:
                # Saturate admission via the NDJSON side ...
                ndjson._sock.sendall(encode_frame(
                    {"id": "r1", "verb": "query", "vertices": [0]}))
                assert stub.started.wait(TIMEOUT)
                deadline = time.monotonic() + TIMEOUT
                while server._inflight < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.002)
                # ... then the HTTP side must see the same typed rejection.
                conn = http_conn(handle.http_address)
                try:
                    response, body = request(conn, "POST", "/query",
                                             {"vertices": [1], "k": 2})
                finally:
                    conn.close()
                assert response.status == 503
                assert body["code"] == "overloaded"
                assert response.getheader("Retry-After") == "1"
                stub.release.set()
                line = ndjson._file.readline()
                assert json.loads(line)["id"] == "r1"
        finally:
            stub.release.set()
            handle.stop()
        assert server.rejected_overload == 1
