"""Tests for the NDJSON wire protocol (frame codec + query-frame parsing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    error_reply,
    parse_address,
    parse_query_request,
)


class TestFrameCodec:
    def test_roundtrip(self):
        frame = {"id": 7, "verb": "query", "vertices": [0, 3], "k": 5}
        assert decode_frame(encode_frame(frame).rstrip(b"\n")) == frame

    def test_encode_is_one_line(self):
        assert encode_frame({"a": "multi\nline"}).count(b"\n") == 1

    @pytest.mark.parametrize("line", [b"not json", b"[1, 2, 3]", b'"string"',
                                      b"\xff\xfe", b"42"])
    def test_non_object_frames_rejected(self, line):
        with pytest.raises(FrameError, match="frame") as info:
            decode_frame(line)
        assert info.value.code == "bad-frame"

    def test_oversized_frame_rejected(self):
        with pytest.raises(FrameError) as info:
            decode_frame(b"x" * (MAX_FRAME_BYTES + 1))
        assert info.value.code == "bad-frame"

    def test_error_reply_shape(self):
        reply = error_reply("overloaded", "try later", request_id=3)
        assert reply == {"ok": False, "code": "overloaded",
                         "error": "try later", "id": 3}
        assert "id" not in error_reply("bad-frame", "no id known")
        # id 0 is a legitimate id, not a missing one.
        assert error_reply("bad-frame", "x", request_id=0)["id"] == 0


class TestParseQueryRequest:
    GRAPHS = {"g": object(), "other": object()}

    def parse(self, frame, **kwargs):
        kwargs.setdefault("graphs", self.GRAPHS)
        kwargs.setdefault("default_graph", "g")
        kwargs.setdefault("default_tool", "gosh-fast")
        return parse_query_request(frame, **kwargs)

    def test_defaults_applied(self):
        request = self.parse({"vertices": [1, 2]})
        assert request.tool == "gosh-fast"
        assert request.graph is self.GRAPHS["g"]
        assert request.k == 10 and request.exclude_self is True
        assert request.vertices.dtype == np.int64

    def test_explicit_fields_override(self):
        request = self.parse({"vertices": 3, "tool": "verse", "graph": "other",
                              "k": 2, "metric": "dot", "exclude_self": False})
        assert (request.tool, request.k, request.metric) == ("verse", 2, "dot")
        assert request.graph is self.GRAPHS["other"]
        assert request.vertices.tolist() == [3]

    def test_vectors_become_float32_matrix(self):
        request = self.parse({"vectors": [0.5, 1.5]})
        assert request.vectors.shape == (1, 2)
        assert request.vectors.dtype == np.float32

    @pytest.mark.parametrize("frame", [
        {},                                          # neither vertices nor vectors
        {"vertices": [0], "vectors": [[1.0]]},       # both
        {"vertices": []},                            # empty
        {"vertices": "zero"},                        # non-integral
        {"vectors": [[float("nan")]]},               # non-finite
        {"vertices": [0], "k": 0},                   # bad k
        {"vertices": [0], "k": True},                # bool is not a count
        {"vertices": [0], "k": "many"},
        {"vertices": [0], "graph": "missing"},       # unknown graph
        {"vertices": [0], "exclude_self": "yes"},
    ])
    def test_bad_requests_raise_bad_request(self, frame):
        with pytest.raises(FrameError) as info:
            self.parse(frame)
        assert info.value.code == "bad-request"

    def test_no_default_tool_requires_tool(self):
        with pytest.raises(FrameError, match="tool"):
            self.parse({"vertices": [0]}, default_tool=None)

    def test_no_default_graph_requires_graph(self):
        with pytest.raises(FrameError, match="graph"):
            self.parse({"vertices": [0]}, default_graph=None)

    def test_range_field_becomes_vertex_range(self):
        request = self.parse({"vertices": [1], "range": [10, 20]})
        assert request.vertex_range == (10, 20)
        assert self.parse({"vertices": [1]}).vertex_range is None

    @pytest.mark.parametrize("bad_range", [
        "0-10",                 # not a list
        [0],                    # wrong arity
        [0, 10, 20],
        [5, 5],                 # empty range
        [10, 5],                # inverted
        [-1, 10],               # negative
        [0.0, 10],              # floats are not row indices
        [False, True],          # bools are not row indices
    ])
    def test_bad_range_raises_bad_request(self, bad_range):
        with pytest.raises(FrameError, match="range") as info:
            self.parse({"vertices": [1], "range": bad_range})
        assert info.value.code == "bad-request"


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.2:7654") == ("tcp", ("10.0.0.2", 7654))

    def test_bare_port_defaults_host(self):
        assert parse_address(":8080") == ("tcp", ("127.0.0.1", 8080))

    def test_unix_path(self):
        assert parse_address("unix:/tmp/serve.sock") == ("unix", "/tmp/serve.sock")

    def test_bracketed_ipv6_strips_brackets(self):
        # socket.create_connection wants the bare address, not "[::1]".
        assert parse_address("[::1]:8080") == ("tcp", ("::1", 8080))
        assert parse_address("[fe80::1]:7654") == ("tcp", ("fe80::1", 7654))

    def test_bare_ipv6_rejected_with_bracket_hint(self):
        # "::1" must not silently parse as host ":" + port 1.
        with pytest.raises(ValueError, match="bracket"):
            parse_address("::1")

    @pytest.mark.parametrize("bad", [
        "[::1]",            # brackets but no port
        "[::1]8080",        # missing colon after brackets
        "[::1]:port",       # non-numeric port
        "nohost",           # no colon at all
        "host:",            # empty port
        "host:port",        # non-numeric port
    ])
    def test_malformed_addresses_rejected(self, bad):
        with pytest.raises(ValueError, match="bad server address"):
            parse_address(bad)
