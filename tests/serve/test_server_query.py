"""End-to-end serving over the real EmbeddingService: wire answers == library
answers, timing stamps present, defaults applied, errors isolated."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.serve import QueryServer, ServeClient, ServerThread

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)


@pytest.fixture(scope="module")
def served(graph, tmp_path_factory):
    """One warmed server per module: embedding is paid exactly once."""
    service = EmbeddingService(dim=8, epoch_scale=0.02,
                               store=tmp_path_factory.mktemp("store"))
    service.ensure_stored("gosh-fast", graph)
    server = QueryServer(service, {"pl300": graph}, default_tool="gosh-fast",
                         max_batch=16)
    handle = ServerThread(server)
    address = handle.start()
    yield address, server, service
    handle.stop()


class TestWireAnswers:
    def test_vertex_query_matches_library_answer(self, served, graph):
        address, _, service = served
        expected = service.query("gosh-fast", graph, vertices=[0, 5], k=4)
        with ServeClient(address) as client:
            reply = client.query(vertices=[0, 5], k=4)
        assert reply["ok"] is True
        assert reply["ids"] == expected.ids.tolist()
        assert np.allclose(reply["scores"], expected.scores, rtol=1e-6)
        assert reply["store_hit"] is True
        assert reply["version"] == 1

    def test_vector_query_round_trips(self, served):
        address, _, service = served
        vector = [0.25] * 8
        with ServeClient(address) as client:
            reply = client.query(vectors=[vector], k=3)
        assert reply["ok"] is True
        assert len(reply["ids"][0]) == 3

    def test_reply_carries_timing_breakdown_and_created_echo(self, served):
        address, _, _ = served
        with ServeClient(address) as client:
            reply = client.query(vertices=[1], k=2)
        timing = reply["timing"]
        assert set(timing) == {"queue_wait_s", "service_s", "total_s"}
        assert timing["queue_wait_s"] >= 0 and timing["service_s"] >= 0
        assert timing["total_s"] == pytest.approx(
            timing["queue_wait_s"] + timing["service_s"], abs=5e-6)
        assert "created" in reply   # the client's own stamp, echoed opaque

    def test_named_graph_and_tool_accepted(self, served):
        address, _, _ = served
        with ServeClient(address) as client:
            reply = client.query(vertices=[2], k=2, graph="pl300",
                                 tool="gosh-fast")
        assert reply["ok"] is True

    def test_exclude_self_false_returns_self_first(self, served):
        address, _, _ = served
        with ServeClient(address) as client:
            reply = client.query(vertices=[4], k=3, exclude_self=False,
                                 metric="cosine")
        assert reply["ids"][0][0] == 4


class TestErrorIsolation:
    def test_out_of_range_vertex_is_an_error_reply_not_a_crash(self, served):
        address, server, _ = served
        with ServeClient(address) as client:
            bad = client.query(vertices=[10 ** 6], k=2)
            assert bad["ok"] is False and bad["code"] == "error"
            assert "vertex ids" in bad["error"]
            # Same connection, same server: next request is fine.
            assert client.query(vertices=[3], k=2)["ok"] is True
        assert server.query_errors >= 1


class TestConcurrentClients:
    def test_concurrent_clients_all_answered_and_microbatched(self, served):
        address, server, service = served
        answered_before = server.queries_answered
        batches_before = service.stats()["microbatches"]
        errors = []

        def worker(index: int) -> None:
            try:
                with ServeClient(address) as client:
                    for i in range(10):
                        reply = client.query(vertices=[(index * 31 + i) % 300],
                                             k=3, request_id=f"{index}-{i}")
                        assert reply["ok"] is True, reply
            except Exception as exc:   # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert server.queries_answered - answered_before == 60
        # Concurrency must go *through* the microbatcher: strictly fewer
        # backend batches than requests (else clients serialised 1:1).
        assert service.stats()["microbatches"] - batches_before <= 60


class TestUnixSocket:
    def test_unix_socket_serving(self, graph, tmp_path):
        service = EmbeddingService(dim=8, epoch_scale=0.02,
                                   store=tmp_path / "store")
        service.ensure_stored("gosh-fast", graph)
        server = QueryServer(service, {"g": graph}, default_tool="gosh-fast",
                             socket_path=str(tmp_path / "serve.sock"))
        with ServerThread(server) as address:
            assert address.startswith("unix:")
            with ServeClient(address) as client:
                assert client.ping() is True
                assert client.query(vertices=[0], k=2)["ok"] is True


class TestConstruction:
    def test_rejects_empty_graphs_and_bad_defaults(self):
        service = object()
        with pytest.raises(ValueError, match="at least one graph"):
            QueryServer(service, {})
        with pytest.raises(ValueError, match="default_graph"):
            QueryServer(service, {"g": object()}, default_graph="other")
        with pytest.raises(ValueError, match=">= 1"):
            QueryServer(service, {"g": object()}, max_inflight=0)

    def test_single_graph_becomes_default(self):
        server = QueryServer(object(), {"only": object()})
        assert server.default_graph == "only"
