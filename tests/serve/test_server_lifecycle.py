"""Server lifecycle edge cases: overload, drain, disconnects, bad frames.

These tests replace the real :class:`EmbeddingService` with a stub whose
``query_batch`` blocks on an event, so saturation is *deterministic*: the
test controls exactly when the (single) batching loop is busy, then
releases it.  The admission gate's contract under test:

* with ``max_inflight`` admitted-but-unanswered requests, the next query is
  rejected with ``code == "overloaded"`` — no unbounded buffering;
* with the admission queue at ``queue_depth``, same;
* ``stop()`` stops admitting (``shutting-down``) but answers every admitted
  request before returning — shutdown drains, never drops;
* malformed frames and mid-request disconnects hurt only their own
  connection, never the server.
"""

from __future__ import annotations

import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import QueryServer, ServeClient, ServerThread, encode_frame

pytestmark = pytest.mark.timeout(60)

TIMEOUT = 10.0


class BlockingStubService:
    """query_batch blocks until released; stats is a cheap snapshot."""

    def __init__(self):
        self.started = threading.Event()   # set when a batch enters service
        self.release = threading.Event()   # test opens the gate
        self.batch_sizes: list[int] = []

    def query_batch(self, requests):
        self.batch_sizes.append(len(requests))
        self.started.set()
        assert self.release.wait(timeout=TIMEOUT), "test never released the stub"
        return [self._answer(r) for r in requests]

    @staticmethod
    def _answer(request):
        k, n = request.k, request.num_queries
        return SimpleNamespace(ids=np.zeros((n, k), dtype=np.int64),
                               scores=np.zeros((n, k), dtype=np.float32),
                               store_hit=True,
                               entry=SimpleNamespace(version=1))

    def stats(self):
        return {"stub_batches": len(self.batch_sizes)}


@pytest.fixture
def stub():
    return BlockingStubService()


def make_server(stub, **kwargs):
    kwargs.setdefault("max_inflight", 64)
    kwargs.setdefault("queue_depth", 128)
    return QueryServer(stub, {"g": object()}, default_tool="stub", **kwargs)


def send(client: ServeClient, frame: dict) -> None:
    """Fire-and-forget a frame (the blocking client would await the reply)."""
    client._sock.sendall(encode_frame(frame))


def read(client: ServeClient) -> dict:
    line = client._file.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


class TestAdmissionControl:
    def test_inflight_saturation_is_rejected_deterministically(self, stub):
        server = make_server(stub, max_inflight=2, queue_depth=8)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)      # r1 is *in* service
            send(c, {"id": "r2", "verb": "query", "vertices": [1]})  # queued
            send(c, {"id": "r3", "verb": "query", "vertices": [2]})  # over cap
            reply = read(c)                        # rejection arrives first
            assert reply == {"ok": False, "code": "overloaded",
                             "error": reply["error"], "id": "r3"}
            assert "2 in flight" in reply["error"]
            stub.release.set()
            answered = {read(c)["id"], read(c)["id"]}
            assert answered == {"r1", "r2"}
        assert server.rejected_overload == 1
        assert server.queries_answered == 2

    def test_queue_depth_saturation_is_rejected(self, stub):
        server = make_server(stub, max_inflight=8, queue_depth=1)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)      # queue drained into service
            send(c, {"id": "r2", "verb": "query", "vertices": [1]})  # fills depth-1 queue
            send(c, {"id": "r3", "verb": "query", "vertices": [2]})
            assert read(c)["code"] == "overloaded"
            stub.release.set()
            assert {read(c)["id"], read(c)["id"]} == {"r1", "r2"}
        assert server.rejected_overload == 1

    def test_stats_verb_answers_while_saturated(self, stub):
        server = make_server(stub, max_inflight=1)
        with ServerThread(server) as addr:
            with ServeClient(addr, timeout_s=TIMEOUT) as busy:
                send(busy, {"id": "r1", "verb": "query", "vertices": [0]})
                assert stub.started.wait(TIMEOUT)
                with ServeClient(addr, timeout_s=TIMEOUT) as observer:
                    stats = observer.stats()       # must not queue behind r1
                    assert stats["server"]["inflight"] == 1
                    assert stats["service"] == {"stub_batches": 1}
                stub.release.set()
                assert read(busy)["ok"] is True

    def test_rejection_counters_in_stats(self, stub):
        server = make_server(stub, max_inflight=1)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)
            for i in range(3):
                send(c, {"id": f"x{i}", "verb": "query", "vertices": [0]})
            rejected = [read(c) for _ in range(3)]
            assert all(r["code"] == "overloaded" for r in rejected)
            with ServeClient(addr, timeout_s=TIMEOUT) as observer:
                assert observer.stats()["server"]["rejected_overload"] == 3
            stub.release.set()
            assert read(c)["id"] == "r1"


class TestRobustness:
    def test_malformed_frame_gets_error_reply_not_server_death(self, stub):
        stub.release.set()
        server = make_server(stub)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            c._sock.sendall(b"this is not json\n")
            assert read(c)["code"] == "bad-frame"
            c._sock.sendall(b'{"unterminated": \n')
            assert read(c)["code"] == "bad-frame"
            # The same connection still serves real work afterwards.
            assert c.query(vertices=[0], request_id="ok")["ok"] is True
        assert server.malformed_frames == 2
        assert server.queries_answered == 1

    def test_bad_request_fields_get_bad_request_reply(self, stub):
        stub.release.set()
        server = make_server(stub)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            assert c.request({"verb": "query"})["code"] == "bad-request"
            assert c.request({"verb": "teleport"})["code"] == "unknown-verb"
            assert c.ping() is True

    def test_client_disconnect_mid_request_drops_only_that_reply(self, stub):
        server = make_server(stub)
        with ServerThread(server) as addr:
            doomed = ServeClient(addr, timeout_s=TIMEOUT)
            send(doomed, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)
            doomed.close()
            with ServeClient(addr, timeout_s=TIMEOUT) as witness:
                # Wait until the server has noticed the disconnect ...
                deadline = 100
                while witness.stats()["server"]["connections_open"] > 1:
                    deadline -= 1
                    assert deadline, "server never noticed the disconnect"
                stub.release.set()
                # ... then the batch completes, the reply is dropped, and the
                # server keeps serving everyone else.
                deadline = 1000
                while witness.stats()["server"]["replies_dropped"] == 0:
                    deadline -= 1
                    assert deadline, "dropped reply was never counted"
                assert witness.query(vertices=[1])["ok"] is True
                stats = witness.stats()["server"]
        assert stats["replies_dropped"] == 1
        assert server.queries_answered == 2   # r1 completed despite the drop


class TestShutdownDrain:
    def test_stop_drains_inflight_before_returning(self, stub):
        server = make_server(stub)
        handle = ServerThread(server)
        addr = handle.start()
        c = ServeClient(addr, timeout_s=TIMEOUT)
        try:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)
            send(c, {"id": "r2", "verb": "query", "vertices": [1]})   # queued
            deadline = time.monotonic() + TIMEOUT
            while server.queries_admitted < 2:    # r2 must be admitted pre-stop
                assert time.monotonic() < deadline
                time.sleep(0.002)

            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            stopper.join(timeout=0.3)
            assert stopper.is_alive(), "stop() returned without draining"

            # Draining admits nothing new but still answers the admitted.
            send(c, {"id": "late", "verb": "query", "vertices": [2]})
            assert read(c)["code"] == "shutting-down"
            stub.release.set()
            assert {read(c)["id"], read(c)["id"]} == {"r1", "r2"}
            stopper.join(timeout=TIMEOUT)
            assert not stopper.is_alive()
        finally:
            c.close()
        assert server.queries_answered == 2
        assert server.rejected_shutdown == 1
        assert server._inflight == 0

    def test_stop_with_idle_server_is_immediate(self, stub):
        server = make_server(stub)
        handle = ServerThread(server)
        handle.start()
        handle.stop(timeout_s=TIMEOUT)
        assert server.queries_answered == 0
