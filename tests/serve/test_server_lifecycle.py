"""Server lifecycle edge cases: overload, drain, disconnects, bad frames.

These tests replace the real :class:`EmbeddingService` with a stub whose
``query_batch`` blocks on an event, so saturation is *deterministic*: the
test controls exactly when the (single) batching loop is busy, then
releases it.  The admission gate's contract under test:

* with ``max_inflight`` admitted-but-unanswered requests, the next query is
  rejected with ``code == "overloaded"`` — no unbounded buffering;
* with the admission queue at ``queue_depth``, same;
* ``stop()`` stops admitting (``shutting-down``) but answers every admitted
  request before returning — shutdown drains, never drops;
* malformed frames and mid-request disconnects hurt only their own
  connection, never the server.
"""

from __future__ import annotations

import asyncio
import gc
import json
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import QueryServer, ServeClient, ServerThread, encode_frame
from repro.serve.server import _Connection

pytestmark = pytest.mark.timeout(60)

TIMEOUT = 10.0


class BlockingStubService:
    """query_batch blocks until released; stats is a cheap snapshot."""

    def __init__(self):
        self.started = threading.Event()   # set when a batch enters service
        self.release = threading.Event()   # test opens the gate
        self.batch_sizes: list[int] = []

    def query_batch(self, requests):
        self.batch_sizes.append(len(requests))
        self.started.set()
        assert self.release.wait(timeout=TIMEOUT), "test never released the stub"
        return [self._answer(r) for r in requests]

    @staticmethod
    def _answer(request):
        k, n = request.k, request.num_queries
        return SimpleNamespace(ids=np.zeros((n, k), dtype=np.int64),
                               scores=np.zeros((n, k), dtype=np.float32),
                               store_hit=True,
                               entry=SimpleNamespace(version=1))

    def stats(self):
        return {"stub_batches": len(self.batch_sizes)}


class MiscountingStubService(BlockingStubService):
    """Breaks the service contract: returns ``len(requests) + extra`` responses."""

    def __init__(self, extra: int):
        super().__init__()
        self.extra = extra

    def query_batch(self, requests):
        responses = super().query_batch(requests)
        if self.extra < 0:
            return responses[:self.extra]
        return responses + [self._answer(requests[-1])] * self.extra


class FakeWriter:
    """StreamWriter stand-in: captures payloads, every transport op succeeds."""

    def __init__(self):
        self.payloads: list[bytes] = []

    def write(self, data: bytes) -> None:
        self.payloads.append(data)

    async def drain(self) -> None:
        pass

    def close(self) -> None:
        pass

    async def wait_closed(self) -> None:
        pass


@pytest.fixture
def stub():
    return BlockingStubService()


def make_server(stub, **kwargs):
    kwargs.setdefault("max_inflight", 64)
    kwargs.setdefault("queue_depth", 128)
    return QueryServer(stub, {"g": object()}, default_tool="stub", **kwargs)


def send(client: ServeClient, frame: dict) -> None:
    """Fire-and-forget a frame (the blocking client would await the reply)."""
    client._sock.sendall(encode_frame(frame))


def read(client: ServeClient) -> dict:
    line = client._file.readline()
    assert line, "server closed the connection unexpectedly"
    return json.loads(line)


class TestAdmissionControl:
    def test_inflight_saturation_is_rejected_deterministically(self, stub):
        server = make_server(stub, max_inflight=2, queue_depth=8)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)      # r1 is *in* service
            send(c, {"id": "r2", "verb": "query", "vertices": [1]})  # queued
            send(c, {"id": "r3", "verb": "query", "vertices": [2]})  # over cap
            reply = read(c)                        # rejection arrives first
            assert reply == {"ok": False, "code": "overloaded",
                             "error": reply["error"], "id": "r3"}
            assert "2 in flight" in reply["error"]
            stub.release.set()
            answered = {read(c)["id"], read(c)["id"]}
            assert answered == {"r1", "r2"}
        assert server.rejected_overload == 1
        assert server.queries_answered == 2

    def test_queue_depth_saturation_is_rejected(self, stub):
        server = make_server(stub, max_inflight=8, queue_depth=1)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)      # queue drained into service
            send(c, {"id": "r2", "verb": "query", "vertices": [1]})  # fills depth-1 queue
            send(c, {"id": "r3", "verb": "query", "vertices": [2]})
            assert read(c)["code"] == "overloaded"
            stub.release.set()
            assert {read(c)["id"], read(c)["id"]} == {"r1", "r2"}
        assert server.rejected_overload == 1

    def test_stats_verb_answers_while_saturated(self, stub):
        server = make_server(stub, max_inflight=1)
        with ServerThread(server) as addr:
            with ServeClient(addr, timeout_s=TIMEOUT) as busy:
                send(busy, {"id": "r1", "verb": "query", "vertices": [0]})
                assert stub.started.wait(TIMEOUT)
                with ServeClient(addr, timeout_s=TIMEOUT) as observer:
                    stats = observer.stats()       # must not queue behind r1
                    assert stats["server"]["inflight"] == 1
                    assert stats["service"] == {"stub_batches": 1}
                stub.release.set()
                assert read(busy)["ok"] is True

    def test_rejection_counters_in_stats(self, stub):
        server = make_server(stub, max_inflight=1)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)
            for i in range(3):
                send(c, {"id": f"x{i}", "verb": "query", "vertices": [0]})
            rejected = [read(c) for _ in range(3)]
            assert all(r["code"] == "overloaded" for r in rejected)
            with ServeClient(addr, timeout_s=TIMEOUT) as observer:
                assert observer.stats()["server"]["rejected_overload"] == 3
            stub.release.set()
            assert read(c)["id"] == "r1"


class TestRobustness:
    def test_malformed_frame_gets_error_reply_not_server_death(self, stub):
        stub.release.set()
        server = make_server(stub)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            c._sock.sendall(b"this is not json\n")
            assert read(c)["code"] == "bad-frame"
            c._sock.sendall(b'{"unterminated": \n')
            assert read(c)["code"] == "bad-frame"
            # The same connection still serves real work afterwards.
            assert c.query(vertices=[0], request_id="ok")["ok"] is True
        assert server.malformed_frames == 2
        assert server.queries_answered == 1

    def test_bad_request_fields_get_bad_request_reply(self, stub):
        stub.release.set()
        server = make_server(stub)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            assert c.request({"verb": "query"})["code"] == "bad-request"
            assert c.request({"verb": "teleport"})["code"] == "unknown-verb"
            assert c.ping() is True

    def test_client_disconnect_mid_request_drops_only_that_reply(self, stub):
        server = make_server(stub)
        with ServerThread(server) as addr:
            doomed = ServeClient(addr, timeout_s=TIMEOUT)
            send(doomed, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)
            doomed.close()
            with ServeClient(addr, timeout_s=TIMEOUT) as witness:
                # Wait until the server has noticed the disconnect ...
                deadline = 100
                while witness.stats()["server"]["connections_open"] > 1:
                    deadline -= 1
                    assert deadline, "server never noticed the disconnect"
                stub.release.set()
                # ... then the batch completes, the reply is dropped, and the
                # server keeps serving everyone else.
                deadline = 1000
                while witness.stats()["server"]["replies_dropped"] == 0:
                    deadline -= 1
                    assert deadline, "dropped reply was never counted"
                assert witness.query(vertices=[1])["ok"] is True
                stats = witness.stats()["server"]
        assert stats["replies_dropped"] == 1
        assert server.queries_answered == 2   # r1 completed despite the drop


class TestShutdownDrain:
    def test_stop_drains_inflight_before_returning(self, stub):
        server = make_server(stub)
        handle = ServerThread(server)
        addr = handle.start()
        c = ServeClient(addr, timeout_s=TIMEOUT)
        try:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)
            send(c, {"id": "r2", "verb": "query", "vertices": [1]})   # queued
            deadline = time.monotonic() + TIMEOUT
            while server.queries_admitted < 2:    # r2 must be admitted pre-stop
                assert time.monotonic() < deadline
                time.sleep(0.002)

            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            stopper.join(timeout=0.3)
            assert stopper.is_alive(), "stop() returned without draining"

            # Draining admits nothing new but still answers the admitted.
            send(c, {"id": "late", "verb": "query", "vertices": [2]})
            assert read(c)["code"] == "shutting-down"
            stub.release.set()
            assert {read(c)["id"], read(c)["id"]} == {"r1", "r2"}
            stopper.join(timeout=TIMEOUT)
            assert not stopper.is_alive()
        finally:
            c.close()
        assert server.queries_answered == 2
        assert server.rejected_shutdown == 1
        assert server._inflight == 0

    def test_stop_with_idle_server_is_immediate(self, stub):
        server = make_server(stub)
        handle = ServerThread(server)
        handle.start()
        handle.stop(timeout_s=TIMEOUT)
        assert server.queries_answered == 0


class TestMisbehavingService:
    """A service that returns the wrong number of responses must not strand
    futures (their _forward_reply tasks would hang forever) or drift the
    _inflight accounting (the admission gate would wedge shut)."""

    def test_short_batch_fails_unmatched_requests_not_the_server(self):
        stub = MiscountingStubService(extra=-1)
        server = make_server(stub)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)          # [r1] alone is in service
            send(c, {"id": "r2", "verb": "query", "vertices": [1]})
            send(c, {"id": "r3", "verb": "query", "vertices": [2]})
            deadline = time.monotonic() + TIMEOUT
            while server.queries_admitted < 3:         # r2+r3 queue up together
                assert time.monotonic() < deadline
                time.sleep(0.002)
            stub.release.set()
            replies = {r["id"]: r for r in (read(c), read(c), read(c))}
            # Batch [r1]: 0 responses for 1 request -> r1 gets an error reply.
            assert replies["r1"]["ok"] is False
            assert replies["r1"]["code"] == "error"
            assert "responses for" in replies["r1"]["error"]
            # Batch [r2, r3]: 1 response for 2 requests -> r2 real, r3 error.
            assert replies["r2"]["ok"] is True
            assert replies["r3"]["code"] == "error"
            # No stranded futures, no drifted admission accounting ...
            assert server._inflight == 0
            assert server.batch_length_mismatches == 2
            # ... and the same server keeps serving once the service behaves.
            stub.extra = 0
            assert c.query(vertices=[5], request_id="r4")["ok"] is True
        assert server.queries_answered == 2            # r2 + r4

    def test_long_batch_truncates_extras_and_counts(self):
        stub = MiscountingStubService(extra=1)
        stub.release.set()
        server = make_server(stub)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            assert c.query(vertices=[0], request_id="r1")["ok"] is True
        assert server.batch_length_mismatches == 1
        assert server._inflight == 0
        assert server.queries_answered == 1


class TestReplyDropRace:
    def test_send_racing_close_counts_the_drop(self, stub):
        """A reply enqueued between the writer sentinel and the connection
        teardown must be *counted* as dropped, not silently vanish.  The
        server marks ``conn.closed`` before queueing the sentinel, so a
        racing ``_send`` always observes the closed flag."""

        async def scenario():
            server = make_server(stub)
            conn = _Connection(writer=FakeWriter())
            server._connections.add(conn)
            loop = asyncio.get_running_loop()
            conn.writer_task = loop.create_task(server._write_loop(conn))
            closer = loop.create_task(server._close_connection(conn))
            await asyncio.sleep(0)     # close marked conn.closed, queued sentinel
            assert conn.closed is True
            server._send(conn, {"ok": True, "id": "racer"})
            await closer
            return server, conn

        server, conn = asyncio.run(scenario())
        assert server.replies_dropped == 1
        assert all(b"racer" not in payload for payload in conn.writer.payloads)


class TestServerThreadLifecycle:
    def test_stop_before_start_is_a_no_op(self, stub):
        handle = ServerThread(make_server(stub))
        handle.stop()                  # nothing started, nothing raised
        assert handle.address is None

    def test_double_start_raises(self, stub):
        stub.release.set()
        handle = ServerThread(make_server(stub))
        handle.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                handle.start()
        finally:
            handle.stop(timeout_s=TIMEOUT)

    # Releasing the wedged batch after the loop is gone makes the executor
    # callback hit a closed loop, and the abandoned server coroutines die
    # un-awaited — expected collateral of the abandoned drain.
    @pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_drain_past_timeout_raises_and_still_joins_the_thread(self, stub):
        server = make_server(stub)
        handle = ServerThread(server)
        addr = handle.start()
        c = ServeClient(addr, timeout_s=TIMEOUT)
        try:
            send(c, {"id": "r1", "verb": "query", "vertices": [0]})
            assert stub.started.wait(TIMEOUT)     # service wedged mid-batch
            thread = handle._thread
            with pytest.raises(TimeoutError, match="drain"):
                handle.stop(timeout_s=0.3)
            # The failed drain must not leak the daemon loop thread.
            thread.join(TIMEOUT)
            assert not thread.is_alive()
            assert handle._thread is None
            handle.stop()                         # second stop: clean no-op
        finally:
            stub.release.set()                    # let the worker thread exit
            c.close()
            # Reap the abandoned-drain debris (half-run server coroutines,
            # the executor callback hitting the closed loop) while the
            # warning filters above are still active.
            time.sleep(0.05)
            server._connections.clear()
            del server, handle
            gc.collect()
