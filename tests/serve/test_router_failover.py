"""Fault injection for the shard router: failure is recoverable, never final.

The contract under test, end to end:

* a replica's :class:`HealthState` escalates ``healthy → suspect → dead``
  on failures and schedules exponential-backoff probes (clock-driven unit
  tests — no sleeping);
* a *hung* shard (accepts, never replies) fails only its own batch, within
  the configured deadline, while the router keeps serving other ranges;
* a killed-then-restarted shard is re-probed by the background prober and
  readmitted, after which its range serves bit-exact results again — the
  "dead shard is dead forever" bug this PR removes;
* with replica sets, the router fails over *within* a request when the
  primary dies, still bit-exact (replicas serve the same store version);
* duplicate or stale replies on a shard link are deduplicated by
  per-exchange wire ids instead of poisoning a later exchange;
* the failure counters stay coherent: every request is exactly one of
  ``requests_ok`` / ``requests_failed``, and every frame a replica group
  was offered is either answered by some replica or counted failed.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.serve import (
    HEALTH_DEAD,
    HEALTH_HEALTHY,
    HEALTH_SUSPECT,
    HealthState,
    QueryServer,
    ServeClient,
    ServerThread,
    ShardError,
    ShardRouter,
    StateClock,
    encode_frame,
)
from repro.serve.router import _ShardGroup, _ShardLink

pytestmark = pytest.mark.timeout(120)

TIMEOUT = 10.0


class FakeClock:
    """Deterministic monotonic clock for state-machine unit tests."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# --------------------------------------------------------------------- #
# StateClock
# --------------------------------------------------------------------- #
class TestStateClock:
    def test_accumulates_seconds_per_state(self):
        clk = FakeClock()
        sc = StateClock("healthy", clock=clk)
        clk.advance(2.0)
        assert sc.seconds_in("healthy") == pytest.approx(2.0)
        dwell = sc.transition("dead")
        assert dwell == pytest.approx(2.0)
        clk.advance(3.0)
        sc.transition("healthy")
        clk.advance(1.0)
        assert sc.seconds_in("dead") == pytest.approx(3.0)
        assert sc.seconds_in("healthy") == pytest.approx(3.0)
        assert sc.transitions == 2

    def test_summary_is_json_ready(self):
        clk = FakeClock()
        sc = StateClock("a", clock=clk)
        clk.advance(0.5)
        sc.transition("b")
        summary = json.loads(json.dumps(sc.summary()))
        assert summary["state"] == "b"
        assert summary["transitions"] == 1
        assert summary["seconds"]["a"] == pytest.approx(0.5)


# --------------------------------------------------------------------- #
# HealthState: the clock-driven backoff schedule
# --------------------------------------------------------------------- #
class TestHealthState:
    def test_escalates_suspect_then_dead(self):
        clk = FakeClock()
        h = HealthState(probe_interval_s=1.0, probe_backoff_max_s=30.0,
                        clock=clk)
        assert h.state == HEALTH_HEALTHY and h.routable()
        h.record_failure()
        assert h.state == HEALTH_SUSPECT and h.routable()
        h.record_failure()
        assert h.state == HEALTH_DEAD
        assert not h.routable()               # backoff has not elapsed

    def test_backoff_doubles_per_failure_and_caps(self):
        clk = FakeClock()
        h = HealthState(probe_interval_s=1.0, probe_backoff_max_s=8.0,
                        clock=clk)
        expected = [1.0, 1.0, 2.0, 4.0, 8.0, 8.0]   # capped at the max
        for backoff in expected:
            h.record_failure()
            assert h.backoff_s() == pytest.approx(backoff)
            assert h.next_probe_at == pytest.approx(clk.now + backoff)

    def test_probe_due_only_after_the_backoff_elapses(self):
        clk = FakeClock()
        h = HealthState(probe_interval_s=1.0, probe_backoff_max_s=30.0,
                        clock=clk)
        h.record_failure()
        h.record_failure()
        assert not h.probe_due() and not h.routable()
        clk.advance(0.99)
        assert not h.probe_due()
        clk.advance(0.02)
        assert h.probe_due()
        assert h.routable()                   # probe-due dead = last resort

    def test_success_readmits_and_resets(self):
        clk = FakeClock()
        h = HealthState(clock=clk)
        assert h.record_success() is False    # healthy -> healthy: no-op
        h.record_failure()
        h.record_failure()
        clk.advance(5.0)
        assert h.record_success() is True
        assert h.state == HEALTH_HEALTHY
        assert h.consecutive_failures == 0
        assert h.readmissions == 1
        assert h.dwell.seconds_in(HEALTH_DEAD) == pytest.approx(5.0)

    def test_healthy_never_probes(self):
        h = HealthState(clock=FakeClock())
        assert not h.probe_due()

    def test_bad_intervals_rejected(self):
        with pytest.raises(ValueError):
            HealthState(probe_interval_s=0.0)
        with pytest.raises(ValueError):
            HealthState(probe_interval_s=2.0, probe_backoff_max_s=1.0)


# --------------------------------------------------------------------- #
# Scripted shards: raw TCP servers with controlled misbehaviour
# --------------------------------------------------------------------- #
@contextmanager
def scripted_shard(handler):
    """Serve ``handler(conn)`` per accepted connection on a fresh port."""
    listener = socket.create_server(("127.0.0.1", 0))
    listener.settimeout(0.1)
    address = f"127.0.0.1:{listener.getsockname()[1]}"
    stop = threading.Event()

    def accept_loop():
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=handler, args=(conn,), daemon=True).start()

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        yield address
    finally:
        stop.set()
        thread.join(timeout=TIMEOUT)
        listener.close()


def duplicating_handler(conn):
    """Answers every frame — twice.  The duplicate must be deduplicated."""
    with conn, conn.makefile("rb") as lines:
        while True:
            line = lines.readline()
            if not line:
                return
            frame = json.loads(line)
            reply = encode_frame({"ok": True, "verb": "ping",
                                  "id": frame.get("id")})
            conn.sendall(reply + reply)


def blackhole_handler(conn):
    """Accepts and reads, never replies: the hung-shard failure mode."""
    with conn:
        try:
            while conn.recv(65536):
                pass
        except OSError:
            pass


class TestShardLinkDedupe:
    def test_duplicate_replies_are_dropped_not_mismatched(self):
        with scripted_shard(duplicating_handler) as address:
            link = _ShardLink(address, timeout_s=TIMEOUT)
            try:
                replies = link.exchange([{"id": 0, "verb": "ping"},
                                         {"id": 1, "verb": "ping"}])
                assert set(replies) == {0, 1}
                assert all(r["ok"] for r in replies.values())
                assert link.duplicate_replies >= 1
            finally:
                link.close()

    def test_stale_reply_does_not_poison_the_next_exchange(self):
        # Exchange 1 leaves a duplicate reply in the connection buffer;
        # exchange 2 uses fresh per-exchange wire ids, so the stale line is
        # recognised as noise and dropped — with batch-index ids it would
        # have been mistaken for exchange 2's own answer.
        with scripted_shard(duplicating_handler) as address:
            link = _ShardLink(address, timeout_s=TIMEOUT)
            try:
                first = link.exchange([{"id": 0, "verb": "ping"}])
                assert first[0]["ok"] is True
                second = link.exchange([{"id": 0, "verb": "ping"}])
                assert set(second) == {0} and second[0]["ok"] is True
                assert link.duplicate_replies >= 1   # the stale line, dropped
                assert link.health.state == HEALTH_HEALTHY
            finally:
                link.close()


class TestShardLinkDeadline:
    def test_hung_link_raises_within_the_deadline_without_resend(self):
        with scripted_shard(blackhole_handler) as address:
            link = _ShardLink(address, timeout_s=0.3)
            try:
                start = time.monotonic()
                with pytest.raises(ShardError, match="timed out"):
                    link.exchange([{"id": 0, "verb": "ping"}])
                elapsed = time.monotonic() - start
                assert elapsed < 2.0            # one deadline, not a multiple
                assert link.routed == 1          # a timeout is never resent
                assert link.health.state == HEALTH_SUSPECT
            finally:
                link.close()

    def test_unreachable_address_fails_fast_as_unreachable(self):
        # A closed port refuses instantly; the error must say so (not
        # "timed out") and the health machine must record the failure.
        probe = socket.create_server(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        link = _ShardLink(f"127.0.0.1:{port}", timeout_s=2.0)
        with pytest.raises(ShardError, match="unreachable"):
            link.exchange([{"id": 0, "verb": "ping"}])
        assert link.health.consecutive_failures == 1


class TestServeClientDeadline:
    def test_blackholed_server_times_out_within_the_deadline(self):
        # The client's timeout_s is a per-request wall-clock bound: a
        # server that accepts and then never replies must fail the request
        # as TimeoutError within the deadline, not hang on the read.
        with scripted_shard(blackhole_handler) as address:
            with ServeClient(address, timeout_s=0.3) as client:
                start = time.monotonic()
                with pytest.raises(TimeoutError, match="deadline"):
                    client.request({"verb": "ping"})
                assert time.monotonic() - start < 2.0

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout_s"):
            ServeClient("127.0.0.1:1", timeout_s=0.0)


class TestShardGroup:
    def _dead_group(self, clk):
        group = _ShardGroup(0, ["127.0.0.1:9", "127.0.0.1:10"], timeout_s=1.0,
                            probe_interval_s=1.0, probe_backoff_max_s=30.0,
                            clock=clk)
        for link in group.links:
            link.health.record_failure()
            link.health.record_failure()
        return group

    def test_all_replicas_dead_fails_fast_without_connecting(self):
        clk = FakeClock()
        group = self._dead_group(clk)
        start = time.monotonic()
        with pytest.raises(ShardError, match="dead"):
            group.exchange([{"id": 0, "verb": "ping"}])
        assert time.monotonic() - start < 0.5    # no connect attempts at all
        assert group.frames == 1 and group.frames_failed == 1

    def test_probe_due_dead_replicas_become_candidates_again(self):
        clk = FakeClock()
        group = self._dead_group(clk)
        assert group.candidates() == []
        clk.advance(60.0)                        # backoff elapsed for both
        assert len(group.candidates()) == 2

    def test_candidates_rank_healthiest_then_least_loaded(self):
        clk = FakeClock()
        group = _ShardGroup(0, ["a:1", "a:2", "a:3"], timeout_s=1.0,
                            probe_interval_s=1.0, probe_backoff_max_s=30.0,
                            clock=clk)
        group.links[0].health.record_failure()   # suspect
        group.links[1].inflight = 4              # healthy but loaded
        ranked = [link.address for link in group.candidates()]
        assert ranked == ["a:3", "a:2", "a:1"]


# --------------------------------------------------------------------- #
# Full-router fault injection (real spawned shards)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)


@pytest.fixture(scope="module")
def service(graph, tmp_path_factory):
    service = EmbeddingService(dim=8, epoch_scale=0.02,
                               store=tmp_path_factory.mktemp("store"))
    service.ensure_stored("gosh-fast", graph)
    return service


def assert_bit_exact(reply, expected):
    assert reply["ok"] is True, reply
    assert reply["ids"] == expected.ids.tolist()
    got = np.asarray(reply["scores"], dtype=np.float32)
    assert got.tobytes() == expected.scores.tobytes()


def restart_server_at(service, graphs, address) -> ServerThread:
    """Bind a fresh QueryServer on the exact address a dead shard used."""
    host, _, port = address.rpartition(":")
    last_error = None
    for _ in range(40):
        handle = ServerThread(QueryServer(service, graphs, host=host,
                                          port=int(port)))
        try:
            handle.start()
            return handle
        except OSError as exc:                  # port still in teardown
            last_error = exc
            time.sleep(0.05)
    raise AssertionError(f"could not rebind {address}: {last_error}")


class TestHungShard:
    def test_hung_shard_fails_only_its_range_within_the_deadline(
            self, service, graph):
        # Range 0 is a real shard; range 1 blackholes after accept.  A
        # fan-out touching range 1 must fail within the shard deadline,
        # while range-0-only queries keep being served.
        shard = ServerThread(QueryServer(service, {"pl300": graph}))
        shard_address = shard.start()
        try:
            with scripted_shard(blackhole_handler) as hole:
                router = ShardRouter({"pl300": graph}, [shard_address, hole],
                                     default_tool="gosh-fast",
                                     shard_timeout_s=0.5,
                                     probe_interval_s=60.0,
                                     probe_backoff_max_s=60.0)
                with router as address, \
                        ServeClient(address, timeout_s=TIMEOUT) as client:
                    expected = service.query("gosh-fast", graph, vertices=[3],
                                             k=5, vertex_range=(0, 150))
                    assert_bit_exact(
                        client.query(vertices=[3], k=5, vertex_range=(0, 150)),
                        expected)

                    start = time.monotonic()
                    reply = client.query(vertices=[3], k=5)   # spans range 1
                    elapsed = time.monotonic() - start
                    assert reply["ok"] is False
                    assert "timed out" in reply["error"]
                    assert elapsed < 3.0          # deadline, not a hang

                    # Other ranges keep serving after the failure ...
                    assert_bit_exact(
                        client.query(vertices=[3], k=5, vertex_range=(0, 150)),
                        expected)
                    # ... and stats stays responsive: the unhealthy replica
                    # is reported from the health machine, never re-dialled.
                    stats = client.stats()
                    rows = {row["address"]: row
                            for row in stats["service"]["shards"]}
                    assert rows[hole]["state"] == HEALTH_SUSPECT
                    assert "error" in rows[hole]
                    assert "server" in rows[shard_address]
        finally:
            shard.stop()


class TestKillRestartReadmission:
    def test_killed_then_restarted_shard_is_reprobed_and_readmitted(
            self, service, graph):
        router = ShardRouter.spawn(service, {"pl300": graph}, shard_count=2,
                                   default_tool="gosh-fast",
                                   shard_timeout_s=TIMEOUT,
                                   probe_interval_s=0.05,
                                   probe_backoff_max_s=0.2)
        with router as address, \
                ServeClient(address, timeout_s=30.0) as client:
            expected = service.query("gosh-fast", graph,
                                     vertices=[0, 299], k=5)
            assert_bit_exact(client.query(vertices=[0, 299], k=5), expected)

            link = router.backend.groups[1].links[0]
            dead_address = link.address
            router._owned[1].stop()              # kill range 1's only replica

            reply = client.query(vertices=[299], k=3)
            assert reply["ok"] is False
            assert "ShardError" in reply["error"]
            assert link.health.state in (HEALTH_SUSPECT, HEALTH_DEAD)

            replacement = restart_server_at(service, {"pl300": graph},
                                            dead_address)
            try:
                # The background prober must readmit it — no traffic needed.
                deadline = time.monotonic() + 30.0
                while link.health.state != HEALTH_HEALTHY:
                    assert time.monotonic() < deadline, \
                        "restarted shard was never readmitted"
                    time.sleep(0.02)
                assert link.health.readmissions >= 1
                assert link.probes_ok >= 1
                # Readmitted range serves bit-exact results again.
                assert_bit_exact(client.query(vertices=[0, 299], k=5),
                                 expected)
                assert_bit_exact(client.query(vertices=[299], k=3),
                                 service.query("gosh-fast", graph,
                                               vertices=[299], k=3))
            finally:
                replacement.stop()


class TestReplicaFailover:
    def test_failover_within_a_request_stays_bit_exact(self, service, graph):
        router = ShardRouter.spawn(service, {"pl300": graph}, shard_count=2,
                                   replicas=2, default_tool="gosh-fast",
                                   shard_timeout_s=TIMEOUT,
                                   probe_interval_s=60.0,
                                   probe_backoff_max_s=60.0)
        with router as address, \
                ServeClient(address, timeout_s=30.0) as client:
            assert len(router.backend.addresses) == 4
            assert [len(g.links) for g in router.backend.groups] == [2, 2]
            expected = service.query("gosh-fast", graph,
                                     vertices=[10, 200], k=6)
            assert_bit_exact(client.query(vertices=[10, 200], k=6), expected)

            router._owned[0].stop()       # range 0's primary replica dies
            group = router.backend.groups[0]

            # The very next request fails over mid-request: same answer.
            assert_bit_exact(client.query(vertices=[10, 200], k=6), expected)
            assert group.failovers >= 1
            assert group.frames_failed == 0
            assert group.links[0].health.state != HEALTH_HEALTHY

            # Later requests rank the suspect replica last and go straight
            # to the healthy one — no more failovers accrue.
            failovers_before = group.failovers
            assert_bit_exact(client.query(vertices=[10, 200], k=6), expected)
            assert group.failovers == failovers_before
            assert router.backend.requests_failed == 0

    def test_draining_replica_triggers_failover_too(self, service, graph):
        # A replica mid-drain still answers the socket but refuses queries
        # with "shutting-down" — its own reply says "retry elsewhere".  The
        # group must treat that as a replica failure, not a served batch.
        router = ShardRouter.spawn(service, {"pl300": graph}, shard_count=2,
                                   replicas=2, default_tool="gosh-fast",
                                   shard_timeout_s=TIMEOUT,
                                   probe_interval_s=60.0,
                                   probe_backoff_max_s=60.0)
        with router as address, \
                ServeClient(address, timeout_s=30.0) as client:
            expected = service.query("gosh-fast", graph, vertices=[20], k=4)
            assert_bit_exact(client.query(vertices=[20], k=4), expected)
            # Flip range 0's primary into drain mode without closing it.
            router._owned[0].server._stopping = True
            assert_bit_exact(client.query(vertices=[20], k=4), expected)
            group = router.backend.groups[0]
            assert group.failovers >= 1
            assert group.links[0].health.state != HEALTH_HEALTHY
            assert router.backend.requests_failed == 0


class TestStatsCoherenceUnderFailure:
    def test_counters_partition_the_request_stream(self, service, graph):
        router = ShardRouter.spawn(service, {"pl300": graph}, shard_count=2,
                                   default_tool="gosh-fast",
                                   shard_timeout_s=TIMEOUT,
                                   probe_interval_s=60.0,
                                   probe_backoff_max_s=60.0)
        with router as address, \
                ServeClient(address, timeout_s=30.0) as client:
            for vertex in (0, 1, 2):             # 3 healthy requests
                assert client.query(vertices=[vertex], k=3)["ok"] is True
            router._owned[1].stop()
            for vertex in (3, 4):                # 2 failed requests
                assert client.query(vertices=[vertex], k=3)["ok"] is False

            backend = router.backend
            total = backend.requests_ok + backend.requests_failed
            assert total == 5
            assert backend.requests_ok == 3
            assert backend.requests_failed == 2
            assert (backend.shard_errors + backend.plan_errors
                    == backend.requests_failed)

            # Every frame offered to a replica group was either answered by
            # some replica or counted failed — across every group.
            for group in backend.groups:
                assert group.frames == total     # all requests span all ranges
                answered = sum(link.frames_ok for link in group.links)
                assert answered + group.frames_failed == group.frames
                for link in group.links:
                    assert link.frames_ok <= link.routed

            stats = backend.stats()["router"]
            assert stats["requests_ok"] + stats["requests_failed"] == total
            assert stats["shard_errors"] == backend.shard_errors
            assert stats["probes_ok"] <= stats["probes_sent"]
            assert stats["failovers"] == 0       # single replica per range
