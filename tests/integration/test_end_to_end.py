"""Integration tests: the full GOSH workflow against the paper's claims (scaled down)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MileConfig, mile_embed
from repro.coarsening import multi_edge_collapse, parallel_multi_edge_collapse
from repro.embedding import FAST, NO_COARSE, NORMAL, SLOW, GoshEmbedder, VerseConfig, embed, verse_embed
from repro.eval import evaluate_embedding, train_test_split
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.graph import social_community
from repro.harness import load_dataset


@pytest.fixture(scope="module")
def medium_graph():
    return social_community(900, intra_degree=10, hub_fraction=0.01, hub_reach=0.05, seed=0)


@pytest.fixture(scope="module")
def medium_split(medium_graph):
    return train_test_split(medium_graph, seed=0)


class TestLinkPredictionQuality:
    """Scaled-down Table 6: every GOSH configuration reaches useful AUCROC."""

    @pytest.mark.parametrize("config", [FAST, NORMAL, SLOW], ids=lambda c: c.name)
    def test_gosh_configs_learn(self, medium_split, config):
        cfg = config.scaled(0.35, dim=32)
        emb = GoshEmbedder(cfg).embed(medium_split.train_graph).embedding
        result = evaluate_embedding(emb, medium_split, seed=0)
        assert result.auc > 0.70, f"{config.name} AUCROC too low: {result.auc:.3f}"

    def test_no_coarse_also_learns(self, medium_split):
        cfg = NO_COARSE.scaled(0.35, dim=32)
        emb = GoshEmbedder(cfg).embed(medium_split.train_graph).embedding
        result = evaluate_embedding(emb, medium_split, seed=0)
        assert result.auc > 0.80

    def test_slow_at_least_as_good_as_fast(self, medium_split):
        fast = GoshEmbedder(FAST.scaled(0.35, dim=32)).embed(medium_split.train_graph).embedding
        slow = GoshEmbedder(SLOW.scaled(0.35, dim=32)).embed(medium_split.train_graph).embedding
        auc_fast = evaluate_embedding(fast, medium_split, seed=0).auc
        auc_slow = evaluate_embedding(slow, medium_split, seed=0).auc
        assert auc_slow >= auc_fast - 0.03  # slow may not lose meaningfully

    def test_gosh_faster_than_no_coarse(self, medium_split):
        """The core speed claim: coarsening cuts embedding time substantially."""
        fast_result = GoshEmbedder(FAST.scaled(0.35, dim=32)).embed(medium_split.train_graph)
        nocoarse_result = GoshEmbedder(NO_COARSE.scaled(0.35, dim=32)).embed(medium_split.train_graph)
        assert fast_result.total_seconds < nocoarse_result.total_seconds


class TestCoarseningClaims:
    def test_parallel_coarsening_faster_than_sequential(self):
        """Table 4 shape: the parallel algorithm wins, quality is comparable."""
        graph = load_dataset("hyperlink2012", seed=0)
        seq = multi_edge_collapse(graph, threshold=100)
        par = parallel_multi_edge_collapse(graph, threshold=100)
        assert par.total_time() < seq.total_time()
        assert abs(seq.num_levels - par.num_levels) <= 2

    def test_gosh_coarsening_outshrinks_mile(self):
        """Table 5 shape: MultiEdgeCollapse reaches far smaller last levels."""
        from repro.coarsening import mile_coarsen

        graph = load_dataset("com-orkut", seed=0)
        levels = 5
        gosh = multi_edge_collapse(graph, threshold=1, max_levels=levels)
        mile = mile_coarsen(graph, num_levels=levels)
        assert gosh.graphs[-1].num_vertices < mile.graphs[-1].num_vertices
        assert gosh.total_time() < mile.total_time()


class TestLargeGraphPath:
    def test_out_of_memory_graph_embeds_via_partitioning(self):
        """Table 7 setting: the embedding matrix does not fit, GOSH still works."""
        graph = load_dataset("soc-sinaweibo", seed=0)
        dim = 32
        matrix_bytes = graph.num_vertices * dim * 4
        device = SimulatedDevice(spec=DeviceSpec(name="small", memory_bytes=matrix_bytes // 3))
        cfg = FAST.scaled(0.1, dim=dim)
        result = GoshEmbedder(cfg, device=device).embed(graph)
        assert result.large_graph_stats, "partitioned engine must be used"
        assert result.embedding.shape == (graph.num_vertices, dim)
        split = train_test_split(graph, seed=0)
        # re-embed the training graph through the same memory-limited device
        emb = GoshEmbedder(cfg, device=device).embed(split.train_graph).embedding
        quality = evaluate_embedding(emb, split, classifier="sgd", seed=0)
        assert quality.auc > 0.6


class TestBaselineComparison:
    def test_gosh_fast_beats_verse_on_time(self, medium_split):
        verse = verse_embed(medium_split.train_graph, VerseConfig(dim=32, epochs=210, seed=0))
        gosh = GoshEmbedder(FAST.scaled(0.35, dim=32)).embed(medium_split.train_graph)
        assert gosh.total_seconds < verse.seconds
        verse_auc = evaluate_embedding(verse.embedding, medium_split, seed=0).auc
        gosh_auc = evaluate_embedding(gosh.embedding, medium_split, seed=0).auc
        # quality within a few points of the (slower) baseline
        assert gosh_auc > verse_auc - 0.15

    def test_mile_pipeline_runs_end_to_end(self, medium_split):
        result = mile_embed(medium_split.train_graph,
                            MileConfig(dim=32, coarsening_levels=4, base_epochs=30, seed=0))
        auc = evaluate_embedding(result.embedding, medium_split, seed=0).auc
        assert auc > 0.55
