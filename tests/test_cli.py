"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import write_edge_list


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_embed_defaults(self):
        args = build_parser().parse_args(["embed", "com-dblp"])
        assert args.config == "normal"
        assert args.dim == 128
        assert args.output == "embedding.npy"

    def test_coarsen_flags(self):
        args = build_parser().parse_args(["coarsen", "com-dblp", "--parallel", "--threshold", "50"])
        assert args.parallel is True
        assert args.threshold == 50


class TestCommands:
    def test_datasets_lists_twins(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "com-dblp" in out and "com-friendster" in out

    def test_datasets_scale_filter(self, capsys):
        assert main(["datasets", "--scale", "large"]) == 0
        out = capsys.readouterr().out
        assert "com-friendster" in out
        assert "com-dblp" not in out

    def test_coarsen_named_dataset(self, capsys):
        assert main(["coarsen", "com-amazon", "--parallel"]) == 0
        out = capsys.readouterr().out
        assert "MultiEdgeCollapse" in out
        assert "mean shrink rate" in out

    def test_embed_writes_npy(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "16",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        emb = np.load(out_path)
        assert emb.ndim == 2 and emb.shape[1] == 16
        assert "embedding saved" in capsys.readouterr().out

    def test_embed_from_edge_list_file(self, tmp_path, small_power_graph, capsys):
        edge_file = tmp_path / "graph.txt"
        write_edge_list(small_power_graph, edge_file)
        out_path = tmp_path / "emb.npy"
        code = main(["embed", str(edge_file), "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        assert np.load(out_path).shape[0] == small_power_graph.num_vertices

    def test_evaluate_prints_auc(self, capsys):
        code = main(["evaluate", "com-amazon", "--config", "fast", "--dim", "16",
                     "--epoch-scale", "0.05"])
        assert code == 0
        assert "AUCROC" in capsys.readouterr().out

    def test_unknown_graph_errors(self):
        with pytest.raises(SystemExit):
            main(["coarsen", "no-such-graph-or-file"])


class TestToolRegistryCli:
    def test_tools_lists_registry(self, capsys):
        assert main(["tools"]) == 0
        out = capsys.readouterr().out
        for name in ("verse", "mile", "graphvite", "gosh-fast", "gosh-normal",
                     "gosh-slow", "gosh-nocoarse"):
            assert name in out

    def test_embed_with_tool_flag(self, tmp_path, capsys):
        out_path = tmp_path / "verse.npy"
        code = main(["embed", "com-amazon", "--tool", "verse", "--dim", "8",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        assert np.load(out_path).shape[1] == 8
        assert "tool: verse" in capsys.readouterr().out

    def test_embed_tool_overrides_config(self, tmp_path, capsys):
        out_path = tmp_path / "mile.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--tool", "mile",
                     "--dim", "8", "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        assert "tool: mile" in capsys.readouterr().out

    def test_embed_unknown_tool_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="node2vec"):
            main(["embed", "com-amazon", "--tool", "node2vec",
                  "-o", str(tmp_path / "x.npy")])

    def test_embed_reports_aggregated_partitioned_stats(self, tmp_path, capsys):
        """A tiny device forces the large-graph engine; the report aggregates
        every level that used it, not just the first."""
        out_path = tmp_path / "large.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "32",
                     "--epoch-scale", "0.05", "--device-memory-mb", "0.15",
                     "-o", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "partitioned engine" in out
        assert "levels=" in out and "K=[" in out and "kernels=" in out

    def test_evaluate_with_tool_flag(self, capsys):
        code = main(["evaluate", "com-amazon", "--tool", "gosh-fast", "--dim", "16",
                     "--epoch-scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AUCROC" in out and "gosh-fast" in out
