"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import write_edge_list


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_embed_defaults(self):
        args = build_parser().parse_args(["embed", "com-dblp"])
        assert args.config == "normal"
        assert args.dim == 128
        assert args.output == "embedding.npy"

    def test_coarsen_flags(self):
        args = build_parser().parse_args(["coarsen", "com-dblp", "--parallel", "--threshold", "50"])
        assert args.parallel is True
        assert args.threshold == 50


class TestCommands:
    def test_datasets_lists_twins(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "com-dblp" in out and "com-friendster" in out

    def test_datasets_scale_filter(self, capsys):
        assert main(["datasets", "--scale", "large"]) == 0
        out = capsys.readouterr().out
        assert "com-friendster" in out
        assert "com-dblp" not in out

    def test_coarsen_named_dataset(self, capsys):
        assert main(["coarsen", "com-amazon", "--parallel"]) == 0
        out = capsys.readouterr().out
        assert "MultiEdgeCollapse" in out
        assert "mean shrink rate" in out

    def test_embed_writes_npy(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "16",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        emb = np.load(out_path)
        assert emb.ndim == 2 and emb.shape[1] == 16
        assert "embedding saved" in capsys.readouterr().out

    def test_embed_from_edge_list_file(self, tmp_path, small_power_graph, capsys):
        edge_file = tmp_path / "graph.txt"
        write_edge_list(small_power_graph, edge_file)
        out_path = tmp_path / "emb.npy"
        code = main(["embed", str(edge_file), "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        assert np.load(out_path).shape[0] == small_power_graph.num_vertices

    def test_evaluate_prints_auc(self, capsys):
        code = main(["evaluate", "com-amazon", "--config", "fast", "--dim", "16",
                     "--epoch-scale", "0.05"])
        assert code == 0
        assert "AUCROC" in capsys.readouterr().out

    def test_unknown_graph_errors(self):
        with pytest.raises(SystemExit):
            main(["coarsen", "no-such-graph-or-file"])
