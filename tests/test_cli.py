"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graph import write_edge_list


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_embed_defaults(self):
        args = build_parser().parse_args(["embed", "com-dblp"])
        assert args.config == "normal"
        assert args.dim == 128
        assert args.output == "embedding.npy"

    def test_coarsen_flags(self):
        args = build_parser().parse_args(["coarsen", "com-dblp", "--parallel", "--threshold", "50"])
        assert args.parallel is True
        assert args.threshold == 50


class TestCommands:
    def test_datasets_lists_twins(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "com-dblp" in out and "com-friendster" in out

    def test_datasets_scale_filter(self, capsys):
        assert main(["datasets", "--scale", "large"]) == 0
        out = capsys.readouterr().out
        assert "com-friendster" in out
        assert "com-dblp" not in out

    def test_coarsen_named_dataset(self, capsys):
        assert main(["coarsen", "com-amazon", "--parallel"]) == 0
        out = capsys.readouterr().out
        assert "MultiEdgeCollapse" in out
        assert "mean shrink rate" in out

    def test_embed_writes_npy(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "16",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        emb = np.load(out_path)
        assert emb.ndim == 2 and emb.shape[1] == 16
        assert "embedding saved" in capsys.readouterr().out

    def test_embed_from_edge_list_file(self, tmp_path, small_power_graph, capsys):
        edge_file = tmp_path / "graph.txt"
        write_edge_list(small_power_graph, edge_file)
        out_path = tmp_path / "emb.npy"
        code = main(["embed", str(edge_file), "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        assert np.load(out_path).shape[0] == small_power_graph.num_vertices

    def test_evaluate_prints_auc(self, capsys):
        code = main(["evaluate", "com-amazon", "--config", "fast", "--dim", "16",
                     "--epoch-scale", "0.05"])
        assert code == 0
        assert "AUCROC" in capsys.readouterr().out

    def test_unknown_graph_errors(self):
        with pytest.raises(SystemExit):
            main(["coarsen", "no-such-graph-or-file"])


class TestStoreAndQueryCli:
    def _embed_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "emb.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "-o", str(out_path),
                     "--save", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        return capsys.readouterr().out

    def test_embed_save_writes_store_entry(self, tmp_path, capsys):
        out = self._embed_and_save(tmp_path, capsys)
        assert "stored:" in out and "v0001" in out
        lineages = [p for p in (tmp_path / "store").iterdir() if p.is_dir()]
        assert len(lineages) == 1
        assert (lineages[0] / "v0001" / "manifest.json").is_file()

    def test_export_round_trips_saved_embedding(self, tmp_path, capsys):
        self._embed_and_save(tmp_path, capsys)
        exported = tmp_path / "export.npy"
        code = main(["export", "com-amazon", "--tool", "gosh-fast",
                     "--store-dir", str(tmp_path / "store"), "-o", str(exported)])
        assert code == 0
        assert "exported gosh-fast v0001" in capsys.readouterr().out
        a = np.load(tmp_path / "emb.npy")
        b = np.load(exported)
        assert (a == b).all()

    def test_export_list_and_gc(self, tmp_path, capsys):
        self._embed_and_save(tmp_path, capsys)
        self._embed_and_save(tmp_path, capsys)
        code = main(["export", "--list", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "v0001" in out and "v0002" in out
        code = main(["export", "--gc-keep", "1", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "removed 1 entries" in out
        assert "v0002" in out and "| v0001" not in out

    def test_export_missing_entry_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no stored embedding"):
            main(["export", "com-amazon", "--tool", "gosh-fast",
                  "--store-dir", str(tmp_path / "store"), "-o", str(tmp_path / "x.npy")])

    def test_export_without_tool_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="--tool"):
            main(["export", "com-amazon", "--store-dir", str(tmp_path / "store")])

    def test_query_embeds_stores_and_answers(self, tmp_path, capsys):
        code = main(["query", "com-amazon", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "--vertex", "3", "--vertex", "17",
                     "--top-k", "4", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "embedded and stored: v0001" in out
        assert "top-4 by cosine (blocked backend)" in out
        # Serving stats are observable — and actually wired: the implicit
        # embed must have gone through the service's hierarchy cache.
        assert "hierarchy cache: 1 entries, 0 hits, 1 misses" in out
        assert "store: 1 entries" in out
        assert "query: 2 queries in 1 microbatch(es)" in out

    def test_query_serves_from_store_second_time(self, tmp_path, capsys):
        args = ["query", "com-amazon", "--config", "fast", "--dim", "8",
                "--epoch-scale", "0.02", "--vertex", "0",
                "--store-dir", str(tmp_path / "store")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "served from store: v0001" in capsys.readouterr().out

    def test_query_with_query_file_and_exact_backend(self, tmp_path, capsys):
        vectors = np.random.default_rng(0).standard_normal((2, 8)).astype(np.float32)
        qfile = tmp_path / "queries.npy"
        np.save(qfile, vectors)
        code = main(["query", "com-amazon", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "--query-file", str(qfile),
                     "--metric", "dot", "--query-backend", "exact", "--top-k", "2",
                     "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-2 by dot (exact backend)" in out
        assert "q0" in out and "q1" in out

    def test_query_file_entries_share_one_warm_service(self, tmp_path, capsys):
        """Each --query-file entry is its own request through ONE service:
        the first builds the engine, the rest hit the engine cache — the
        warm path the resident server relies on — and all of them land in
        a single microbatched backend call."""
        vectors = np.random.default_rng(1).standard_normal((3, 8)).astype(np.float32)
        qfile = tmp_path / "queries.npy"
        np.save(qfile, vectors)
        code = main(["query", "com-amazon", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "--query-file", str(qfile),
                     "--top-k", "2", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "query: 3 queries in 1 microbatch(es)" in out
        assert "engine cache: 1 engine(s), 2 hits, 1 misses, 0 evictions" in out

    def test_query_defaults_connect_to_embed_save(self, tmp_path, capsys):
        """`embed --save` then `query` with no dim flags must serve from the
        store (query's default dim adapts to whatever is stored) instead of
        silently re-embedding under a different configuration."""
        args = build_parser().parse_args(["query", "com-amazon"])
        assert args.dim is None and args.epoch_scale == 1.0
        self._embed_and_save(tmp_path, capsys)        # stores a dim-8 entry
        code = main(["query", "com-amazon", "--config", "fast", "--vertex", "0",
                     "--top-k", "3", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "served from store: v0001" in out

    def test_query_unknown_backend_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="faiss"):
            main(["query", "com-amazon", "--query-backend", "faiss",
                  "--store-dir", str(tmp_path / "store")])

    def test_query_bad_knobs_fail_before_embedding(self, tmp_path):
        """Invalid sizes must error out before any training runs."""
        with pytest.raises(SystemExit, match="block_rows"):
            main(["query", "com-amazon", "--block-rows", "0",
                  "--store-dir", str(tmp_path / "store")])
        with pytest.raises(SystemExit, match="top-k"):
            main(["query", "com-amazon", "--top-k", "0",
                  "--store-dir", str(tmp_path / "store")])
        assert not (tmp_path / "store").exists()      # nothing was embedded

    def test_gc_keep_honours_graph_and_tool_scope(self, tmp_path, capsys):
        """A scoped --gc-keep must not collect other graphs' lineages."""
        self._embed_and_save(tmp_path, capsys)        # com-amazon entry
        code = main(["embed", "com-dblp", "--config", "fast", "--dim", "8",
                     "--epoch-scale", "0.02", "-o", str(tmp_path / "d.npy"),
                     "--save", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        capsys.readouterr()
        code = main(["export", "com-dblp", "--tool", "gosh-fast", "--gc-keep", "0",
                     "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "removed 1 entries" in out             # only com-dblp collected
        code = main(["export", "--list", "--store-dir", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "com-amazon" in out                    # out-of-scope survivor
        assert "com-dblp" not in out

    def test_tools_reports_query_backends_and_store(self, tmp_path, capsys):
        self._embed_and_save(tmp_path, capsys)
        assert main(["tools", "--store-dir", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "query backends: exact, blocked" in out
        assert "store at" in out and "1 entries" in out


class TestServeAndLoadCli:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve", "com-amazon"])
        assert args.host == "127.0.0.1" and args.port == 7654
        assert args.max_inflight == 64 and args.queue_depth == 128
        assert args.max_batch == 32
        assert args.socket is None and args.max_seconds is None
        assert args.no_warm is False

    def test_load_parser_defaults(self):
        args = build_parser().parse_args(["load", "127.0.0.1:7654"])
        assert args.clients == 4 and args.mode == "closed"
        assert args.duration == 2.0 and args.rate == 50.0
        assert args.json is None

    def test_load_bad_mode_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["load", "x:1", "--mode", "sideways"])

    def test_load_unreachable_server_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot drive"):
            main(["load", f"unix:{tmp_path}/nope.sock", "--duration", "0.1"])

    @pytest.mark.timeout(120)
    def test_serve_then_load_round_trip(self, tmp_path, capsys):
        """`repro-gosh serve` warms the store and serves until --max-seconds;
        `repro-gosh load` measures it and writes the JSON report."""
        import json
        import threading
        import time

        sock = tmp_path / "serve.sock"
        report_path = tmp_path / "report.json"
        serve_rc: list[int] = []

        def run_server() -> None:
            serve_rc.append(main([
                "serve", "com-amazon", "--config", "fast", "--dim", "8",
                "--epoch-scale", "0.02", "--socket", str(sock),
                "--store-dir", str(tmp_path / "store"), "--max-seconds", "6"]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while not sock.exists():
            assert time.monotonic() < deadline, "server socket never appeared"
            time.sleep(0.05)
        code = main(["load", f"unix:{sock}", "--clients", "2",
                     "--duration", "0.4", "--num-vertices", "100",
                     "--top-k", "3", "--json", str(report_path)])
        assert code == 0
        thread.join(timeout=60)
        assert serve_rc == [0]
        out = capsys.readouterr().out
        assert "embedded and stored" in out or "served from store" in out
        assert "throughput:" in out and "queries/s" in out
        report = json.loads(report_path.read_text())
        assert report["answered"] > 0
        assert report["rejection_rate"] == 0.0
        assert {"p50", "p95", "p99"} <= set(report["latency_ms"])


class TestStatsCli:
    def test_stats_parser_defaults(self):
        args = build_parser().parse_args(["stats", "127.0.0.1:7654"])
        assert args.metrics is False
        assert args.count == 1 and args.interval == 2.0
        assert args.timeout == 10.0

    def test_stats_unreachable_server_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["stats", f"unix:{tmp_path}/nope.sock", "--timeout", "0.2"])

    @pytest.mark.timeout(120)
    def test_stats_against_live_server_with_trace_export(self, tmp_path, capsys):
        """`repro-gosh stats` polls a live `serve --trace-dir` process: pretty
        JSON and Prometheus text both work, and shutdown exports the trace."""
        import json
        import threading
        import time

        sock = tmp_path / "serve.sock"
        trace_dir = tmp_path / "traces"
        serve_rc: list[int] = []

        def run_server() -> None:
            serve_rc.append(main([
                "serve", "com-amazon", "--config", "fast", "--dim", "8",
                "--epoch-scale", "0.02", "--socket", str(sock),
                "--store-dir", str(tmp_path / "store"),
                "--trace-dir", str(trace_dir), "--max-seconds", "6"]))

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        deadline = time.monotonic() + 60
        while not sock.exists():
            assert time.monotonic() < deadline, "server socket never appeared"
            time.sleep(0.05)

        time.sleep(0.2)
        capsys.readouterr()  # drain the server thread's startup chatter
        assert main(["stats", f"unix:{sock}"]) == 0
        out = capsys.readouterr().out
        stats = json.loads(out[out.index("{"):])
        assert stats["server"]["queue_depth"] == 128
        assert "service" in stats

        assert main(["stats", f"unix:{sock}", "--metrics"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_server_queries_admitted_total counter" in text
        assert "repro_server_inflight 0" in text

        thread.join(timeout=60)
        assert serve_rc == [0]
        trace_file = trace_dir / "serve.trace.json"
        assert trace_file.exists()
        payload = json.loads(trace_file.read_text())
        # Only query paths record spans, so a stats-only session exports a
        # valid (possibly empty) envelope — Perfetto opens it either way.
        assert isinstance(payload["traceEvents"], list)
        assert payload["displayTimeUnit"] == "ms"


class TestToolRegistryCli:
    def test_tools_lists_registry(self, capsys):
        assert main(["tools"]) == 0
        out = capsys.readouterr().out
        for name in ("verse", "mile", "graphvite", "gosh-fast", "gosh-normal",
                     "gosh-slow", "gosh-nocoarse"):
            assert name in out

    def test_embed_with_tool_flag(self, tmp_path, capsys):
        out_path = tmp_path / "verse.npy"
        code = main(["embed", "com-amazon", "--tool", "verse", "--dim", "8",
                     "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        assert np.load(out_path).shape[1] == 8
        assert "tool: verse" in capsys.readouterr().out

    def test_embed_tool_overrides_config(self, tmp_path, capsys):
        out_path = tmp_path / "mile.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--tool", "mile",
                     "--dim", "8", "--epoch-scale", "0.02", "-o", str(out_path)])
        assert code == 0
        assert "tool: mile" in capsys.readouterr().out

    def test_embed_unknown_tool_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="node2vec"):
            main(["embed", "com-amazon", "--tool", "node2vec",
                  "-o", str(tmp_path / "x.npy")])

    def test_embed_reports_aggregated_partitioned_stats(self, tmp_path, capsys):
        """A tiny device forces the large-graph engine; the report aggregates
        every level that used it, not just the first."""
        out_path = tmp_path / "large.npy"
        code = main(["embed", "com-amazon", "--config", "fast", "--dim", "32",
                     "--epoch-scale", "0.05", "--device-memory-mb", "0.15",
                     "-o", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "partitioned engine" in out
        assert "levels=" in out and "K=[" in out and "kernels=" in out

    def test_evaluate_with_tool_flag(self, capsys):
        code = main(["evaluate", "com-amazon", "--tool", "gosh-fast", "--dim", "16",
                     "--epoch-scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AUCROC" in out and "gosh-fast" in out


class TestCrashSafetyCli:
    """``embed --checkpoint-every / --inject-fault / --resume`` round trip."""

    @pytest.fixture(autouse=True)
    def clean_registry(self):
        from repro.faults import FAULTS

        FAULTS.reset()
        yield
        FAULTS.reset()

    @pytest.fixture
    def graph_file(self, tmp_path):
        from repro.graph import powerlaw_cluster

        path = tmp_path / "graph.txt"
        write_edge_list(powerlaw_cluster(400, m=3, seed=1), path)
        return path

    def embed_args(self, tmp_path, graph_file, out_name, *extra):
        return ["embed", str(graph_file), "--config", "normal", "--dim", "16",
                "--epoch-scale", "0.2", "--seed", "0",
                "--device-memory-mb", "0.02",
                "--store-dir", str(tmp_path / "store"),
                "-o", str(tmp_path / out_name), *extra]

    def test_kill_resume_round_trip_is_bit_exact(self, tmp_path, graph_file,
                                                 capsys):
        from repro.cli import EXIT_INJECTED_FAULT

        assert main(self.embed_args(tmp_path, graph_file, "golden.npy")) == 0
        code = main(self.embed_args(
            tmp_path, graph_file, "crashed.npy",
            "--checkpoint-every", "1", "--inject-fault", "rotation-boundary:2"))
        assert code == EXIT_INJECTED_FAULT
        out = capsys.readouterr().out
        assert "injected fault" in out and "--resume" in out
        assert not (tmp_path / "crashed.npy").exists()

        code = main(self.embed_args(tmp_path, graph_file, "resumed.npy",
                                    "--resume"))
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint" in out
        assert np.array_equal(np.load(tmp_path / "golden.npy"),
                              np.load(tmp_path / "resumed.npy"))

    def test_successful_checkpointed_run_sweeps_its_lineage(self, tmp_path,
                                                            graph_file, capsys):
        code = main(self.embed_args(tmp_path, graph_file, "out.npy",
                                    "--checkpoint-every", "1"))
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoints saved:" in out
        assert "swept" in out and "spent checkpoint" in out
        # The store holds no leftover .ckpt lineage afterwards.
        from repro.store import EmbeddingStore

        assert EmbeddingStore(tmp_path / "store").stats()["entries"] == 0

    def test_bad_inject_fault_spec_is_a_usage_error(self, tmp_path, graph_file):
        for spec in ("no-such-point", "rotation-boundary:x",
                     "rotation-boundary:0"):
            with pytest.raises(SystemExit):
                main(self.embed_args(tmp_path, graph_file, "x.npy",
                                     "--inject-fault", spec))

    def test_injected_fault_without_checkpointing_gives_no_resume_hint(
            self, tmp_path, graph_file, capsys):
        from repro.cli import EXIT_INJECTED_FAULT

        code = main(self.embed_args(tmp_path, graph_file, "x.npy",
                                    "--inject-fault", "rotation-boundary:1"))
        assert code == EXIT_INJECTED_FAULT
        assert "--resume" not in capsys.readouterr().out
