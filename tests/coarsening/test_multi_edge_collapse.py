"""Unit tests for the sequential MultiEdgeCollapse coarsening (Algorithm 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsening import (
    coarsen_graph,
    collapse_once,
    degree_order,
    multi_edge_collapse,
)
from repro.graph import CSRGraph, powerlaw_cluster, ring, social_community, star


class TestDegreeOrder:
    def test_decreasing_degrees(self, small_power_graph):
        order = degree_order(small_power_graph)
        degs = small_power_graph.degrees[order]
        assert np.all(np.diff(degs) <= 0)

    def test_covers_all_vertices(self, small_power_graph):
        order = degree_order(small_power_graph)
        assert sorted(order.tolist()) == list(range(small_power_graph.num_vertices))

    def test_empty_graph(self):
        order = degree_order(CSRGraph.empty(0))
        assert order.size == 0

    def test_ties_broken_by_vertex_id(self, ring_graph):
        order = degree_order(ring_graph)
        assert order.tolist() == list(range(ring_graph.num_vertices))


class TestCollapseOnce:
    def test_every_vertex_mapped(self, small_power_graph):
        mapping, k = collapse_once(small_power_graph)
        assert mapping.shape[0] == small_power_graph.num_vertices
        assert np.all(mapping >= 0)
        assert np.all(mapping < k)

    def test_cluster_ids_contiguous(self, small_power_graph):
        mapping, k = collapse_once(small_power_graph)
        assert set(np.unique(mapping).tolist()) == set(range(k))

    def test_shrinks_graph(self, small_power_graph):
        _, k = collapse_once(small_power_graph)
        assert k < small_power_graph.num_vertices

    def test_star_collapses_to_single_cluster(self, star_graph):
        mapping, k = collapse_once(star_graph)
        # Hub + its leaves: all leaves have degree 1 <= delta, so they join.
        assert k == 1
        assert np.all(mapping == 0)

    def test_clusters_are_connected_sets(self, small_power_graph):
        """Every non-singleton cluster member is adjacent to the cluster hub."""
        mapping, k = collapse_once(small_power_graph)
        # Reconstruct cluster membership; within a cluster, there is a vertex
        # (the hub that opened it) adjacent to all other members.
        for cluster in range(k):
            members = np.flatnonzero(mapping == cluster)
            if members.shape[0] <= 1:
                continue
            found_hub = False
            for candidate in members:
                nbrs = set(small_power_graph.neighbors(int(candidate)).tolist())
                if all(int(m) in nbrs for m in members if m != candidate):
                    found_hub = True
                    break
            assert found_hub, f"cluster {cluster} is not a star around any member"

    def test_hub_rule_prevents_hub_merges(self):
        g = social_community(400, intra_degree=8, hub_fraction=0.02, hub_reach=0.2, seed=0)
        delta = g.num_edges / g.num_vertices
        mapping, _ = collapse_once(g, hub_rule=True)
        hubs = np.flatnonzero(g.degrees > delta)
        # No two *adjacent* hubs may share a cluster (the rule only prevents
        # a hub joining another hub's cluster directly).
        for h in hubs:
            for nbr in g.neighbors(int(h)):
                if g.degrees[nbr] > delta and int(nbr) != int(h):
                    # one of them must have opened its own cluster
                    assert not (
                        mapping[h] == mapping[nbr]
                        and g.degrees[h] > delta
                        and g.degrees[nbr] > delta
                    ) or True  # membership allowed only via a third vertex
        # Stronger check: a hub's cluster owner is never another hub it is
        # adjacent to, unless the rule is disabled.
        mapping_no_rule, k_no_rule = collapse_once(g, hub_rule=False)
        _, k_rule = collapse_once(g, hub_rule=True)
        # Disabling the rule can only merge more aggressively.
        assert k_no_rule <= k_rule


class TestCoarsenGraph:
    def test_no_self_loops(self, small_power_graph):
        mapping, k = collapse_once(small_power_graph)
        coarse = coarsen_graph(small_power_graph, mapping, k)
        for v in range(coarse.num_vertices):
            assert v not in coarse.neighbors(v)

    def test_edge_projection(self, small_power_graph):
        mapping, k = collapse_once(small_power_graph)
        coarse = coarsen_graph(small_power_graph, mapping, k)
        # Every coarse edge must come from at least one fine edge.
        for cu, cv in coarse.undirected_edge_array():
            fine_u = np.flatnonzero(mapping == cu)
            fine_v = np.flatnonzero(mapping == cv)
            assert any(small_power_graph.has_edge(int(a), int(b))
                       for a in fine_u for b in fine_v)

    def test_unassigned_mapping_raises(self, tiny_graph):
        mapping = np.full(tiny_graph.num_vertices, -1)
        with pytest.raises(ValueError):
            coarsen_graph(tiny_graph, mapping, 1)

    def test_wrong_length_mapping_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            coarsen_graph(tiny_graph, np.zeros(2, dtype=np.int64), 1)


class TestMultiEdgeCollapse:
    def test_respects_threshold(self):
        g = powerlaw_cluster(600, m=3, seed=0)
        result = multi_edge_collapse(g, threshold=50)
        assert result.graphs[-1].num_vertices <= max(50, result.graphs[-2].num_vertices)
        # all intermediate levels are above the threshold
        for graph in result.graphs[:-1]:
            assert graph.num_vertices > 50 or graph is result.graphs[-1]

    def test_strictly_decreasing_sizes(self, small_power_graph):
        result = multi_edge_collapse(small_power_graph, threshold=20)
        sizes = result.level_sizes
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))

    def test_mapping_count(self, small_power_graph):
        result = multi_edge_collapse(small_power_graph, threshold=20)
        assert len(result.mappings) == result.num_levels - 1

    def test_max_levels_cap(self, small_power_graph):
        result = multi_edge_collapse(small_power_graph, threshold=1, max_levels=2)
        assert result.num_levels <= 3

    def test_ring_coarsens(self):
        g = ring(200)
        result = multi_edge_collapse(g, threshold=20)
        assert result.graphs[-1].num_vertices < 200

    def test_level_times_recorded(self, small_power_graph):
        result = multi_edge_collapse(small_power_graph, threshold=20)
        assert len(result.level_times) == result.num_levels - 1
        assert all(t >= 0 for t in result.level_times)

    def test_already_small_graph_untouched(self, tiny_graph):
        result = multi_edge_collapse(tiny_graph, threshold=100)
        assert result.num_levels == 1
        assert result.graphs[0] is tiny_graph
