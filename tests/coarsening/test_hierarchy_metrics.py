"""Unit tests for the coarsening hierarchy, embedding expansion, and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsening import (
    CoarseningHierarchy,
    edge_retention,
    expand_embedding,
    hub_merge_count,
    multi_edge_collapse,
    parallel_multi_edge_collapse,
    project_vertex_sets,
    shrink_rates,
    summarize,
    super_vertex_balance,
)
from repro.graph import powerlaw_cluster, star


@pytest.fixture
def hierarchy(small_power_graph):
    return CoarseningHierarchy.from_result(
        parallel_multi_edge_collapse(small_power_graph, threshold=30)
    )


class TestExpandEmbedding:
    def test_rows_copied(self):
        coarse = np.array([[1.0, 2.0], [3.0, 4.0]])
        mapping = np.array([0, 0, 1, 0, 1])
        fine = expand_embedding(coarse, mapping)
        assert fine.shape == (5, 2)
        assert np.array_equal(fine[0], coarse[0])
        assert np.array_equal(fine[2], coarse[1])

    def test_returns_independent_copy(self):
        coarse = np.ones((2, 3))
        fine = expand_embedding(coarse, np.array([0, 1, 1]))
        fine[0, 0] = 99.0
        assert coarse[0, 0] == 1.0

    def test_invalid_mapping_raises(self):
        with pytest.raises(ValueError):
            expand_embedding(np.ones((2, 3)), np.array([0, 5]))


class TestProjectVertexSets:
    def test_inverse_of_mapping(self):
        mapping = np.array([0, 1, 0, 2, 1])
        sets = project_vertex_sets(mapping, 3)
        assert sorted(sets[0].tolist()) == [0, 2]
        assert sorted(sets[1].tolist()) == [1, 4]
        assert sets[2].tolist() == [3]


class TestHierarchy:
    def test_validate_passes(self, hierarchy):
        hierarchy.validate()

    def test_training_order_coarsest_first(self, hierarchy):
        order = list(hierarchy.training_order())
        assert order[0] == hierarchy.num_levels - 1
        assert order[-1] == 0

    def test_expand_chain_reaches_level_zero(self, hierarchy):
        emb = np.random.default_rng(0).random((hierarchy.coarsest().num_vertices, 8))
        full = hierarchy.project_to_original(hierarchy.num_levels - 1, emb)
        assert full.shape[0] == hierarchy.level(0).num_vertices

    def test_expand_rejects_bad_level(self, hierarchy):
        emb = np.zeros((hierarchy.coarsest().num_vertices, 4))
        with pytest.raises(ValueError):
            hierarchy.expand(0, emb)

    def test_expand_rejects_bad_shape(self, hierarchy):
        with pytest.raises(ValueError):
            hierarchy.expand(1, np.zeros((1, 4)))

    def test_composed_mapping_consistency(self, hierarchy):
        last = hierarchy.num_levels - 1
        composed = hierarchy.composed_mapping(last)
        assert composed.shape[0] == hierarchy.level(0).num_vertices
        assert composed.max() < hierarchy.coarsest().num_vertices

    def test_super_vertex_sizes_sum(self, hierarchy):
        last = hierarchy.num_levels - 1
        sizes = hierarchy.super_vertex_sizes(last)
        assert sizes.sum() == hierarchy.level(0).num_vertices
        assert np.all(sizes >= 1)

    def test_trivial_hierarchy(self, small_power_graph):
        h = CoarseningHierarchy.trivial(small_power_graph)
        assert h.num_levels == 1
        assert list(h.training_order()) == [0]
        h.validate()

    def test_validate_catches_bad_mapping_count(self, small_power_graph):
        h = CoarseningHierarchy(graphs=[small_power_graph], mappings=[np.zeros(3, dtype=np.int64)])
        with pytest.raises(ValueError):
            h.validate()


class TestMetrics:
    def test_shrink_rates_in_unit_interval(self, small_power_graph):
        result = multi_edge_collapse(small_power_graph, threshold=30)
        rates = shrink_rates(result)
        assert all(0.0 < r < 1.0 for r in rates)

    def test_edge_retention_decreasing(self, small_power_graph):
        result = multi_edge_collapse(small_power_graph, threshold=30)
        retention = edge_retention(result)
        assert retention[0] == pytest.approx(1.0)
        assert all(retention[i] >= retention[i + 1] for i in range(len(retention) - 1))

    def test_hub_merge_count_star(self, star_graph):
        # the star's hub plus leaves form one cluster containing one hub only
        mapping = np.zeros(star_graph.num_vertices, dtype=np.int64)
        assert hub_merge_count(star_graph, mapping) == 0

    def test_hub_merge_count_detects_merge(self):
        g = powerlaw_cluster(100, m=4, seed=0)
        # put the two highest-degree vertices into the same cluster artificially
        top2 = np.argsort(-g.degrees)[:2]
        mapping = np.arange(g.num_vertices, dtype=np.int64)
        mapping[top2[1]] = mapping[top2[0]]
        mapping, _ = np.unique(mapping, return_inverse=True)[1], None
        mapping = np.unique(np.arange(g.num_vertices) if False else mapping)  # keep compacted
        # simpler: recompute compacted mapping
        raw = np.arange(g.num_vertices, dtype=np.int64)
        raw[top2[1]] = top2[0]
        _, compact = np.unique(raw, return_inverse=True)
        assert hub_merge_count(g, compact.astype(np.int64)) >= 1

    def test_super_vertex_balance(self):
        assert super_vertex_balance(np.array([0, 1, 2, 3])) == pytest.approx(1.0)
        assert super_vertex_balance(np.array([0, 0, 0, 1])) == pytest.approx(3.0 / 2.0)

    def test_summarize_report(self, small_power_graph):
        result = multi_edge_collapse(small_power_graph, threshold=30)
        report = summarize(result)
        assert report.num_levels == result.num_levels
        assert report.last_level_size == result.graphs[-1].num_vertices
        assert 0.0 < report.mean_shrink_rate < 1.0
        assert "D" in report.as_row()
