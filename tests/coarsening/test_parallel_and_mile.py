"""Unit tests for parallel MultiEdgeCollapse and the MILE coarsening baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coarsening import (
    compact_mapping,
    heavy_edge_matching_once,
    mile_coarsen,
    multi_edge_collapse,
    parallel_collapse_once,
    parallel_multi_edge_collapse,
    simulated_threaded_collapse,
    structural_equivalence_groups,
)
from repro.graph import CSRGraph, powerlaw_cluster, ring, social_community, star


class TestCompactMapping:
    def test_compacts_to_contiguous(self):
        mapping, k = compact_mapping(np.array([5, 5, 9, 2, 9]))
        assert k == 3
        assert set(mapping.tolist()) == {0, 1, 2}
        # equal raw labels stay equal, different stay different
        assert mapping[0] == mapping[1]
        assert mapping[2] == mapping[4]
        assert mapping[0] != mapping[3]


class TestParallelCollapse:
    def test_valid_mapping(self, small_power_graph):
        mapping, k = parallel_collapse_once(small_power_graph)
        assert mapping.shape[0] == small_power_graph.num_vertices
        assert np.all((mapping >= 0) & (mapping < k))
        assert set(np.unique(mapping).tolist()) == set(range(k))

    def test_shrinks(self, small_power_graph):
        _, k = parallel_collapse_once(small_power_graph)
        assert k < small_power_graph.num_vertices

    def test_cluster_members_adjacent_to_leader(self, small_power_graph):
        """Followers join only through an actual edge (same invariant as sequential)."""
        mapping, k = parallel_collapse_once(small_power_graph)
        for cluster in range(k):
            members = np.flatnonzero(mapping == cluster)
            if members.shape[0] <= 1:
                continue
            found_leader = False
            for candidate in members:
                nbrs = set(small_power_graph.neighbors(int(candidate)).tolist())
                if all(int(m) in nbrs for m in members if m != candidate):
                    found_leader = True
                    break
            assert found_leader

    def test_empty_graph(self):
        mapping, k = parallel_collapse_once(CSRGraph.empty(0))
        assert k == 0
        assert mapping.size == 0

    def test_star_collapses(self, star_graph):
        _, k = parallel_collapse_once(star_graph)
        assert k == 1

    def test_similar_quality_to_sequential(self):
        g = social_community(800, intra_degree=8, seed=2)
        seq = multi_edge_collapse(g, threshold=100)
        par = parallel_multi_edge_collapse(g, threshold=100)
        # same ballpark of levels and comparable final sizes (Table 4 claim)
        assert abs(seq.num_levels - par.num_levels) <= 2
        assert par.graphs[-1].num_vertices <= 4 * max(seq.graphs[-1].num_vertices, 25)

    def test_multilevel_mappings_consistent(self):
        g = powerlaw_cluster(500, m=3, seed=1)
        result = parallel_multi_edge_collapse(g, threshold=50)
        for i, mapping in enumerate(result.mappings):
            assert mapping.shape[0] == result.graphs[i].num_vertices
            assert mapping.max() < result.graphs[i + 1].num_vertices


class TestSimulatedThreadedCollapse:
    def test_valid_and_deterministic(self, small_power_graph):
        m1, k1 = simulated_threaded_collapse(small_power_graph, num_threads=4)
        m2, k2 = simulated_threaded_collapse(small_power_graph, num_threads=4)
        assert k1 == k2
        assert np.array_equal(m1, m2)
        assert np.all((m1 >= 0) & (m1 < k1))

    def test_single_thread_close_to_sequential(self, small_power_graph):
        m_thread, k_thread = simulated_threaded_collapse(small_power_graph, num_threads=1,
                                                         chunk_size=1 << 30)
        from repro.coarsening import collapse_once

        _, k_seq = collapse_once(small_power_graph)
        assert k_thread == k_seq

    def test_more_threads_still_shrink(self, small_power_graph):
        _, k = simulated_threaded_collapse(small_power_graph, num_threads=8)
        assert k < small_power_graph.num_vertices


class TestStructuralEquivalence:
    def test_identical_leaves_grouped(self):
        # two leaves attached to the same vertex have identical neighbourhoods
        g = CSRGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        labels = structural_equivalence_groups(g)
        assert labels[1] == labels[2] == labels[3]

    def test_distinct_neighborhoods_not_grouped(self, ring_graph):
        labels = structural_equivalence_groups(ring_graph)
        assert np.unique(labels).shape[0] == ring_graph.num_vertices


class TestMileCoarsening:
    def test_single_level_valid(self, small_power_graph):
        mapping, k = heavy_edge_matching_once(small_power_graph)
        assert np.all((mapping >= 0) & (mapping < k))
        assert k < small_power_graph.num_vertices

    def test_matching_shrinks_by_at_most_half_plus_sem(self, ring_graph):
        mapping, k = heavy_edge_matching_once(ring_graph, use_sem=False)
        # pairwise matching can at best halve the vertex count
        assert k >= ring_graph.num_vertices // 2

    def test_requested_levels(self):
        g = powerlaw_cluster(400, m=3, seed=0)
        result = mile_coarsen(g, num_levels=4)
        assert result.num_levels <= 5
        sizes = result.level_sizes
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))

    def test_gosh_coarsening_shrinks_faster_than_mile(self):
        """The Table 5 claim: MultiEdgeCollapse reaches far smaller graphs."""
        g = social_community(800, intra_degree=10, seed=3)
        levels = 4
        mile = mile_coarsen(g, num_levels=levels)
        gosh = multi_edge_collapse(g, threshold=1, max_levels=levels)
        assert gosh.graphs[-1].num_vertices < mile.graphs[-1].num_vertices
