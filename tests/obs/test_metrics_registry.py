"""The metrics core: exact totals under threads, label identity, exposition.

The registry's contract is small but load-bearing for every serving
surface: every mutation is lock-protected (so concurrent writers lose
nothing), ``labels(...)`` has *identity* semantics (the same label values
always yield the very same child object), and ``render()`` emits the
classic Prometheus text format — ``# HELP``/``# TYPE`` once per name,
histogram ``_bucket`` rows cumulative with an implied ``+Inf``.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_sample,
    gauge_sample,
    histogram_sample,
    render_samples,
)


class TestThreadSafety:
    def test_counter_total_is_exact_under_concurrent_writers(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_ops_total", "ops",
                                   labelnames=("worker",))
        writers, increments = 8, 5000

        def work(i: int) -> None:
            child = counter.labels(worker=str(i % 2))
            for _ in range(increments):
                child.inc()

        threads = [threading.Thread(target=work, args=(i,)) for i in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(s.value for s in counter.samples())
        assert total == writers * increments
        # Exactly two children (worker=0 / worker=1), each with half.
        values = sorted(s.value for s in counter.samples())
        assert values == [writers * increments / 2] * 2

    def test_histogram_count_is_exact_under_concurrent_writers(self):
        hist = Histogram("repro_test_latency", "t", buckets=(0.1, 1.0))
        writers, observations = 6, 3000

        def work() -> None:
            for i in range(observations):
                hist.observe(0.05 if i % 2 else 5.0)

        threads = [threading.Thread(target=work) for _ in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (sample,) = hist.samples()
        assert sample.count == writers * observations
        # Half the observations landed under 0.1, none between 0.1 and 1.0.
        assert sample.buckets == [(0.1, writers * observations // 2),
                                  (1.0, writers * observations // 2)]


class TestLabelSemantics:
    def test_same_label_values_return_the_same_child_object(self):
        counter = Counter("repro_test_total", "t", labelnames=("a", "b"))
        child = counter.labels(a="x", b="y")
        assert counter.labels(b="y", a="x") is child          # kwarg order irrelevant
        assert counter.labels(a="x", b="z") is not child
        child.inc(3)
        counter.labels(b="y", a="x").inc(2)
        assert child.value == 5

    def test_wrong_label_names_raise(self):
        counter = Counter("repro_test_total", "t", labelnames=("a",))
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(b="x")
        with pytest.raises(ValueError, match="takes labels"):
            counter.labels(a="x", b="y")

    def test_labelless_family_rejects_declared_label_use(self):
        counter = Counter("repro_test_total", "t", labelnames=("a",))
        with pytest.raises(ValueError, match="declares labels"):
            counter.inc()

    def test_label_values_are_stringified(self):
        gauge = Gauge("repro_test_gauge", "t", labelnames=("n",))
        assert gauge.labels(n=3) is gauge.labels(n="3")


class TestInstruments:
    def test_counter_rejects_negative_increments(self):
        counter = Counter("repro_test_total", "t")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)
        counter.inc(2.5)
        assert counter.value == 2.5

    def test_gauge_moves_freely(self):
        gauge = Gauge("repro_test_gauge", "t")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc(1)
        assert gauge.value == 7

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ValueError, match="strictly"):
            Histogram("repro_test", "t", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly"):
            Histogram("repro_test", "t", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="strictly"):
            Histogram("repro_test", "t", buckets=())

    def test_invalid_metric_and_label_names_raise(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("9starts_with_digit", "t")
        with pytest.raises(ValueError, match="invalid label name"):
            Counter("repro_ok_total", "t", labelnames=("bad-dash",))


class TestRegistry:
    def test_requesting_a_name_twice_returns_the_same_family(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_test_total", "t")
        assert registry.counter("repro_test_total") is a

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total", "t")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("repro_test_total", "t")

    def test_collectors_contribute_and_unregister(self):
        registry = MetricsRegistry()
        fn = lambda: [counter_sample("repro_extra_total", "x", 7)]
        registry.register_collector(fn)
        assert [s.name for s in registry.collect()] == ["repro_extra_total"]
        registry.unregister_collector(fn)
        assert registry.collect() == []
        registry.unregister_collector(fn)   # double-unregister is harmless

    def test_injectable_clock_is_carried(self):
        registry = MetricsRegistry(clock=lambda: 42.0)
        assert registry.clock() == 42.0


class TestExposition:
    def test_golden_text_output(self):
        registry = MetricsRegistry()
        queries = registry.counter("repro_queries_total", "queries served",
                                   labelnames=("tool",))
        queries.labels(tool="gosh-fast").inc(3)
        queries.labels(tool="gosh-normal").inc(1)
        registry.gauge("repro_inflight", "in-flight queries").set(2)
        latency = registry.histogram("repro_latency_seconds", "latency",
                                     buckets=(0.1, 1.0))
        for v in (0.05, 0.05, 0.5, 5.0):
            latency.observe(v)
        assert registry.render() == (
            "# HELP repro_queries_total queries served\n"
            "# TYPE repro_queries_total counter\n"
            'repro_queries_total{tool="gosh-fast"} 3\n'
            'repro_queries_total{tool="gosh-normal"} 1\n'
            "# HELP repro_inflight in-flight queries\n"
            "# TYPE repro_inflight gauge\n"
            "repro_inflight 2\n"
            "# HELP repro_latency_seconds latency\n"
            "# TYPE repro_latency_seconds histogram\n"
            'repro_latency_seconds_bucket{le="0.1"} 2\n'
            'repro_latency_seconds_bucket{le="1"} 3\n'
            'repro_latency_seconds_bucket{le="+Inf"} 4\n'
            "repro_latency_seconds_sum 5.6\n"
            "repro_latency_seconds_count 4\n"
        )

    def test_render_samples_groups_help_and_type_once_per_name(self):
        text = render_samples([
            counter_sample("repro_a_total", "a", 1, {"x": "1"}),
            gauge_sample("repro_b", "b", 2),
            counter_sample("repro_a_total", "a", 2, {"x": "2"}),
        ])
        assert text.count("# TYPE repro_a_total counter") == 1
        # Interleaved samples regroup under one header, first-seen order.
        assert text == (
            "# HELP repro_a_total a\n"
            "# TYPE repro_a_total counter\n"
            'repro_a_total{x="1"} 1\n'
            'repro_a_total{x="2"} 2\n'
            "# HELP repro_b b\n"
            "# TYPE repro_b gauge\n"
            "repro_b 2\n"
        )

    def test_label_values_are_escaped(self):
        text = render_samples([
            counter_sample("repro_a_total", "", 1, {"p": 'sl\\ash "q"\nnl'})])
        assert 'p="sl\\\\ash \\"q\\"\\nnl"' in text

    def test_histogram_sample_constructor_round_trips(self):
        sample = histogram_sample(
            "repro_h", "h", buckets=[(0.5, 2), (1.0, 3)],
            sum_value=1.5, count=4, labels={"stage": "total"})
        text = render_samples([sample])
        assert 'repro_h_bucket{stage="total",le="0.5"} 2' in text
        assert 'repro_h_bucket{stage="total",le="+Inf"} 4' in text
        assert 'repro_h_count{stage="total"} 4' in text
