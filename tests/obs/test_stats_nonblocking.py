"""The stats/metrics verbs must answer while the service is wedged.

The satellite bug under test: ``EmbeddingService.stats()`` takes the
serving lock, which an executor-side ``query_batch`` can hold for minutes
(an embed-on-miss).  The old handler called it synchronously *on the event
loop*, so one stats poll during a long embed froze every connection — even
ping.  The server now fetches the service part off-loop, bounded by
``stats_timeout_s``, and serves the last good snapshot marked
``"stale": true`` when the deadline expires.
"""

from __future__ import annotations

import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.serve import QueryServer, ServeClient, ServerThread

pytestmark = pytest.mark.timeout(60)

TIMEOUT = 10.0


class LockedStatsStubService:
    """Mimics the real service's locking: stats() blocks while a batch runs.

    ``query_batch`` grabs ``serving_lock`` and parks on ``release`` —
    exactly the shape of a minutes-long embed-on-miss.  ``stats()`` needs
    the same lock, so it stays stuck for as long as the test keeps the
    gate shut.
    """

    def __init__(self):
        self.serving_lock = threading.RLock()
        self.started = threading.Event()
        self.release = threading.Event()
        self.stats_calls = 0

    def query_batch(self, requests):
        with self.serving_lock:
            self.started.set()
            assert self.release.wait(timeout=30.0), "test never released the stub"
            return [self._answer(r) for r in requests]

    @staticmethod
    def _answer(request):
        k, n = request.k, request.num_queries
        return SimpleNamespace(ids=np.zeros((n, k), dtype=np.int64),
                               scores=np.zeros((n, k), dtype=np.float32),
                               store_hit=True,
                               entry=SimpleNamespace(version=1))

    def stats(self):
        with self.serving_lock:
            self.stats_calls += 1
            return {"stats_calls": self.stats_calls}


def make_server(stub, **kwargs):
    kwargs.setdefault("stats_timeout_s", 0.3)
    return QueryServer(stub, {"g": object()}, default_tool="stub", **kwargs)


class TestNonBlockingStats:
    def test_stats_answers_within_the_deadline_while_the_lock_is_held(self):
        stub = LockedStatsStubService()
        server = make_server(stub)
        with ServerThread(server) as addr:
            with ServeClient(addr, timeout_s=TIMEOUT) as warm:
                # Warm poll with the lock free: caches a good snapshot.
                assert warm.stats()["service"] == {"stats_calls": 1}
            with ServeClient(addr, timeout_s=TIMEOUT) as busy:
                busy._sock.sendall(
                    b'{"id": "q1", "verb": "query", "vertices": [0]}\n')
                assert stub.started.wait(TIMEOUT)   # lock is now held
                polled = []
                with ServeClient(addr, timeout_s=TIMEOUT) as observer:
                    for _ in range(3):
                        t0 = time.perf_counter()
                        stats = observer.stats()
                        polled.append((time.perf_counter() - t0, stats))
                stub.release.set()
                assert busy._file.readline()        # q1 answered after release
        for elapsed, stats in polled:
            # Bounded: deadline (0.3 s) + slack, nowhere near the lock hold.
            assert elapsed < 5.0
            # Served from the warm cache, flagged stale.
            assert stats["service"]["stats_calls"] == 1
            assert stats["service"]["stale"] is True
            # Loop-owned counters stay fresh even when the service is stuck.
            assert stats["server"]["inflight"] == 1
        assert server.stats_stale_served == 3
        assert polled[-1][1]["server"]["stats_stale_served"] >= 1

    def test_stats_without_a_warm_cache_still_answers(self):
        stub = LockedStatsStubService()
        server = make_server(stub)
        with ServerThread(server) as addr:
            with ServeClient(addr, timeout_s=TIMEOUT) as busy:
                busy._sock.sendall(
                    b'{"id": "q1", "verb": "query", "vertices": [0]}\n')
                assert stub.started.wait(TIMEOUT)
                with ServeClient(addr, timeout_s=TIMEOUT) as observer:
                    stats = observer.stats()
                stub.release.set()
                assert busy._file.readline()
        # Nothing cached yet: the service part is just the stale marker.
        assert stats["service"] == {"stale": True}
        assert stats["server"]["queries_admitted"] == 1

    def test_fresh_stats_resume_after_the_lock_frees(self):
        stub = LockedStatsStubService()
        server = make_server(stub)
        with ServerThread(server) as addr, ServeClient(addr, timeout_s=TIMEOUT) as c:
            first = c.stats()
            assert first["service"] == {"stats_calls": 1}
            # The single-flight task is done; a later poll fetches fresh.
            deadline = time.monotonic() + TIMEOUT
            while time.monotonic() < deadline:
                stats = c.stats()
                if stats["service"].get("stats_calls", 0) >= 2:
                    break
                time.sleep(0.05)
            assert stats["service"]["stats_calls"] >= 2
            assert "stale" not in stats["service"]

    def test_metrics_verb_shares_the_non_blocking_path(self):
        stub = LockedStatsStubService()
        server = make_server(stub)
        with ServerThread(server) as addr:
            with ServeClient(addr, timeout_s=TIMEOUT) as busy:
                busy._sock.sendall(
                    b'{"id": "q1", "verb": "query", "vertices": [0]}\n')
                assert stub.started.wait(TIMEOUT)
                with ServeClient(addr, timeout_s=TIMEOUT) as observer:
                    text = observer.metrics()
                stub.release.set()
                assert busy._file.readline()
        # Prometheus text with the loop-owned admission series present.
        assert "# TYPE repro_server_queries_admitted_total counter" in text
        assert "repro_server_inflight 1" in text

    def test_stats_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="stats_timeout_s"):
            make_server(LockedStatsStubService(), stats_timeout_s=0)
