"""LatencyHistogram aggregation: merge, wire round-trip, registry samples.

These primitives carry the fleet-latency satellite: shards serialize their
histograms with ``to_dict`` onto the stats wire, the router rebuilds them
with ``from_dict`` and folds them together with ``merge``, and the
Prometheus renderer re-expands any of them via ``metric_sample``.  The
round-trip must be *exact* — percentiles computed on a rebuilt histogram
match the original bucket-for-bucket.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.serve.metrics import LatencyHistogram


def observed(values, **kwargs) -> LatencyHistogram:
    hist = LatencyHistogram(**kwargs)
    for v in values:
        hist.observe(v)
    return hist


class TestRoundTrip:
    def test_to_dict_from_dict_is_exact(self):
        hist = observed([0.0001, 0.002, 0.002, 0.5, 75.0])  # incl. overflow
        rebuilt = LatencyHistogram.from_dict(hist.to_dict())
        assert np.array_equal(rebuilt.counts, hist.counts)
        assert rebuilt.count == hist.count
        assert rebuilt.total == hist.total
        assert rebuilt.min == hist.min and rebuilt.max == hist.max
        for q in (50, 95, 99):
            assert rebuilt.percentile(q) == hist.percentile(q)
        assert rebuilt.summary() == hist.summary()

    def test_payload_is_json_safe_and_sparse(self):
        import json

        hist = observed([0.01, 0.01, 2.0])
        payload = hist.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        # Only the touched buckets ride the wire.
        assert len(payload["counts"]) == 2
        assert sum(c for _, c in payload["counts"]) == 3

    def test_empty_histogram_round_trips(self):
        rebuilt = LatencyHistogram.from_dict(LatencyHistogram().to_dict())
        assert rebuilt.count == 0
        assert rebuilt.min == math.inf            # "no observation yet"
        assert rebuilt.percentile(99) == 0.0

    def test_unknown_format_is_rejected(self):
        with pytest.raises(ValueError, match="unknown histogram payload"):
            LatencyHistogram.from_dict({"format": "bogus/9"})
        with pytest.raises(ValueError, match="unknown histogram payload"):
            LatencyHistogram.from_dict({})


class TestMerge:
    def test_merge_equals_observing_the_union(self):
        left = observed([0.001, 0.1, 0.1])
        right = observed([0.002, 5.0])
        union = observed([0.001, 0.1, 0.1, 0.002, 5.0])
        assert left.merge(right) is left
        assert np.array_equal(left.counts, union.counts)
        assert left.count == union.count
        assert left.total == pytest.approx(union.total)
        assert left.min == union.min and left.max == union.max
        assert left.summary() == union.summary()

    def test_merge_accepts_a_wire_rebuilt_histogram(self):
        local = observed([0.01])
        remote = LatencyHistogram.from_dict(observed([0.5, 0.6]).to_dict())
        assert local.merge(remote).count == 3

    def test_mismatched_layouts_are_rejected(self):
        with pytest.raises(ValueError, match="bucket layouts"):
            observed([0.01]).merge(LatencyHistogram(max_s=10.0))
        with pytest.raises(ValueError, match="bucket layouts"):
            observed([0.01]).merge(LatencyHistogram(growth=2.0))


class TestRegistrySample:
    def test_metric_sample_preserves_the_bucket_layout(self):
        hist = observed([0.0001, 0.002, 80.0])    # under-min, mid, overflow
        sample = hist.metric_sample("repro_server_latency_seconds",
                                    labels={"stage": "total"})
        assert sample.kind == "histogram"
        assert sample.count == 3
        assert sample.sum_value == pytest.approx(hist.total)
        edges = [edge for edge, _ in sample.buckets]
        assert edges == [float(e) for e in hist.edges]
        # Cumulative counts: the overflow observation appears only in +Inf
        # (i.e. sample.count), never in a finite bucket.
        assert sample.buckets[-1][1] == 2
        cums = [c for _, c in sample.buckets]
        assert cums == sorted(cums)
