"""The tracer: disabled-path identity, recording styles, Chrome JSON export.

The export format is pinned structurally (a golden *shape*, not golden
bytes — timestamps vary): the ``{"traceEvents": [...]}`` envelope, complete
``"ph": "X"`` events with non-negative µs ``ts``/``dur``, thread-name
``"M"`` metadata rows sorted first, and back-dated ``add_complete`` events
landing where the measured interval actually happened.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_tracer():
    """Every test starts and ends with the tracer off and drained."""
    trace.disable()
    trace.drain()
    yield
    trace.disable()
    trace.drain()


class TestDisabledPath:
    def test_disabled_is_the_default_and_records_nothing(self):
        assert trace.is_enabled() is False
        with trace.span("work", level=1):
            pass
        trace.add_complete("measured", 0.25)
        trace.add_instant("marker")
        assert trace.event_count() == 0

    def test_disabled_span_is_a_shared_singleton(self):
        # The zero-allocation contract: every disabled call site gets the
        # very same no-op object back.
        assert trace.span("a") is trace.span("b", key="value")

    def test_disabling_mid_span_drops_the_event(self):
        trace.enable()
        span = trace.span("work")
        with span:
            trace.disable()
        assert all(e.get("ph") == "M" for e in trace.drain())


class TestRecording:
    def test_span_records_a_complete_event_with_args(self):
        trace.enable()
        with trace.span("kernel", level=2, rotation=1):
            pass
        events = [e for e in trace.drain() if e["ph"] == "X"]
        assert len(events) == 1
        (event,) = events
        assert event["name"] == "kernel"
        assert event["args"] == {"level": 2, "rotation": 1}
        assert event["ts"] >= 0 and event["dur"] >= 0

    def test_span_exit_on_exception_records_the_error(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("work"):
                raise RuntimeError("boom")
        (event,) = [e for e in trace.drain() if e["ph"] == "X"]
        assert event["args"]["error"] == "RuntimeError"

    def test_add_complete_backdates_by_the_measured_duration(self):
        trace.enable()
        trace.add_complete("measured", 0.5, source="test")
        (event,) = [e for e in trace.drain() if e["ph"] == "X"]
        assert event["dur"] == pytest.approx(0.5e6)
        # Back-dated: started ~0.5 s before "now", i.e. before the enable
        # epoch in this test, so ts is negative — the point is ts + dur
        # equals the moment add_complete ran.
        end_us = event["ts"] + event["dur"]
        assert 0 <= end_us < 0.25e6

    def test_add_instant_is_zero_duration(self):
        trace.enable()
        trace.add_instant("h2d", simulated_s=0.001)
        (event,) = [e for e in trace.drain() if e["ph"] == "X"]
        assert event["dur"] == 0.0
        assert event["args"]["simulated_s"] == 0.001

    def test_thread_metadata_is_emitted_once_per_thread(self):
        trace.enable()
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        events = trace.drain()
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(metadata) == 1
        assert metadata[0]["name"] == "thread_name"
        (tid,) = {e["tid"] for e in events if e["ph"] == "X"}
        assert metadata[0]["tid"] == tid

    def test_enable_resets_the_buffer_and_epoch(self):
        trace.enable()
        with trace.span("old"):
            pass
        trace.enable()
        assert trace.event_count() == 0


class TestIds:
    def test_trace_ids_are_distinct_16_hex_chars(self):
        a, b = trace.new_trace_id(), trace.new_trace_id()
        assert a != b
        assert len(a) == 16 and int(a, 16) >= 0

    def test_span_ids_are_ordered_within_the_process(self):
        a, b = trace.new_span_id(), trace.new_span_id()
        assert a != b
        assert int(a.split(".")[1]) < int(b.split(".")[1])


class TestExport:
    def test_chrome_trace_file_shape(self, tmp_path):
        trace.enable()
        with trace.span("level", level=0):
            with trace.span("kernel", level=0, rotation=1):
                pass
        trace.add_complete("pool-produce", 0.001, rotation=1)
        out = tmp_path / "run.trace.json"
        written = trace.export(out)
        assert written == 3                      # metadata rows not counted
        payload = json.loads(out.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert [e["ph"] for e in events if e["ph"] == "M"] == ["M"]
        xs = [e for e in events if e["ph"] != "M"]
        assert {e["ph"] for e in xs} == {"X"}    # complete events only
        for e in xs:
            assert set(e) >= {"name", "ph", "pid", "tid", "ts", "dur", "args"}
            assert e["dur"] >= 0
        # Metadata first, then X events in monotonically increasing ts.
        assert events[0]["ph"] == "M"
        ts = [e["ts"] for e in xs]
        assert ts == sorted(ts)

    def test_export_drains_by_default_but_can_peek(self, tmp_path):
        trace.enable()
        with trace.span("a"):
            pass
        peek = tmp_path / "peek.json"
        assert trace.export(peek, drain_events=False) == 1
        assert trace.export(tmp_path / "drain.json") == 1
        assert trace.export(tmp_path / "empty.json") == 0

    def test_empty_export_is_a_valid_envelope(self, tmp_path):
        out = tmp_path / "empty.json"
        assert trace.export(out) == 0
        assert json.loads(out.read_text()) == {"traceEvents": [],
                                               "displayTimeUnit": "ms"}
