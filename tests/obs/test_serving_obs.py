"""End-to-end observability over the real serving tier.

Three acceptance properties ride one warmed 2-shard router:

* **One query, one trace.**  With tracing on, a single client query through
  the router produces client + router + both shard spans sharing one trace
  id, parented client → router → shards (all hops run in-process, so the
  shared tracer sees the whole request).
* **Fleet-wide latency.**  The router's stats merge per-shard latency
  histograms into ``fleet_latency`` percentiles (satellite of
  ``LatencyHistogram.merge``).
* **Prometheus everywhere.**  The same snapshot renders over the metrics
  verb, ``GET /metrics`` on the HTTP front, and the library renderer —
  covering admission, shard-health dwell, and service-cache series.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection

import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.obs import trace
from repro.obs.export import METRICS_CONTENT_TYPE, render_stats_metrics
from repro.serve import QueryServer, ServeClient, ServerThread, ShardRouter

pytestmark = pytest.mark.timeout(120)

TIMEOUT = 10.0


@pytest.fixture(autouse=True)
def clean_tracer():
    trace.disable()
    trace.drain()
    yield
    trace.disable()
    trace.drain()


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)


@pytest.fixture(scope="module")
def service(graph, tmp_path_factory):
    service = EmbeddingService(dim=8, epoch_scale=0.02,
                               store=tmp_path_factory.mktemp("store"))
    service.ensure_stored("gosh-fast", graph)
    return service


@pytest.fixture(scope="module")
def routed(service, graph):
    """A 2-shard router with an HTTP front, warmed once per module."""
    router = ShardRouter.spawn(service, {"pl300": graph}, shard_count=2,
                               default_tool="gosh-fast", http_port=0)
    address = router.start()
    yield address, router
    router.stop()


@pytest.fixture(scope="module")
def served(service, graph):
    """A plain (unsharded) server with an HTTP front."""
    server = QueryServer(service, {"pl300": graph}, default_tool="gosh-fast")
    handle = ServerThread(server, http_port=0)
    handle.start()
    yield handle.http_address, server
    handle.stop()


def http_get(address: str, path: str):
    host, _, port = address.rpartition(":")
    conn = HTTPConnection(host, int(port), timeout=TIMEOUT)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        conn.close()


class TestTracePropagation:
    def test_one_query_yields_one_parented_cross_process_trace(self, routed):
        address, _ = routed
        trace.enable()
        with ServeClient(address, timeout_s=TIMEOUT) as client:
            reply = client.query(vertices=[0, 7], k=3)
        trace.disable()
        assert reply["ok"] is True
        events = [e for e in trace.drain() if e.get("ph") == "X"]

        (client_span,) = [e for e in events if e["name"] == "client.query"]
        trace_id = client_span["args"]["trace"]
        assert len(trace_id) == 16

        server_spans = [e for e in events if e["name"] == "server.query"
                        and e["args"].get("trace") == trace_id]
        # Router + both shards — and nothing else carries this trace id.
        assert len(server_spans) == 3
        routers = [e for e in server_spans
                   if e["args"].get("parent") == client_span["args"]["span"]]
        assert len(routers) == 1
        router_span_id = routers[0]["args"]["span"]
        shards = [e for e in server_spans
                  if e["args"].get("parent") == router_span_id]
        assert len(shards) == 2
        assert shards[0]["args"]["span"] != shards[1]["args"]["span"]
        assert {e["args"]["ok"] for e in server_spans} == {True}

    def test_caller_supplied_trace_id_is_honoured(self, routed):
        address, _ = routed
        trace.enable()
        with ServeClient(address, timeout_s=TIMEOUT) as client:
            client.query(vertices=[1], k=2, trace_id="feedbeeffeedbeef")
        trace.disable()
        events = [e for e in trace.drain() if e.get("ph") == "X"]
        spans = [e for e in events
                 if e["args"].get("trace") == "feedbeeffeedbeef"]
        assert {e["name"] for e in spans} == {"client.query", "server.query"}
        assert len(spans) == 4                     # client + router + 2 shards

    def test_untraced_queries_carry_no_trace_field(self, routed):
        address, _ = routed
        with ServeClient(address, timeout_s=TIMEOUT) as client:
            reply = client.query(vertices=[2], k=2)
        assert reply["ok"] is True
        assert trace.event_count() == 0


class TestFleetLatency:
    def test_router_stats_merge_shard_histograms(self, routed):
        address, _ = routed
        with ServeClient(address, timeout_s=TIMEOUT) as client:
            for v in (0, 3, 9):
                assert client.query(vertices=[v], k=2)["ok"]
            stats = client.stats()
        fleet = stats["service"]["fleet_latency"]
        assert fleet["shards_reporting"] == 2
        for stage in ("queue_wait", "service", "total"):
            summary = fleet[stage]
            # Each of the >=3 router requests fanned out to both shards.
            assert summary["count"] >= 6
            assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]


class TestPrometheusSurfaces:
    def test_http_metrics_covers_admission_and_service_cache(self, served):
        http_address, server = served
        with ServeClient(server.address, timeout_s=TIMEOUT) as client:
            assert client.query(vertices=[0], k=2)["ok"]
        status, headers, body = http_get(http_address, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == METRICS_CONTENT_TYPE
        text = body.decode("utf-8")
        # Admission series.
        assert "# TYPE repro_server_queries_admitted_total counter" in text
        assert "# TYPE repro_server_latency_seconds histogram" in text
        assert 'repro_server_latency_seconds_bucket{stage="total",le="+Inf"}' in text
        # Service-cache series (hierarchy/engine caches + store).
        assert "# TYPE repro_service_hierarchy_cache_hits_total counter" in text
        assert "# TYPE repro_service_engine_cache_entries gauge" in text
        assert "# TYPE repro_store_saves_total counter" in text
        # Fault registry exposition rides the same snapshot.
        assert "repro_fault_crossings_total" in text

    def test_router_metrics_cover_shard_health_dwell(self, routed):
        address, router = routed
        with ServeClient(address, timeout_s=TIMEOUT) as client:
            assert client.query(vertices=[4], k=2)["ok"]
            text = client.metrics()
        assert "# TYPE repro_router_fanouts_total counter" in text
        assert "# TYPE repro_router_replica_healthy gauge" in text
        dwell = [line for line in text.splitlines()
                 if line.startswith("repro_router_replica_state_seconds_total")]
        assert any('state="healthy"' in line for line in dwell)
        assert any('shard="0"' in line for line in dwell)
        assert any('shard="1"' in line for line in dwell)
        assert "# TYPE repro_router_fleet_latency_ms gauge" in text
        status, _, body = http_get(router.http_address, "/metrics")
        assert status == 200
        assert body.decode("utf-8") == text or "repro_router_fanouts_total" \
            in body.decode("utf-8")

    def test_metrics_verb_matches_the_library_renderer(self, served):
        _, server = served
        with ServeClient(server.address, timeout_s=TIMEOUT) as client:
            text = client.metrics()
            stats = client.stats()
        # Same adapter both ways: rendering the stats snapshot locally
        # yields the same series set (values may move between polls).
        local = render_stats_metrics(stats)
        series = lambda t: {line.split("{")[0].split(" ")[0]
                            for line in t.splitlines()
                            if line and not line.startswith("#")}
        assert series(local) == series(text)

    def test_http_metrics_rejects_post(self, served):
        http_address, _ = served
        host, _, port = http_address.rpartition(":")
        conn = HTTPConnection(host, int(port), timeout=TIMEOUT)
        try:
            conn.request("POST", "/metrics", body=b"{}")
            response = conn.getresponse()
            body = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 405
        assert body["ok"] is False
