"""Crash recovery for the on-disk store: staging debris is inert and swept.

A writer SIGKILLed mid-save leaves a ``.tmp-*`` staging directory (or, for
pre-staging writers, a manifest-less version dir).  These tests pin the two
halves of the contract: readers never see the debris, and ``sweep_staging``
/ ``gc`` reclaim it once it is older than the grace period.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.api import EmbeddingResult
from repro.faults import FAULTS, InjectedFault
from repro.store import EmbeddingStore


def make_result(matrix: np.ndarray, *, tool: str = "gosh-fast",
                graph: str = "tiny", **metadata) -> EmbeddingResult:
    return EmbeddingResult(
        embedding=matrix,
        tool=tool,
        graph=graph,
        seconds=1.25,
        timings={"training": 1.0},
        stats={"levels": 3},
        metadata={"dim": int(matrix.shape[1]), "seed": 0, **metadata},
    )


@pytest.fixture(autouse=True)
def clean_registry():
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture
def matrix(rng) -> np.ndarray:
    return rng.standard_normal((37, 8)).astype(np.float32)


def age(path, seconds: float = 7200.0) -> None:
    """Backdate ``path`` so it is older than any grace period under test."""
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def lineage_dir(store: EmbeddingStore, fingerprint: str):
    (lineage,) = [d for d in store.root.iterdir()
                  if d.name.startswith(f"{fingerprint}-")]
    return lineage


class TestDebrisIsInert:
    """Readers must never surface a half-written save."""

    def fingerprint(self):
        return "f" * 32

    def seeded_store(self, tmp_path, matrix) -> tuple[EmbeddingStore, str]:
        store = EmbeddingStore(tmp_path)
        fp = self.fingerprint()
        store.save(make_result(matrix), fingerprint=fp)
        return store, fp

    def test_orphaned_staging_dir_is_ignored_by_readers(self, tmp_path, matrix):
        store, fp = self.seeded_store(tmp_path, matrix)
        lineage = lineage_dir(store, fp)
        orphan = lineage / ".tmp-99999-deadbeef"
        orphan.mkdir()
        (orphan / "embedding-00000.npy").write_bytes(b"garbage")
        assert len(store.list(fp)) == 1
        entry = store.latest(fp, "gosh-fast")
        assert entry is not None and entry.version == 1
        assert np.array_equal(store.load(fp, "gosh-fast").embedding, matrix)

    def test_manifestless_version_dir_is_ignored_by_readers(self, tmp_path,
                                                            matrix):
        store, fp = self.seeded_store(tmp_path, matrix)
        lineage = lineage_dir(store, fp)
        half = lineage / "v0002"
        half.mkdir()
        np.save(half / "embedding-00000.npy", matrix)
        # No manifest.json: the writer died between shard writes and commit.
        assert store.latest(fp, "gosh-fast").version == 1
        assert len(store.list(fp)) == 1

    def test_next_save_skips_past_debris_version(self, tmp_path, matrix):
        """A half-written v2 must not be silently overwritten or reused."""
        store, fp = self.seeded_store(tmp_path, matrix)
        half = lineage_dir(store, fp) / "v0002"
        half.mkdir()
        entry = store.save(make_result(matrix), fingerprint=fp)
        assert entry.version == 3
        assert store.latest(fp, "gosh-fast").version == 3

    def test_stats_count_debris_without_serving_it(self, tmp_path, matrix):
        store, fp = self.seeded_store(tmp_path, matrix)
        lineage = lineage_dir(store, fp)
        fresh = lineage / ".tmp-1-ab"
        fresh.mkdir()
        stale = lineage / ".tmp-2-cd"
        stale.mkdir()
        age(stale)
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["staging_dirs"] == 2
        assert stats["stale_staging_dirs"] == 1


class TestSweep:
    def test_sweep_respects_grace_period(self, tmp_path, matrix):
        store = EmbeddingStore(tmp_path)
        fp = "a" * 32
        store.save(make_result(matrix), fingerprint=fp)
        lineage = lineage_dir(store, fp)
        fresh = lineage / ".tmp-1-ab"
        fresh.mkdir()
        stale = lineage / ".tmp-2-cd"
        stale.mkdir()
        age(stale)
        swept = store.sweep_staging()
        assert [p.name for p in swept] == [".tmp-2-cd"]
        assert fresh.is_dir() and not stale.exists()
        assert store.staging_swept == 1

    def test_sweep_with_zero_grace_takes_everything(self, tmp_path, matrix):
        store = EmbeddingStore(tmp_path, staging_grace_s=0)
        fp = "a" * 32
        store.save(make_result(matrix), fingerprint=fp)
        lineage = lineage_dir(store, fp)
        (lineage / ".tmp-1-ab").mkdir()
        half = lineage / "v0007"
        half.mkdir()
        assert len(store.sweep_staging()) == 2
        assert not (lineage / ".tmp-1-ab").exists() and not half.exists()
        # The committed version survives.
        assert store.latest(fp, "gosh-fast").version == 1

    def test_gc_sweeps_debris_alongside_old_versions(self, tmp_path, matrix):
        store = EmbeddingStore(tmp_path, staging_grace_s=0)
        fp = "a" * 32
        for _ in range(3):
            store.save(make_result(matrix), fingerprint=fp)
        lineage = lineage_dir(store, fp)
        (lineage / ".tmp-1-ab").mkdir()
        removed = store.gc(keep_n=1, fingerprint=fp)
        assert len(removed) == 2
        assert not (lineage / ".tmp-1-ab").exists()
        assert store.latest(fp, "gosh-fast").version == 3

    def test_sweep_removes_lineage_emptied_of_debris(self, tmp_path):
        """A lineage that only ever held a crashed save disappears entirely."""
        store = EmbeddingStore(tmp_path, staging_grace_s=0)
        lineage = store.root / ("b" * 32 + "-cafecafe-gosh-fast")
        lineage.mkdir(parents=True)
        (lineage / ".tmp-3-ef").mkdir()
        assert len(store.sweep_staging()) == 1
        assert not lineage.exists()


class TestInjectedCommitCrash:
    """End-to-end: the ``store-commit`` fault point leaks exactly the debris
    a SIGKILLed writer would, and the sweep reclaims it."""

    def crash_one_save(self, store, matrix, fp):
        FAULTS.arm("store-commit", at=1)
        with pytest.raises(InjectedFault):
            store.save(make_result(matrix), fingerprint=fp)

    def test_injected_crash_leaks_staging_then_sweeps(self, tmp_path, matrix):
        store = EmbeddingStore(tmp_path, staging_grace_s=0)
        fp = "c" * 32
        self.crash_one_save(store, matrix, fp)
        lineage = lineage_dir(store, fp)
        debris = [d for d in lineage.iterdir() if d.name.startswith(".tmp-")]
        assert len(debris) == 1
        # The shards were written before the commit point died.
        assert any(debris[0].glob("embedding-*.npy"))
        assert store.latest(fp, "gosh-fast") is None
        assert len(store.sweep_staging(fingerprint=fp)) == 1
        assert not lineage.exists()

    def test_save_after_crash_lands_clean_version(self, tmp_path, matrix):
        store = EmbeddingStore(tmp_path, staging_grace_s=0)
        fp = "c" * 32
        self.crash_one_save(store, matrix, fp)
        entry = store.save(make_result(matrix), fingerprint=fp)
        assert entry.version == 1
        loaded = store.load(fp, "gosh-fast")
        assert np.array_equal(loaded.embedding, matrix)
        manifest = json.loads(
            (lineage_dir(store, fp) / "v0001" / "manifest.json").read_text())
        assert manifest["tool"] == "gosh-fast"
