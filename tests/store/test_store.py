"""Tier-1 tests for the versioned on-disk embedding store."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import EmbeddingResult
from repro.store import EmbeddingStore, StoreError, config_hash


def make_result(matrix: np.ndarray, *, tool: str = "gosh-fast",
                graph: str = "tiny", **metadata) -> EmbeddingResult:
    return EmbeddingResult(
        embedding=matrix,
        tool=tool,
        graph=graph,
        seconds=1.25,
        timings={"coarsening": 0.25, "training": 1.0},
        stats={"levels": 3, "level_sizes": [6, 3, 2]},
        metadata={"dim": int(matrix.shape[1]), "seed": 0, **metadata},
    )


@pytest.fixture
def matrix(rng) -> np.ndarray:
    return rng.standard_normal((37, 8)).astype(np.float32)


class TestRoundTrip:
    def test_save_load_reproduces_embedding_exactly(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        store.save(make_result(matrix), graph=tiny_graph)
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast")
        assert loaded.embedding.dtype == matrix.dtype
        assert (loaded.embedding == matrix).all()
        assert loaded.tool == "gosh-fast"
        assert loaded.graph == "tiny"
        assert loaded.timings == {"coarsening": 0.25, "training": 1.0}
        assert loaded.stats["level_sizes"] == [6, 3, 2]
        assert loaded.metadata["dim"] == 8

    def test_mmap_load_is_zero_copy(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        store.save(make_result(matrix), graph=tiny_graph)
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast", mmap=True)
        assert isinstance(loaded.embedding, np.memmap)
        assert (np.asarray(loaded.embedding) == matrix).all()
        assert loaded.metadata["store"]["mmap"] is True

    def test_sharded_round_trip(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path, shard_rows=10)
        entry = store.save(make_result(matrix), graph=tiny_graph)
        assert len(entry.manifest["shards"]) == 4          # 37 rows / 10
        assert [s["rows"] for s in entry.manifest["shards"]] == [10, 10, 10, 7]
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast", mmap=True)
        assert (np.asarray(loaded.embedding) == matrix).all()

    def test_shards_are_plain_npy_files(self, tmp_path, matrix, tiny_graph):
        """Any NumPy consumer can read the shards without repro installed."""
        store = EmbeddingStore(tmp_path)
        entry = store.save(make_result(matrix), graph=tiny_graph)
        raw = np.load(entry.path / entry.manifest["shards"][0]["file"])
        assert (raw == matrix).all()
        manifest = json.loads((entry.path / "manifest.json").read_text())
        assert manifest["shape"] == [37, 8]
        assert manifest["dtype"] == "float32"

    def test_metadata_provenance_stamped_on_load(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        entry = store.save(make_result(matrix), graph=tiny_graph)
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast")
        assert loaded.metadata["graph_fingerprint"] == tiny_graph.fingerprint()
        assert loaded.metadata["store"]["version"] == entry.version

    def test_save_requires_a_graph_identity(self, tmp_path, matrix):
        store = EmbeddingStore(tmp_path)
        with pytest.raises(ValueError, match="graph"):
            store.save(make_result(matrix))

    def test_save_accepts_stamped_metadata(self, tmp_path, matrix, tiny_graph):
        """Results that went through EmbeddingService carry their own key."""
        store = EmbeddingStore(tmp_path)
        result = make_result(matrix)
        result.metadata["graph_fingerprint"] = tiny_graph.fingerprint()
        entry = store.save(result)
        assert entry.fingerprint == tiny_graph.fingerprint()


class TestVersioning:
    def test_versions_increment(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        v1 = store.save(make_result(matrix), graph=tiny_graph)
        v2 = store.save(make_result(matrix + 1), graph=tiny_graph)
        assert (v1.version, v2.version) == (1, 2)
        assert store.latest(tiny_graph.fingerprint(), "gosh-fast").version == 2
        newest = store.load(tiny_graph.fingerprint(), "gosh-fast")
        assert (newest.embedding == matrix + 1).all()
        pinned = store.load(tiny_graph.fingerprint(), "gosh-fast", version=1)
        assert (pinned.embedding == matrix).all()

    def test_distinct_configs_get_distinct_lineages(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        a = store.save(make_result(matrix, epochs=100), graph=tiny_graph)
        b = store.save(make_result(matrix, epochs=200), graph=tiny_graph)
        assert a.config_hash != b.config_hash
        assert (a.version, b.version) == (1, 1)
        entries = store.list(tiny_graph.fingerprint())
        assert len(entries) == 2

    def test_config_hash_ignores_provenance_keys(self):
        base = {"dim": 8, "seed": 0}
        stamped = {"dim": 8, "seed": 0, "graph_fingerprint": "abc",
                   "store": {"version": 3}}
        assert config_hash(base) == config_hash(stamped)
        assert config_hash(base) != config_hash({"dim": 16, "seed": 0})

    def test_config_hash_survives_a_store_round_trip(self, tmp_path, matrix,
                                                     tiny_graph):
        """Saving a loaded result must extend its lineage, not fork a new
        one — even when the original metadata held numpy scalars (which the
        manifest serialises to plain ints/floats)."""
        result = make_result(matrix, epochs=np.int64(100),
                             lr=np.float32(0.05))
        store = EmbeddingStore(tmp_path)
        original = store.save(result, graph=tiny_graph)
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast")
        resaved = store.save(loaded, graph=tiny_graph)
        assert resaved.config_hash == original.config_hash
        assert resaved.version == original.version + 1

    def test_version_pin_across_lineages_resolves_newest(self, tmp_path, matrix,
                                                         tiny_graph):
        """The same version number exists in every lineage; an unpinned
        version lookup must break the tie by save time (like latest), not by
        lineage sort order."""
        store = EmbeddingStore(tmp_path)
        store.save(make_result(matrix, epochs=100), graph=tiny_graph)
        newer = store.save(make_result(matrix + 1, epochs=200), graph=tiny_graph)
        # Both lineages have a v0001; force distinct save times.
        manifest_path = newer.path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["created_at"] += 10.0
        manifest_path.write_text(json.dumps(manifest))
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast", version=1)
        assert (loaded.embedding == matrix + 1).all()
        pinned = store.load(tiny_graph.fingerprint(), "gosh-fast", version=1,
                            config_hash=config_hash(make_result(matrix, epochs=100).metadata))
        assert (pinned.embedding == matrix).all()

    def test_list_filters(self, tmp_path, matrix, tiny_graph, ring_graph):
        store = EmbeddingStore(tmp_path)
        store.save(make_result(matrix, tool="gosh-fast"), graph=tiny_graph)
        store.save(make_result(matrix, tool="verse"), graph=tiny_graph)
        store.save(make_result(matrix, tool="verse"), graph=ring_graph)
        assert len(store.list()) == 3
        assert len(store.list(tiny_graph.fingerprint())) == 2
        assert len(store.list(tool="verse")) == 2
        assert len(store.list(tiny_graph.fingerprint(), "verse")) == 1

    def test_missing_entry_raises_store_error(self, tmp_path, tiny_graph):
        store = EmbeddingStore(tmp_path)
        with pytest.raises(StoreError, match="no stored embedding"):
            store.load(tiny_graph.fingerprint(), "gosh-fast")
        assert store.latest(tiny_graph.fingerprint(), "gosh-fast") is None

    def test_missing_version_raises_store_error(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        store.save(make_result(matrix), graph=tiny_graph)
        with pytest.raises(StoreError, match="no version 9"):
            store.load(tiny_graph.fingerprint(), "gosh-fast", version=9)

    def test_racing_saves_retry_to_the_next_version(self, tmp_path, matrix,
                                                    tiny_graph, monkeypatch):
        """When two writers race a lineage, the rename loser must commit as
        the next version instead of crashing and losing the embedding."""
        store = EmbeddingStore(tmp_path)
        first = store.save(make_result(matrix), graph=tiny_graph)
        # Simulate the race: the second save first sees the version the
        # winner already claimed, then (on retry) the truth.
        real = EmbeddingStore._next_version
        seen = iter([first.version, None])

        def racing(lineage):
            forced = next(seen)
            return forced if forced is not None else real(lineage)

        monkeypatch.setattr(EmbeddingStore, "_next_version",
                            staticmethod(racing))
        second = store.save(make_result(matrix + 1), graph=tiny_graph)
        assert second.version == first.version + 1
        assert second.manifest["version"] == second.version
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast",
                            version=second.version)
        assert (loaded.embedding == matrix + 1).all()
        # The winner's entry is untouched.
        assert (store.load(tiny_graph.fingerprint(), "gosh-fast",
                           version=first.version).embedding == matrix).all()

    def test_crashed_save_is_invisible(self, tmp_path, matrix, tiny_graph):
        """A leftover staging directory must never be served as an entry."""
        store = EmbeddingStore(tmp_path)
        entry = store.save(make_result(matrix), graph=tiny_graph)
        staging = entry.path.parent / ".tmp-v0002-crashed"
        staging.mkdir()
        (staging / "embedding-00000.npy").write_bytes(b"garbage")
        assert [e.version for e in store.list()] == [1]
        assert store._next_version(entry.path.parent) == 2


class TestGC:
    def test_gc_keeps_newest_n(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        for i in range(5):
            store.save(make_result(matrix + i), graph=tiny_graph)
        removed = store.gc(keep_n=2)
        assert sorted(e.version for e in removed) == [1, 2, 3]
        kept = store.list(tiny_graph.fingerprint(), "gosh-fast")
        assert [e.version for e in kept] == [4, 5]
        # The surviving newest version still loads exactly.
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast")
        assert (loaded.embedding == matrix + 4).all()

    def test_gc_is_per_lineage(self, tmp_path, matrix, tiny_graph, ring_graph):
        store = EmbeddingStore(tmp_path)
        for g in (tiny_graph, ring_graph):
            store.save(make_result(matrix), graph=g)
            store.save(make_result(matrix), graph=g)
        removed = store.gc(keep_n=1)
        assert len(removed) == 2
        assert len(store.list()) == 2
        assert {e.fingerprint for e in store.list()} == {
            tiny_graph.fingerprint(), ring_graph.fingerprint()}

    def test_gc_zero_empties_the_store(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        store.save(make_result(matrix), graph=tiny_graph)
        store.gc(keep_n=0)
        assert store.list() == []
        assert store.stats()["entries"] == 0

    def test_gc_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError):
            EmbeddingStore(tmp_path).gc(keep_n=-1)


class TestStats:
    def test_counters(self, tmp_path, matrix, tiny_graph):
        store = EmbeddingStore(tmp_path)
        store.save(make_result(matrix), graph=tiny_graph)
        store.save(make_result(matrix), graph=tiny_graph)
        store.load(tiny_graph.fingerprint(), "gosh-fast")
        store.gc(keep_n=1)
        stats = store.stats()
        assert stats["saves"] == 2
        assert stats["loads"] == 1
        assert stats["gc_removed"] == 1
        assert stats["entries"] == 1
        assert stats["lineages"] == 1
        # On-disk size: the raw matrix plus the .npy header.
        assert matrix.nbytes <= stats["bytes"] <= matrix.nbytes + 1024

    def test_numpy_values_in_stats_stay_json_safe(self, tmp_path, matrix, tiny_graph):
        """Manifests must serialise results whose stats hold numpy scalars."""
        result = make_result(matrix)
        result.stats["kernels"] = np.int64(42)
        result.stats["sizes"] = np.array([3, 2, 1])
        store = EmbeddingStore(tmp_path)
        entry = store.save(result, graph=tiny_graph)
        manifest = json.loads((entry.path / "manifest.json").read_text())
        assert manifest["stats"]["kernels"] == 42
        assert manifest["stats"]["sizes"] == [3, 2, 1]

    def test_empty_root_lists_nothing(self, tmp_path):
        store = EmbeddingStore(tmp_path / "never-created")
        assert store.list() == []
        assert store.stats()["entries"] == 0
