"""Tests for the QueryEngine serving object (and its store integration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EmbeddingResult
from repro.query import QueryEngine
from repro.store import EmbeddingStore


@pytest.fixture
def matrix(rng) -> np.ndarray:
    m = rng.standard_normal((120, 8)).astype(np.float32)
    m[30] = m[10]                                   # guaranteed duplicate
    return m


class TestQuery:
    def test_query_shapes_and_ranking(self, matrix):
        engine = QueryEngine(matrix, metric="cosine")
        result = engine.query(matrix[:3], k=5)
        assert result.ids.shape == (3, 5)
        assert result.scores.shape == (3, 5)
        # Scores are ranked descending per query.
        assert (np.diff(result.scores, axis=1) <= 0).all()
        # A stored vector's best match is itself (cosine 1.0).
        assert result.ids[0, 0] == 0
        assert result.backend == "blocked"

    def test_backend_override_per_call(self, matrix):
        engine = QueryEngine(matrix, metric="dot")
        blocked = engine.query(matrix[:2], k=4)
        exact = engine.query(matrix[:2], k=4, backend="exact")
        assert exact.backend == "exact"
        assert (blocked.ids == exact.ids).all()
        assert (blocked.scores == exact.scores).all()

    def test_nearest_excludes_self_by_default(self, matrix):
        engine = QueryEngine(matrix, metric="cosine")
        result = engine.nearest([10, 0], k=4)
        assert result.ids.shape == (2, 4)
        assert 10 not in result.ids[0]
        assert result.ids[0, 0] == 30               # the duplicate row
        assert 0 not in result.ids[1]

    def test_nearest_can_include_self(self, matrix):
        engine = QueryEngine(matrix, metric="cosine")
        result = engine.nearest(10, k=3, exclude_self=False)
        assert result.ids[0, 0] == 10               # smaller id wins the tie
        assert result.ids[0, 1] == 30

    def test_nearest_rejects_out_of_range(self, matrix):
        engine = QueryEngine(matrix)
        with pytest.raises(ValueError, match="vertex ids"):
            engine.nearest(len(matrix), k=2)
        with pytest.raises(ValueError, match="vertex ids"):
            engine.nearest(-1, k=2)

    def test_validation(self, matrix):
        with pytest.raises(ValueError, match="metric"):
            QueryEngine(matrix, metric="euclid")
        with pytest.raises(ValueError, match="block_rows"):
            QueryEngine(matrix, block_rows=0)
        engine = QueryEngine(matrix)
        with pytest.raises(ValueError, match="k must be"):
            engine.query(matrix[0], k=0)

    def test_stats_counters(self, matrix):
        engine = QueryEngine(matrix, metric="dot", block_rows=50)
        engine.query(matrix[:3], k=2)
        engine.nearest(5, k=2)
        stats = engine.stats()
        assert stats["queries_served"] == 4
        assert stats["batches_served"] == 2
        assert stats["rows_scored"] == 4 * len(matrix)
        assert stats["metric"] == "dot"
        assert stats["backend"] == "blocked"
        assert stats["shape"] == [120, 8]
        assert stats["query_seconds"] >= 0.0

    def test_describe_mentions_shape_and_backend(self, matrix):
        engine = QueryEngine(matrix, metric="sigmoid", backend="exact")
        text = engine.describe()
        assert "120x8" in text and "sigmoid" in text and "exact" in text


class TestRangedQueries:
    def test_ranged_query_restricts_candidates_with_global_ids(self, matrix):
        engine = QueryEngine(matrix, metric="cosine", block_rows=50)
        result = engine.query(matrix[:3], k=5, vertex_range=(40, 90))
        assert result.ids.shape == (3, 5)
        assert ((result.ids >= 40) & (result.ids < 90)).all()
        # rows_scored accounts the restricted scan, not the whole matrix.
        assert engine.stats()["rows_scored"] == 50 * 3

    def test_ranged_nearest_reserves_a_self_slot_rectangularly(self, matrix):
        """Vertex ids are global; with exclude_self the output has
        min(k, size - 1) columns whether or not the query vertex's own row
        falls inside the range (self-exclusion costs a slot either way)."""
        engine = QueryEngine(matrix, metric="cosine")
        inside = engine.nearest([10], k=4, vertex_range=(0, 40))
        outside = engine.nearest([100], k=4, vertex_range=(0, 40))
        assert inside.ids.shape == outside.ids.shape == (1, 4)
        assert 10 not in inside.ids[0]
        assert inside.ids[0, 0] == 30               # 10's duplicate row
        assert ((outside.ids >= 0) & (outside.ids < 40)).all()

    def test_ranged_nearest_clamps_k_to_range_size(self, matrix):
        # want = min(k, size - 1) for every row — one slot is reserved for
        # self-exclusion even when self lies outside the range, so a batch
        # mixing both kinds stays rectangular.
        engine = QueryEngine(matrix, metric="dot")
        result = engine.nearest([5, 22], k=50, vertex_range=(20, 25))
        assert result.ids.shape == (2, 4)
        assert 22 not in result.ids[1]
        assert ((result.ids >= 20) & (result.ids < 25)).all()

    def test_ranged_matches_unranged_over_the_full_span(self, matrix):
        engine = QueryEngine(matrix, metric="cosine")
        full = engine.nearest([7, 90], k=6)
        spanned = engine.nearest([7, 90], k=6, vertex_range=(0, 120))
        assert (full.ids == spanned.ids).all()
        assert full.scores.tobytes() == spanned.scores.tobytes()

    def test_bad_range_raises(self, matrix):
        engine = QueryEngine(matrix)
        with pytest.raises(ValueError, match="range"):
            engine.query(matrix[:1], k=3, vertex_range=(60, 40))
        with pytest.raises(ValueError, match="range"):
            engine.nearest([0], k=3, vertex_range=(0, 121))


class TestStoreIntegration:
    def test_engine_over_mmapped_store_entry(self, tmp_path, matrix, tiny_graph):
        """The serving path: save -> load(mmap=True) -> query, no copies."""
        store = EmbeddingStore(tmp_path)
        result = EmbeddingResult(embedding=matrix, tool="gosh-fast",
                                 graph="tiny", seconds=0.1,
                                 metadata={"dim": 8})
        store.save(result, graph=tiny_graph)
        loaded = store.load(tiny_graph.fingerprint(), "gosh-fast", mmap=True)
        engine = QueryEngine(loaded.embedding, metric="cosine")
        # float32 C-contiguous mmap is served in place — no resident copy.
        assert np.shares_memory(engine.prepared.matrix, loaded.embedding)
        fresh = QueryEngine(matrix, metric="cosine")
        a = engine.nearest([10, 99], k=5)
        b = fresh.nearest([10, 99], k=5)
        assert (a.ids == b.ids).all()
        assert (a.scores == b.scores).all()

    def test_result_rows_for_tables(self, matrix):
        engine = QueryEngine(matrix, metric="cosine")
        result = engine.nearest([10], k=2)
        rows = result.as_rows(query_labels=[10])
        assert rows[0]["query"] == 10
        assert rows[0]["rank"] == 1
        assert rows[0]["neighbor"] == 30
        assert "cosine" in rows[0]
