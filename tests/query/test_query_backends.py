"""Golden parity suite: the blocked backend IS the exact oracle, bit for bit.

The acceptance bar for the query layer mirrors the sampler-backend suite:
``"blocked"`` must return identical top-k ids *and* identical float32 score
bits (with the shared stable tie-break) to the ``"exact"`` brute-force
oracle, for every metric, any k, and any blocking — including block
boundaries that split score ties.  Both backends are driven on the same
``block_rows`` grid, exactly as :class:`~repro.query.QueryEngine` drives
them: scoring walks identical blocks (so score bits cannot drift with BLAS
shape heuristics) and only the *selection* differs — which is the part the
oracle exists to pin down.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import (
    DEFAULT_QUERY_BACKEND,
    METRICS,
    PreparedMatrix,
    QueryBackend,
    UnknownQueryBackendError,
    available_query_backends,
    get_query_backend,
    register_query_backend,
    topk_by_score,
)


def golden_matrix(n: int, dim: int, seed: int) -> np.ndarray:
    """A matrix with deliberate duplicate rows so score ties are guaranteed."""
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, dim)).astype(np.float32)
    # Duplicates both within one block and across typical block boundaries.
    if n >= 50:
        m[7] = m[3]
        m[n // 2 + 1] = m[5]
        m[n - 2] = m[3]
    return m


class TestParity:
    """The golden suite pinned by the acceptance criteria."""

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("k", [1, 7, 64])
    def test_blocked_matches_exact_bit_for_bit(self, metric, k):
        m = golden_matrix(997, 16, seed=11)          # prime => ragged last block
        prepared = PreparedMatrix(m, metric=metric)
        queries = np.random.default_rng(5).standard_normal((13, 16)).astype(np.float32)
        for block_rows in (1, 64, 100, 997, 5000):
            exact_ids, exact_scores = get_query_backend("exact").topk(
                prepared, queries, k, block_rows=block_rows)
            ids, scores = get_query_backend("blocked").topk(
                prepared, queries, k, block_rows=block_rows)
            assert (ids == exact_ids).all(), (metric, k, block_rows)
            assert scores.dtype == exact_scores.dtype == np.float32
            assert (scores.view(np.int32) == exact_scores.view(np.int32)).all(), \
                (metric, k, block_rows)

    def test_ranking_is_stable_across_grids(self):
        """Across *different* block sizes only the low score bits may move
        (BLAS shape heuristics); the returned ids must not."""
        m = golden_matrix(997, 16, seed=11)
        prepared = PreparedMatrix(m, metric="cosine")
        queries = np.random.default_rng(8).standard_normal((7, 16)).astype(np.float32)
        reference_ids, reference_scores = get_query_backend("blocked").topk(
            prepared, queries, 10, block_rows=997)
        for block_rows in (33, 128, 4096):
            ids, scores = get_query_backend("blocked").topk(
                prepared, queries, 10, block_rows=block_rows)
            assert (ids == reference_ids).all(), block_rows
            np.testing.assert_allclose(scores, reference_scores, rtol=1e-5)

    def test_tie_break_is_stable_smaller_id_first(self):
        """Duplicate rows tie exactly; both backends must rank the smaller
        vertex id first, even when the duplicates land in different blocks."""
        m = golden_matrix(200, 8, seed=3)
        prepared = PreparedMatrix(m, metric="cosine")
        query = m[3][None, :]                        # rows 3, 7, 198 tie at 1.0
        for backend in ("exact", "blocked"):
            ids, scores = get_query_backend(backend).topk(
                prepared, query, 3, block_rows=32)
            assert ids[0].tolist() == [3, 7, 198], backend
            assert scores[0, 0] == scores[0, 1] == scores[0, 2]

    def test_k_larger_than_matrix_returns_all_rows(self):
        m = golden_matrix(9, 4, seed=0)
        prepared = PreparedMatrix(m, metric="dot")
        q = m[:2]
        for backend in ("exact", "blocked"):
            ids, scores = get_query_backend(backend).topk(prepared, q, 50,
                                                          block_rows=4)
            assert ids.shape == (2, 9)
            assert sorted(ids[0].tolist()) == list(range(9))

    def test_single_query_vector_accepted(self):
        m = golden_matrix(64, 8, seed=1)
        prepared = PreparedMatrix(m, metric="cosine")
        ids, scores = get_query_backend("blocked").topk(prepared, m[0], 5)
        assert ids.shape == (1, 5)

    def test_sigmoid_is_monotone_in_dot(self):
        """sigma(u.v) reranks nothing: identical ids to the dot metric, with
        calibrated (0, 1) scores (the trainer's link-probability model)."""
        m = golden_matrix(300, 8, seed=9)
        q = np.random.default_rng(2).standard_normal((4, 8)).astype(np.float32)
        dot_ids, _ = get_query_backend("blocked").topk(
            PreparedMatrix(m, metric="dot"), q, 10)
        sig_ids, sig_scores = get_query_backend("blocked").topk(
            PreparedMatrix(m, metric="sigmoid"), q, 10)
        assert (dot_ids == sig_ids).all()
        assert ((sig_scores > 0.0) & (sig_scores < 1.0)).all()

    def test_cosine_scores_are_normalised(self):
        m = golden_matrix(100, 8, seed=4)
        ids, scores = get_query_backend("exact").topk(
            PreparedMatrix(m, metric="cosine"), m[17], 1)
        assert ids[0, 0] == 17
        assert scores[0, 0] == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("block_rows", [5, 3, 100])
    def test_nan_rows_rank_last_in_both_backends(self, block_rows):
        """A corrupted/divergent embedding (NaN rows) must stay servable:
        both backends rank NaN candidates last — the blocked backend must
        neither crash nor come up short of k when a block's k-th best score
        is NaN."""
        m = golden_matrix(10, 4, seed=2)
        m[4:] = np.nan                              # majority-NaN blocks
        prepared = PreparedMatrix(m, metric="dot")
        q = golden_matrix(2, 4, seed=3)
        exact_ids, exact_scores = get_query_backend("exact").topk(
            prepared, q, 3, block_rows=block_rows)
        ids, scores = get_query_backend("blocked").topk(
            prepared, q, 3, block_rows=block_rows)
        assert ids.shape == (2, 3)
        assert (ids == exact_ids).all()
        assert (np.isnan(scores) == np.isnan(exact_scores)).all()
        finite = ~np.isnan(scores)
        assert (scores[finite] == exact_scores[finite]).all()
        # Finite rows win over NaN rows.
        assert set(ids[0, :3].tolist()) <= {0, 1, 2, 3}

    def test_zero_rows_and_queries_score_zero_not_nan(self):
        m = golden_matrix(40, 8, seed=6)
        m[11] = 0.0
        prepared = PreparedMatrix(m, metric="cosine")
        zq = np.zeros((1, 8), dtype=np.float32)
        for backend in ("exact", "blocked"):
            _, scores = get_query_backend(backend).topk(prepared, zq, 40)
            assert np.isfinite(scores).all()
            assert (scores == 0.0).all()


class TestVertexRange:
    """Ranged top-k — the sharded serving tier's routing primitive.

    A ranged call scores the *same* canonical ``block_rows`` grid as an
    unranged run and only masks selection, so partitioning the rows and
    re-merging with the shared tie rule must reproduce the full run bit
    for bit — this is what makes the shard router's merge exact.
    """

    @pytest.mark.parametrize("backend", ["exact", "blocked"])
    @pytest.mark.parametrize("block_rows", [1, 33, 100, 997, 5000])
    def test_partitioned_runs_merge_to_the_full_run(self, backend, block_rows):
        m = golden_matrix(997, 16, seed=11)
        prepared = PreparedMatrix(m, metric="cosine")
        queries = np.random.default_rng(5).standard_normal((5, 16)).astype(np.float32)
        k = 10
        full_ids, full_scores = get_query_backend(backend).topk(
            prepared, queries, k, block_rows=block_rows)
        cuts = [0, 300, 601, 997]           # uneven, unaligned with the grid
        parts = [get_query_backend(backend).topk(
                     prepared, queries, k, block_rows=block_rows,
                     vertex_range=(lo, hi))
                 for lo, hi in zip(cuts, cuts[1:])]
        for row in range(queries.shape[0]):
            ids = np.concatenate([ids_part[row] for ids_part, _ in parts])
            scores = np.concatenate([scores_part[row] for _, scores_part in parts])
            merged_ids, merged_scores = topk_by_score(ids, scores, k)
            assert merged_ids.tolist() == full_ids[row].tolist(), (backend, block_rows)
            assert merged_scores.tobytes() == full_scores[row].tobytes(), \
                (backend, block_rows)

    @pytest.mark.parametrize("backend", ["exact", "blocked"])
    def test_ranged_ids_are_global_and_in_range(self, backend):
        m = golden_matrix(200, 8, seed=3)
        prepared = PreparedMatrix(m, metric="dot")
        q = m[:3]
        ids, _ = get_query_backend(backend).topk(
            prepared, q, 5, block_rows=32, vertex_range=(60, 140))
        assert ((ids >= 60) & (ids < 140)).all()

    @pytest.mark.parametrize("backend", ["exact", "blocked"])
    def test_k_clamps_to_the_range_size(self, backend):
        m = golden_matrix(100, 8, seed=4)
        prepared = PreparedMatrix(m, metric="cosine")
        ids, scores = get_query_backend(backend).topk(
            prepared, m[:2], 50, block_rows=16, vertex_range=(10, 20))
        assert ids.shape == scores.shape == (2, 10)
        assert sorted(ids[0].tolist()) == list(range(10, 20))

    @pytest.mark.parametrize("bad", [(5, 5), (10, 5), (-1, 10), (0, 101)])
    def test_invalid_ranges_raise(self, bad):
        m = golden_matrix(100, 8, seed=4)
        prepared = PreparedMatrix(m, metric="dot")
        for backend in ("exact", "blocked"):
            with pytest.raises(ValueError, match="range"):
                get_query_backend(backend).topk(prepared, m[:1], 3,
                                                vertex_range=bad)


class TestPreparedMatrix:
    def test_float32_contiguous_input_is_not_copied(self):
        m = np.ascontiguousarray(golden_matrix(10, 4, seed=0))
        prepared = PreparedMatrix(m, metric="dot")
        assert prepared.matrix is m

    def test_other_dtypes_are_coerced(self):
        m = golden_matrix(10, 4, seed=0).astype(np.float64)
        prepared = PreparedMatrix(m)
        assert prepared.matrix.dtype == np.float32

    def test_rejects_bad_metric_and_shapes(self):
        with pytest.raises(ValueError, match="unknown metric"):
            PreparedMatrix(np.zeros((3, 2), dtype=np.float32), metric="l2")
        with pytest.raises(ValueError, match="2-D"):
            PreparedMatrix(np.zeros(3, dtype=np.float32))
        prepared = PreparedMatrix(np.zeros((3, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="dimension"):
            prepared.prepare_queries(np.zeros((1, 5), dtype=np.float32))

    def test_topk_by_score_rule(self):
        ids = np.array([5, 2, 9, 1], dtype=np.int64)
        scores = np.array([0.5, 0.9, 0.9, 0.1], dtype=np.float32)
        out_ids, out_scores = topk_by_score(ids, scores, 3)
        assert out_ids.tolist() == [2, 9, 5]        # ties: ascending id
        assert out_scores.tolist() == pytest.approx([0.9, 0.9, 0.5])


class TestRegistry:
    """Mirrors the kernel/sampler backend registry contract."""

    def test_builtins_registered(self):
        assert available_query_backends()[:2] == ["exact", "blocked"]
        assert DEFAULT_QUERY_BACKEND == "blocked"

    def test_default_and_case_insensitive(self):
        assert get_query_backend(None).name == "blocked"
        assert get_query_backend("EXACT").name == "exact"

    def test_instances_are_cached_singletons(self):
        assert get_query_backend("blocked") is get_query_backend("blocked")

    def test_instance_passthrough(self):
        backend = get_query_backend("exact")
        assert get_query_backend(backend) is backend

    def test_unknown_name_raises_with_options(self):
        with pytest.raises(UnknownQueryBackendError, match="faiss"):
            get_query_backend("faiss")
        try:
            get_query_backend("faiss")
        except UnknownQueryBackendError as exc:
            assert "exact" in str(exc) and "blocked" in str(exc)

    def test_third_party_registration(self):
        class MirrorBackend:
            name = "mirror"

            def describe(self):
                return "test double"

            def topk(self, prepared, queries, k, *, block_rows=4096):
                return get_query_backend("exact").topk(prepared, queries, k)

        register_query_backend("mirror", MirrorBackend)
        try:
            resolved = get_query_backend("mirror")
            assert isinstance(resolved, QueryBackend)
            with pytest.raises(ValueError, match="already registered"):
                register_query_backend("mirror", MirrorBackend)
            register_query_backend("mirror", MirrorBackend, replace=True)
        finally:
            from repro.query import backends as mod

            mod._FACTORIES.pop("mirror", None)
            mod._INSTANCES.pop("mirror", None)
