"""Unit tests for rotation order, sample pools, and GPUState."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import contiguous_partition, social_community
from repro.gpu import DeviceMemoryError, DeviceSpec, SimulatedDevice
from repro.large import (
    GPUState,
    SamplePoolManager,
    count_switches,
    inside_out_order,
    naive_order,
    validate_rotation_cover,
)


class TestInsideOutOrder:
    def test_matches_paper_prefix(self):
        # (0,0), (1,0), (1,1), (2,0), (2,1), (2,2), ...
        order = inside_out_order(3)
        assert order == [(0, 0), (1, 0), (1, 1), (2, 0), (2, 1), (2, 2)]

    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_covers_every_pair_once(self, k):
        order = inside_out_order(k)
        assert len(order) == k * (k + 1) // 2
        assert validate_rotation_cover(order, k)

    def test_consecutive_pairs_share_a_part(self):
        # Except when the previous pair was a diagonal (a, a) — the paper's
        # recurrence then restarts at (a + 1, 0) — consecutive pairs keep one
        # part resident, which is what makes the order cheap to stream.
        order = inside_out_order(6)
        for (a1, b1), (a2, b2) in zip(order, order[1:]):
            if a1 == b1:
                continue
            assert {a1, b1} & {a2, b2}, "inside-out order must reuse a resident part"

    def test_invalid_num_parts(self):
        with pytest.raises(ValueError):
            inside_out_order(0)

    def test_fewer_switches_than_naive(self):
        k = 8
        inside = count_switches(inside_out_order(k), resident_slots=3)
        naive = count_switches(naive_order(k), resident_slots=3)
        assert inside <= naive

    def test_count_switches_requires_two_slots(self):
        with pytest.raises(ValueError):
            count_switches(inside_out_order(3), resident_slots=1)

    def test_validate_rejects_duplicates(self):
        assert not validate_rotation_cover([(0, 0), (0, 0)], 1)
        assert not validate_rotation_cover([(0, 0)], 2)


class TestSamplePoolManager:
    @pytest.fixture
    def setup(self):
        graph = social_community(200, intra_degree=6, seed=0)
        partition = contiguous_partition(graph.num_vertices, 4)
        manager = SamplePoolManager(graph=graph, partition=partition,
                                    batch_per_vertex=3, max_resident_pools=2, seed=0)
        return graph, partition, manager

    def test_pool_samples_cross_correct_parts(self, setup):
        graph, partition, manager = setup
        pool = manager.build_pool(1, 0)
        assert pool.num_samples > 0
        for s, d in zip(pool.src, pool.dst):
            assert graph.has_edge(int(s), int(d))
            parts = {int(partition.part_of[s]), int(partition.part_of[d])}
            assert parts.issubset({0, 1})

    def test_self_pair_pool(self, setup):
        graph, partition, manager = setup
        pool = manager.build_pool(2, 2)
        for s, d in zip(pool.src, pool.dst):
            assert partition.part_of[s] == 2
            assert partition.part_of[d] == 2

    def test_batch_per_vertex_cap(self, setup):
        graph, partition, manager = setup
        pool = manager.build_pool(1, 0)
        counts = np.bincount(pool.src, minlength=graph.num_vertices)
        assert counts.max() <= manager.batch_per_vertex

    def test_prefetch_respects_buffer_limit(self, setup):
        _, _, manager = setup
        manager.prefetch([(1, 0), (2, 0), (3, 0), (2, 1)])
        assert manager.resident_pools <= manager.max_resident_pools

    def test_acquire_consumes_buffered_pool(self, setup):
        _, _, manager = setup
        manager.prefetch([(1, 0)])
        produced_before = manager.pools_produced
        pool = manager.acquire(1, 0)
        assert pool.part_a == 1 and pool.part_b == 0
        assert manager.pools_produced == produced_before  # reused the buffered one
        assert manager.pools_consumed == 1
        assert manager.resident_pools == 0

    def test_acquire_builds_on_miss(self, setup):
        _, _, manager = setup
        manager.acquire(3, 2)
        assert manager.pools_produced == 1
        assert manager.stats()["pools_consumed"] == 1


class TestSamplePoolCounters:
    """Producer/consumer counters and bounded-queue refill semantics."""

    def _manager(self, max_resident=2, backend=None, seed=0):
        graph = social_community(200, intra_degree=6, seed=0)
        partition = contiguous_partition(graph.num_vertices, 4)
        kwargs = {} if backend is None else {"sampler_backend": backend}
        return SamplePoolManager(graph=graph, partition=partition,
                                 batch_per_vertex=3,
                                 max_resident_pools=max_resident, seed=seed,
                                 **kwargs)

    def test_counters_track_production_and_consumption(self):
        manager = self._manager(max_resident=3)
        manager.prefetch([(1, 0), (2, 0), (2, 1)])
        assert manager.pools_produced == 3
        assert manager.pools_consumed == 0
        assert manager.resident_pools == 3
        pools = [manager.acquire(1, 0), manager.acquire(2, 1)]
        assert manager.pools_consumed == 2
        assert manager.pools_produced == 3          # both were buffered
        assert manager.resident_pools == 1
        # a miss builds on demand: produced and consumed advance together
        pools.append(manager.acquire(3, 0))
        assert manager.pools_produced == 4
        assert manager.pools_consumed == 3
        assert manager.samples_produced == sum(
            p.num_samples for p in pools) + manager.acquire(2, 0).num_samples
        assert manager.pools_consumed == 4

    def test_buffer_keys_keep_production_order(self):
        manager = self._manager(max_resident=3)
        manager.prefetch([(3, 0), (1, 0), (2, 1), (2, 0)])
        # Bounded queue: only the first max_resident pairs were produced,
        # buffered oldest-first in production order (normalised keys).
        assert manager.resident_pool_keys == [(3, 0), (1, 0), (2, 1)]

    def test_acquire_frees_slot_for_refill(self):
        manager = self._manager(max_resident=2)
        manager.prefetch([(1, 0), (2, 0), (2, 1)])
        assert manager.resident_pool_keys == [(1, 0), (2, 0)]
        manager.acquire(1, 0)                        # consume the oldest
        manager.prefetch([(2, 0), (2, 1)])           # refill the freed slot
        assert manager.resident_pool_keys == [(2, 0), (2, 1)]
        assert manager.pools_produced == 3           # (2, 0) was not rebuilt

    def test_acquire_out_of_order_preserves_remaining_order(self):
        manager = self._manager(max_resident=3)
        manager.prefetch([(1, 0), (2, 0), (2, 1)])
        manager.acquire(2, 0)                        # consume from the middle
        assert manager.resident_pool_keys == [(1, 0), (2, 1)]

    def test_prefetch_normalises_and_dedupes_keys(self):
        manager = self._manager(max_resident=4)
        manager.prefetch([(0, 1), (1, 0), (1, 0)])
        assert manager.pools_produced == 1
        assert manager.resident_pool_keys == [(1, 0)]

    def test_stats_shape(self):
        manager = self._manager(backend="vectorized")
        manager.prefetch([(1, 0)])
        manager.acquire(1, 0)
        stats = manager.stats()
        assert stats["pools_produced"] == 1
        assert stats["pools_consumed"] == 1
        assert stats["resident_pools"] == 0
        assert stats["samples_produced"] > 0
        assert stats["sampler_backend"] == "vectorized"
        # pool (1, 0) samples both directions -> two filtered sub-CSRs built
        assert stats["filtered_cache"]["builds"] == 2
        assert stats["filtered_cache"]["entries"] == 2

    def test_reference_backend_skips_filtered_cache(self):
        """The oracle walks the graph itself; the manager must not pay for
        (or hold) filtered sub-CSRs the backend never reads."""
        manager = self._manager(backend="reference")
        manager.build_pool(1, 0)
        cache = manager.stats()["filtered_cache"]
        assert cache["builds"] == 0 and cache["entries"] == 0

    def test_filtered_cache_hits_across_rebuilds(self):
        manager = self._manager(backend="vectorized")
        manager.build_pool(1, 0)
        manager.build_pool(1, 0)
        cache = manager.stats()["filtered_cache"]
        assert cache["builds"] == 2 and cache["hits"] == 2

    def test_backend_parity_at_pool_level(self):
        """Both sampler backends draw identical pools for a fixed seed."""
        ref = self._manager(backend="reference", seed=11)
        vec = self._manager(backend="vectorized", seed=11)
        for a in range(4):
            for b in range(a + 1):
                p_ref, p_vec = ref.build_pool(a, b), vec.build_pool(a, b)
                assert np.array_equal(p_ref.src, p_vec.src)
                assert np.array_equal(p_ref.dst, p_vec.dst)


class TestGPUState:
    @pytest.fixture
    def state(self):
        rng = np.random.default_rng(0)
        embedding = rng.random((100, 8)).astype(np.float32)
        partition = contiguous_partition(100, 5)
        device = SimulatedDevice(spec=DeviceSpec(name="small", memory_bytes=100 * 8 * 4))
        return embedding, partition, GPUState(embedding=embedding, parts=partition.parts,
                                              device=device, num_bins=3)

    def test_load_and_residency(self, state):
        _, _, gpu = state
        gpu.load(0)
        gpu.load(1)
        assert gpu.is_resident(0) and gpu.is_resident(1)
        assert gpu.switches == 2

    def test_submatrix_contents(self, state):
        embedding, partition, gpu = state
        gpu.load(2)
        assert np.allclose(gpu.submatrix(2), embedding[partition.parts[2]])

    def test_eviction_writes_back(self, state):
        embedding, partition, gpu = state
        gpu.load(0)
        gpu.submatrix(0)[:] = 7.0
        gpu.evict_part(0)
        assert np.all(embedding[partition.parts[0]] == 7.0)
        assert not gpu.is_resident(0)

    def test_ensure_pair_evicts_unneeded(self, state):
        _, _, gpu = state
        gpu.ensure_pair(0, 1)
        gpu.ensure_pair(2, 3, upcoming=[(4, 3)])
        assert gpu.is_resident(2) and gpu.is_resident(3)
        assert len(gpu.resident_parts) <= 3

    def test_flush_writes_everything_back(self, state):
        embedding, partition, gpu = state
        gpu.ensure_pair(0, 1)
        gpu.submatrix(0)[:] = 3.0
        gpu.submatrix(1)[:] = 4.0
        gpu.flush()
        assert np.all(embedding[partition.parts[0]] == 3.0)
        assert np.all(embedding[partition.parts[1]] == 4.0)
        assert not gpu.resident_parts

    def test_requires_two_bins(self, state):
        embedding, partition, _ = state
        with pytest.raises(ValueError):
            GPUState(embedding=embedding, parts=partition.parts,
                     device=SimulatedDevice(), num_bins=1)

    def test_memory_pressure_raises(self):
        # Device can hold only one sub-matrix: loading a pair must fail.
        embedding = np.zeros((100, 8), dtype=np.float32)
        partition = contiguous_partition(100, 2)
        device = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=50 * 8 * 4))
        gpu = GPUState(embedding=embedding, parts=partition.parts, device=device, num_bins=2)
        gpu.load(0)
        with pytest.raises(DeviceMemoryError):
            gpu.load(1)
