"""Tests for the large-graph trainer (Algorithm 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import init_embedding
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.graph import social_community
from repro.large import LargeGraphConfig, LargeGraphTrainer, train_large_graph


def tiny_device(kilobytes: int) -> SimulatedDevice:
    return SimulatedDevice(spec=DeviceSpec(name=f"{kilobytes}kB", memory_bytes=kilobytes * 1024))


class TestLargeGraphTrainer:
    @pytest.fixture
    def graph(self):
        return social_community(400, intra_degree=8, seed=1)

    def test_partitioned_training_runs(self, graph):
        # 400 x 16 x 4 bytes = 25.6 KB; an 16 KB device forces partitioning.
        device = tiny_device(16)
        emb = init_embedding(graph.num_vertices, 16, 0)
        stats = train_large_graph(graph, emb, epochs=20, device=device,
                                  config=LargeGraphConfig(seed=0))
        assert stats.num_parts >= 2
        assert stats.kernels == stats.rotations * stats.num_parts * (stats.num_parts + 1) // 2
        assert stats.positive_samples > 0
        assert stats.submatrix_switches >= stats.num_parts

    def test_embedding_actually_trains(self, graph):
        device = tiny_device(16)
        emb = init_embedding(graph.num_vertices, 16, 0)
        before = emb.copy()
        train_large_graph(graph, emb, epochs=20, device=device,
                          config=LargeGraphConfig(seed=0))
        assert not np.array_equal(emb, before)
        # positive (train) edges should score above random pairs on average
        edges = graph.undirected_edge_array()
        rng = np.random.default_rng(0)
        rand_u = rng.integers(0, graph.num_vertices, edges.shape[0])
        rand_v = rng.integers(0, graph.num_vertices, edges.shape[0])
        pos = np.einsum("ij,ij->i", emb[edges[:, 0]], emb[edges[:, 1]]).mean()
        rnd = np.einsum("ij,ij->i", emb[rand_u], emb[rand_v]).mean()
        assert pos > rnd

    def test_device_memory_respected(self, graph):
        device = tiny_device(16)
        emb = init_embedding(graph.num_vertices, 16, 0)
        train_large_graph(graph, emb, epochs=10, device=device)
        assert device.peak_allocated_bytes <= device.spec.memory_bytes

    def test_rotations_scale_with_epochs(self, graph):
        device = tiny_device(16)
        cfg = LargeGraphConfig(positive_batch_per_vertex=5, seed=0)
        emb = init_embedding(graph.num_vertices, 16, 0)
        few = LargeGraphTrainer(device, cfg).train(graph, emb.copy(), epochs=10)
        device.reset()
        many = LargeGraphTrainer(device, cfg).train(graph, emb.copy(), epochs=200)
        assert many.rotations > few.rotations

    def test_min_parts_override(self, graph):
        device = SimulatedDevice()  # plenty of memory
        cfg = LargeGraphConfig(min_parts=4, seed=0)
        emb = init_embedding(graph.num_vertices, 8, 0)
        stats = LargeGraphTrainer(device, cfg).train(graph, emb, epochs=10)
        assert stats.num_parts >= 4

    def test_shape_mismatch_raises(self, graph):
        device = tiny_device(16)
        with pytest.raises(ValueError):
            train_large_graph(graph, np.zeros((3, 8), dtype=np.float32), 5, device)

    def test_equivalent_quality_to_in_memory(self):
        """Partitioned training must not be dramatically worse than in-memory."""
        graph = social_community(300, intra_degree=8, seed=2)
        dim, epochs = 16, 40

        emb_mem = init_embedding(graph.num_vertices, dim, 0)
        from repro.embedding import LevelTrainer

        LevelTrainer(negative_samples=3, learning_rate=0.05, seed=0).train(graph, emb_mem, epochs)

        emb_part = init_embedding(graph.num_vertices, dim, 0)
        train_large_graph(graph, emb_part, epochs, tiny_device(8),
                          config=LargeGraphConfig(learning_rate=0.05, seed=0))

        def edge_separation(emb):
            edges = graph.undirected_edge_array()
            rng = np.random.default_rng(0)
            ru = rng.integers(0, graph.num_vertices, edges.shape[0])
            rv = rng.integers(0, graph.num_vertices, edges.shape[0])
            pos = np.einsum("ij,ij->i", emb[edges[:, 0]], emb[edges[:, 1]]).mean()
            rnd = np.einsum("ij,ij->i", emb[ru], emb[rv]).mean()
            return pos - rnd

        assert edge_separation(emb_part) > 0
        assert edge_separation(emb_part) > 0.2 * edge_separation(emb_mem)
