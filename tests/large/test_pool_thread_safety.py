"""Concurrency suite for :class:`~repro.large.sample_pool.SamplePoolManager`.

The pipelined engine drives the manager from a producer thread while the
consumer may still build on ``acquire`` misses, so the bounded buffer, the
produced/consumed/sample counters, and the filtered-adjacency cache must
hold their invariants under concurrent access:

* ``resident_pools`` never exceeds ``max_resident_pools`` — even while
  several threads prefetch at once (in-flight claims count against the cap);
* counter totals are conserved: every produced pool is either consumed or
  still buffered, and ``samples_produced`` equals the sum over built pools;
* no (pair, rotation) pool is ever built twice by racing prefetches.

Every test joins its workers with a hard timeout and fails — rather than
hangs — if a worker deadlocks; ``pytest-timeout`` (active in CI) is a
second line of defence via the module-level ``timeout`` marker.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.graph import contiguous_partition, social_community
from repro.large import SamplePoolManager, inside_out_order

pytestmark = pytest.mark.timeout(60)

JOIN_TIMEOUT = 30.0


def _make_manager(max_resident=3, num_parts=4, seed=0):
    graph = social_community(300, intra_degree=6, seed=0)
    partition = contiguous_partition(graph.num_vertices, num_parts)
    return SamplePoolManager(graph=graph, partition=partition, batch_per_vertex=3,
                             max_resident_pools=max_resident, seed=seed)


def _run_workers(*targets):
    """Run targets on threads; fail the test (not hang) on deadlock/error."""
    errors: list[BaseException] = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # re-raised on the test thread
                errors.append(exc)
        return run

    threads = [threading.Thread(target=wrap(t), daemon=True) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=JOIN_TIMEOUT)
    stuck = [t for t in threads if t.is_alive()]
    assert not stuck, f"worker threads deadlocked: {stuck}"
    if errors:
        raise errors[0]


class TestConcurrentPrefetch:
    def test_buffer_never_exceeds_cap(self):
        manager = _make_manager(max_resident=3)
        pairs = inside_out_order(4)
        max_seen = []

        def prefetcher():
            for _ in range(30):
                manager.prefetch(pairs)
                max_seen.append(manager.resident_pools)
                for a, b in pairs[:2]:
                    manager.acquire(a, b)

        _run_workers(prefetcher, prefetcher)
        assert max(max_seen) <= 3
        assert manager.resident_pools <= 3

    def test_racing_prefetches_never_build_a_pair_twice(self):
        manager = _make_manager(max_resident=10)
        pairs = inside_out_order(4)   # 10 pairs, all fit

        _run_workers(lambda: manager.prefetch(pairs),
                     lambda: manager.prefetch(list(reversed(pairs))))
        stats = manager.stats()
        assert stats["pools_produced"] == len(pairs)
        assert manager.resident_pools == len(pairs)
        assert sorted(manager.resident_pool_keys) == sorted(
            (max(p), min(p)) for p in pairs)


class TestConcurrentProduceConsume:
    def test_counter_totals_conserved(self):
        manager = _make_manager(max_resident=4)
        pairs = inside_out_order(4)
        rounds = 25
        consumed_samples = []

        def producer():
            for rotation in range(rounds):
                manager.prefetch(pairs, rotation=rotation)

        def consumer():
            for rotation in range(rounds):
                for a, b in pairs:
                    pool = manager.acquire(a, b, rotation=rotation)
                    consumed_samples.append(pool.num_samples)

        _run_workers(producer, consumer)
        stats = manager.stats()
        assert stats["pools_consumed"] == rounds * len(pairs)
        # conservation: everything produced was consumed or is still buffered
        assert stats["pools_produced"] == stats["pools_consumed"] + stats["resident_pools"]
        assert stats["resident_pools"] <= 4

    def test_sample_counter_matches_built_pools(self):
        manager = _make_manager(max_resident=2)
        pairs = inside_out_order(3)

        def worker():
            for rotation in range(10):
                manager.prefetch(pairs, rotation=rotation)
                for a, b in pairs:
                    manager.acquire(a, b, rotation=rotation)

        _run_workers(worker, worker)
        stats = manager.stats()
        # two workers over 10 rotations each: every acquire was served
        assert stats["pools_consumed"] == 2 * 10 * len(pairs)
        assert stats["pools_produced"] >= stats["pools_consumed"]
        assert stats["samples_produced"] > 0

    def test_concurrent_pools_stay_bit_identical(self):
        """Keyed streams make racing builders return identical pools."""
        results: dict[int, list] = {0: [], 1: []}
        manager = _make_manager(max_resident=0)   # force every acquire to build

        def builder(slot):
            def run():
                for rotation in range(8):
                    for a, b in inside_out_order(3):
                        results[slot].append(
                            manager.acquire(a, b, rotation=rotation))
            return run

        _run_workers(builder(0), builder(1))
        for p0, p1 in zip(results[0], results[1]):
            assert np.array_equal(p0.src, p1.src)
            assert np.array_equal(p0.dst, p1.dst)


class TestFilteredCacheUnderConcurrency:
    def test_cache_entries_bounded_by_directions(self):
        manager = _make_manager(max_resident=10, num_parts=4)
        pairs = inside_out_order(4)

        _run_workers(
            lambda: [manager.build_pool(a, b) for a, b in pairs],
            lambda: [manager.build_pool(a, b) for a, b in reversed(pairs)],
        )
        cache = manager.stats()["filtered_cache"]
        # 4 self-directions + 2 per off-diagonal pair; racing builders must
        # not duplicate entries
        assert cache["entries"] == 4 + 2 * (len(pairs) - 4)
        assert cache["builds"] == cache["entries"]


class TestRotationKeyedBuffer:
    def test_acquire_never_serves_stale_rotation_pool(self):
        """A pool prefetched for one rotation must not satisfy another."""
        manager = _make_manager(max_resident=4)
        manager.prefetch([(1, 0)], rotation=7)
        pool = manager.acquire(1, 0, rotation=2)        # miss: wrong rotation
        fresh = _make_manager(max_resident=4).build_pool(1, 0, rotation=2)
        assert np.array_equal(pool.src, fresh.src)
        assert np.array_equal(pool.dst, fresh.dst)
        assert manager.resident_pools == 1              # rotation-7 pool kept
        manager.acquire(1, 0, rotation=7)               # served from buffer
        assert manager.stats()["pools_produced"] == 2
        assert manager.resident_pools == 0

    def test_resident_pool_keys_report_pairs(self):
        manager = _make_manager(max_resident=4)
        manager.prefetch([(1, 0), (2, 1)], rotation=3)
        assert manager.resident_pool_keys == [(1, 0), (2, 1)]
