"""Pipelined-execution suite: golden parity, executor semantics, stats.

The contract of :mod:`repro.large.pipeline` is that execution mode changes
*scheduling only*: because every pool draw and every kernel negative stream
is keyed by ``(seed, rotation, pair)``, producing pools on a background
thread must yield bit-identical embeddings to producing them inline.  These
tests pin that parity (the tentpole acceptance criterion), the bounded-queue
backpressure, producer-error propagation, and the stall/queue statistics.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.embedding import init_embedding
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.gpu.backends import get_backend
from repro.graph import contiguous_partition, social_community
from repro.large import (
    LargeGraphConfig,
    PipelinedExecutor,
    PoolPreparer,
    SamplePoolManager,
    SequentialExecutor,
    UnknownExecutionModeError,
    build_schedule,
    create_executor,
    inside_out_order,
    kernel_rng,
    train_large_graph,
)

pytestmark = pytest.mark.timeout(120)


def tiny_device(kilobytes: int) -> SimulatedDevice:
    return SimulatedDevice(spec=DeviceSpec(name=f"{kilobytes}kB", memory_bytes=kilobytes * 1024))


def _train(graph, mode, *, seed=0, epochs=20, dim=16, **cfg_kwargs):
    device = tiny_device(16)
    emb = init_embedding(graph.num_vertices, dim, 0)
    stats = train_large_graph(graph, emb, epochs=epochs, device=device,
                              config=LargeGraphConfig(seed=seed, execution_mode=mode,
                                                      **cfg_kwargs))
    return emb, stats


@pytest.fixture(scope="module")
def graph():
    return social_community(400, intra_degree=8, seed=1)


class TestGoldenParity:
    """pipelined must be bit-identical to the sequential oracle."""

    @pytest.mark.parametrize("seed", [0, 7])
    def test_embeddings_bit_identical(self, graph, seed):
        emb_seq, _ = _train(graph, "sequential", seed=seed)
        emb_pip, _ = _train(graph, "pipelined", seed=seed)
        assert np.array_equal(emb_seq, emb_pip)

    @pytest.mark.parametrize("kernel_backend", ["reference", "vectorized"])
    def test_parity_across_kernel_backends(self, graph, kernel_backend):
        emb_seq, _ = _train(graph, "sequential", kernel_backend=kernel_backend)
        emb_pip, _ = _train(graph, "pipelined", kernel_backend=kernel_backend)
        assert np.array_equal(emb_seq, emb_pip)

    @pytest.mark.parametrize("sampler_backend",
                             ["reference", "vectorized", "degree_biased"])
    def test_parity_across_sampler_backends(self, graph, sampler_backend):
        emb_seq, _ = _train(graph, "sequential", sampler_backend=sampler_backend)
        emb_pip, _ = _train(graph, "pipelined", sampler_backend=sampler_backend)
        assert np.array_equal(emb_seq, emb_pip)

    def test_identical_pool_contents_across_executors(self, graph):
        """Both executors must hand the kernels the *same* ready pools."""
        partition = contiguous_partition(graph.num_vertices, 4)
        schedule = build_schedule(2, inside_out_order(4))
        backend = get_backend("vectorized")
        g2l = partition.global_to_local()
        readies = {}
        for mode in ("sequential", "pipelined"):
            manager = SamplePoolManager(graph=graph, partition=partition,
                                        batch_per_vertex=3, seed=5)
            preparer = PoolPreparer(partition, backend, g2l, 2, 5)
            with create_executor(mode, manager, preparer, schedule, 4) as ex:
                readies[mode] = [ex.next_ready() for _ in schedule]
        for r_seq, r_pip in zip(readies["sequential"], readies["pipelined"]):
            assert r_seq.entry == r_pip.entry
            assert np.array_equal(r_seq.pool.src, r_pip.pool.src)
            assert np.array_equal(r_seq.pool.dst, r_pip.pool.dst)
            assert len(r_seq.directions) == len(r_pip.directions)
            for d_seq, d_pip in zip(r_seq.directions, r_pip.directions):
                assert (d_seq.from_part, d_seq.to_part) == (d_pip.from_part, d_pip.to_part)
                assert np.array_equal(d_seq.src, d_pip.src)
                assert np.array_equal(d_pip.plan.neg_targets, d_seq.plan.neg_targets)

    def test_pool_contents_independent_of_build_order(self, graph):
        """The keyed streams, directly: build order must not matter."""
        partition = contiguous_partition(graph.num_vertices, 3)
        forward = SamplePoolManager(graph=graph, partition=partition, seed=3)
        backward = SamplePoolManager(graph=graph, partition=partition, seed=3)
        keys = [(r, a, b) for r in range(2) for a, b in inside_out_order(3)]
        built_fwd = {k: forward.build_pool(k[1], k[2], rotation=k[0]) for k in keys}
        built_bwd = {k: backward.build_pool(k[1], k[2], rotation=k[0])
                     for k in reversed(keys)}
        for k in keys:
            assert np.array_equal(built_fwd[k].src, built_bwd[k].src)
            assert np.array_equal(built_fwd[k].dst, built_bwd[k].dst)

    def test_rotations_draw_distinct_pools(self, graph):
        partition = contiguous_partition(graph.num_vertices, 3)
        manager = SamplePoolManager(graph=graph, partition=partition, seed=0)
        p0 = manager.build_pool(1, 0, rotation=0)
        p1 = manager.build_pool(1, 0, rotation=1)
        assert not np.array_equal(p0.dst, p1.dst)


class TestPreparedKernelParity:
    """prepare_pair + plan= must be bit-identical to the inline kernel."""

    def test_prepared_equals_unprepared(self, graph):
        partition = contiguous_partition(graph.num_vertices, 2)
        manager = SamplePoolManager(graph=graph, partition=partition, seed=1)
        pool = manager.build_pool(1, 0)
        in_a = partition.part_of[pool.src] == 1
        src, dst = pool.src[in_a], pool.dst[in_a]
        backend = get_backend("vectorized")
        g2l = partition.global_to_local()
        rng_master = np.random.default_rng(9)
        base = rng_master.random((graph.num_vertices, 8)).astype(np.float32)

        sub_a_inline = base[partition.parts[1]].copy()
        sub_b_inline = base[partition.parts[0]].copy()
        backend.train_pair(partition.parts[1], partition.parts[0],
                           sub_a_inline, sub_b_inline, src, dst, 3, 0.05,
                           kernel_rng(1, 0, 1, 0), index_a=g2l, index_b=g2l)

        plan = backend.prepare_pair(partition.parts[1], partition.parts[0],
                                    src, dst, 3, kernel_rng(1, 0, 1, 0),
                                    index_a=g2l, index_b=g2l)
        sub_a_plan = base[partition.parts[1]].copy()
        sub_b_plan = base[partition.parts[0]].copy()
        backend.train_pair(partition.parts[1], partition.parts[0],
                           sub_a_plan, sub_b_plan, src, dst, 3, 0.05,
                           kernel_rng(1, 0, 1, 0), index_a=g2l, index_b=g2l,
                           plan=plan)
        assert np.array_equal(sub_a_inline, sub_a_plan)
        assert np.array_equal(sub_b_inline, sub_b_plan)

    def test_plan_reads_no_embedding_state(self, graph):
        """A plan built before training must stay valid (index-only)."""
        partition = contiguous_partition(graph.num_vertices, 2)
        backend = get_backend("vectorized")
        manager = SamplePoolManager(graph=graph, partition=partition, seed=2)
        pool = manager.build_pool(1, 0)
        in_a = partition.part_of[pool.src] == 1
        plan = backend.prepare_pair(partition.parts[1], partition.parts[0],
                                    pool.src[in_a], pool.dst[in_a], 2,
                                    np.random.default_rng(0))
        assert plan.nbytes() > 0
        assert plan.neg_targets.shape[0] == 2


class TestExecutors:
    def _setup(self, graph, num_parts=4, rotations=2, capacity=3, seed=0):
        partition = contiguous_partition(graph.num_vertices, num_parts)
        manager = SamplePoolManager(graph=graph, partition=partition,
                                    batch_per_vertex=3,
                                    max_resident_pools=capacity, seed=seed)
        preparer = PoolPreparer(partition, get_backend("vectorized"),
                                partition.global_to_local(), 2, seed)
        schedule = build_schedule(rotations, inside_out_order(num_parts))
        return manager, preparer, schedule

    def test_unknown_mode_raises(self, graph):
        manager, preparer, schedule = self._setup(graph)
        with pytest.raises(UnknownExecutionModeError) as exc:
            create_executor("warp-speed", manager, preparer, schedule, 3)
        assert "pipelined" in str(exc.value)

    def test_create_executor_dispatch(self, graph):
        manager, preparer, schedule = self._setup(graph)
        ex = create_executor("sequential", manager, preparer, schedule, 3)
        assert isinstance(ex, SequentialExecutor)
        ex.close()
        ex = create_executor("PIPELINED", manager, preparer, schedule, 3)
        assert isinstance(ex, PipelinedExecutor)
        ex.close()

    def test_backpressure_bounds_ready_pools(self, graph):
        """An unconsumed producer must stop at the S_GPU queue bound."""
        capacity = 2
        manager, preparer, schedule = self._setup(graph, capacity=capacity)
        assert len(schedule) > capacity + 1
        with PipelinedExecutor(manager, preparer, schedule, capacity) as ex:
            deadline = time.monotonic() + 5.0
            while manager.stats()["pools_produced"] < capacity and time.monotonic() < deadline:
                time.sleep(0.01)
            time.sleep(0.2)   # give an unbounded producer time to overshoot
            # capacity pools queued plus at most one blocked in hand-over.
            assert manager.stats()["pools_produced"] <= capacity + 1
            assert ex.stats.max_queue_depth <= capacity
        # close() must have stopped the producer without consuming the rest
        assert manager.stats()["pools_produced"] < len(schedule)

    def test_pipelined_delivers_in_schedule_order(self, graph):
        manager, preparer, schedule = self._setup(graph)
        with PipelinedExecutor(manager, preparer, schedule, 3) as ex:
            for entry in schedule:
                ready = ex.next_ready()
                assert ready.entry == entry
        assert manager.stats()["pools_produced"] == len(schedule)
        assert manager.stats()["pools_consumed"] == len(schedule)

    def test_producer_error_reaches_consumer(self, graph):
        manager, preparer, schedule = self._setup(graph)

        class Boom(RuntimeError):
            pass

        def explode(*args, **kwargs):
            raise Boom("sampler failure")

        manager.build_pool = explode
        with PipelinedExecutor(manager, preparer, schedule, 3) as ex:
            with pytest.raises(Boom):
                ex.next_ready()

    def test_close_unblocks_producer_midway(self, graph):
        """Consumer abandoning the run must not leave the producer wedged."""
        manager, preparer, schedule = self._setup(graph, rotations=4, capacity=1)
        ex = PipelinedExecutor(manager, preparer, schedule, 1)
        ex.next_ready()          # consume one, then walk away
        ex.close()
        assert not ex._thread.is_alive()

    def test_stats_shapes(self, graph):
        manager, preparer, schedule = self._setup(graph)
        for mode in ("sequential", "pipelined"):
            m, p, s = self._setup(graph)
            with create_executor(mode, m, p, s, 3) as ex:
                for _ in s:
                    ex.next_ready()
            stats = ex.stats
            assert stats.mode == mode
            assert len(stats.events) == len(s)
            assert stats.stall_seconds >= 0.0
            assert stats.produce_seconds > 0.0
            assert all(e.consumed_at >= e.produced_at - 1e-9 or mode == "sequential"
                       for e in stats.events)
            assert all(e.queue_depth <= 3 for e in stats.events)


class TestSchedulerIntegration:
    def test_stats_carry_pipeline_record(self, graph):
        _, stats = _train(graph, "pipelined")
        assert stats.execution_mode == "pipelined"
        assert stats.pipeline is not None
        assert len(stats.pipeline.events) == stats.kernels
        assert stats.pool_stall_seconds >= 0.0
        assert stats.pool_produce_seconds > 0.0
        assert stats.max_ready_pools >= 1

    def test_timeline_records_pool_copies(self, graph):
        _, stats = _train(graph, "pipelined")
        copies = [e for e in stats.timeline.events if e.kind == "h2d"]
        kernels = [e for e in stats.timeline.events if e.kind == "kernel"]
        assert len(copies) == stats.kernels          # one pool shipment per pair
        assert len(kernels) == stats.kernels
        # a pair with no cross edges ships an empty pool (zero-cost copy)
        assert any(e.duration > 0 for e in copies)
        assert all(e.duration >= 0 for e in copies)
        # transfers now price into the serial makespan
        assert stats.timeline.serial_makespan > sum(e.duration for e in kernels)

    def test_sequential_counts_production_as_stall(self, graph):
        _, stats = _train(graph, "sequential")
        assert stats.execution_mode == "sequential"
        # inline production *is* the stall the pipeline removes
        assert stats.pool_stall_seconds == pytest.approx(stats.pool_produce_seconds)

    def test_invalid_mode_rejected_by_gosh_config(self):
        from repro.embedding.config import NORMAL
        with pytest.raises(ValueError):
            NORMAL.with_(execution_mode="warp-speed").validate()
        NORMAL.with_(execution_mode="sequential").validate()


class TestThreadHygiene:
    def test_no_leaked_producer_threads(self, graph):
        before = threading.active_count()
        for _ in range(3):
            _train(graph, "pipelined", epochs=10)
        deadline = time.monotonic() + 5.0
        while threading.active_count() > before and time.monotonic() < deadline:
            time.sleep(0.01)
        assert threading.active_count() <= before
