"""Unit tests for the simulated GPU device and memory accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import (
    TITAN_X,
    DeviceMemoryError,
    DeviceSpec,
    SimulatedDevice,
    embedding_fits_on_device,
)


@pytest.fixture
def small_device() -> SimulatedDevice:
    return SimulatedDevice(spec=DeviceSpec(name="tiny", memory_bytes=1 << 20))  # 1 MB


class TestAllocation:
    def test_allocate_and_free(self, small_device):
        buf = small_device.allocate((100, 100), np.float32, name="m")
        assert small_device.allocated_bytes == 100 * 100 * 4
        buf.free()
        assert small_device.allocated_bytes == 0

    def test_oversubscription_raises(self, small_device):
        with pytest.raises(DeviceMemoryError):
            small_device.allocate((1 << 20,), np.float64)

    def test_peak_tracking(self, small_device):
        a = small_device.allocate((100,), np.float64)
        b = small_device.allocate((200,), np.float64)
        a.free()
        assert small_device.peak_allocated_bytes == 300 * 8
        b.free()

    def test_double_free_is_idempotent(self, small_device):
        buf = small_device.allocate((10,), np.float32)
        buf.free()
        buf.free()
        assert small_device.allocated_bytes == 0

    def test_context_manager_frees(self, small_device):
        with small_device.allocate((10,), np.float32) as buf:
            assert buf.nbytes == 40
        assert small_device.allocated_bytes == 0

    def test_free_bytes(self, small_device):
        small_device.allocate((10,), np.float32)
        assert small_device.free_bytes == small_device.spec.memory_bytes - 40

    def test_many_small_allocations_fill_device(self, small_device):
        buffers = []
        with pytest.raises(DeviceMemoryError):
            for _ in range(10_000):
                buffers.append(small_device.allocate((64,), np.float64))
        assert small_device.allocated_bytes <= small_device.spec.memory_bytes


class TestTransfers:
    def test_upload_counts_bytes(self, small_device):
        data = np.ones((64, 4), dtype=np.float32)
        buf = small_device.upload(data)
        assert small_device.bytes_transferred_h2d == data.nbytes
        assert np.array_equal(buf.array, data)

    def test_download_counts_bytes_and_copies(self, small_device):
        data = np.arange(32, dtype=np.float32)
        buf = small_device.upload(data)
        out = small_device.download(buf)
        assert small_device.bytes_transferred_d2h == data.nbytes
        out[0] = 99
        assert buf.array[0] == 0

    def test_transfer_time_accumulates(self, small_device):
        small_device.upload(np.ones(1000, dtype=np.float64))
        assert small_device.simulated_transfer_seconds > 0


class TestKernelAccounting:
    def test_kernel_counter(self, small_device):
        small_device.record_kernel(1000)
        small_device.record_kernel(1000, efficiency=0.5)
        assert small_device.num_kernel_launches == 2
        assert small_device.simulated_compute_seconds > 0

    def test_lower_efficiency_costs_more(self):
        a = SimulatedDevice()
        b = SimulatedDevice()
        a.record_kernel(10_000, efficiency=1.0)
        b.record_kernel(10_000, efficiency=0.25)
        assert b.simulated_compute_seconds > a.simulated_compute_seconds

    def test_reset(self, small_device):
        small_device.upload(np.ones(10, dtype=np.float32))
        small_device.record_kernel(10)
        small_device.reset()
        assert small_device.allocated_bytes == 0
        assert small_device.num_kernel_launches == 0
        assert small_device.memory_report()["h2d_bytes"] == 0


class TestFitsCheck:
    def test_titan_x_fits_medium_graph(self):
        device = SimulatedDevice(spec=TITAN_X)
        # 1M vertices x 128 dims x 4 bytes = 512 MB — fits in 12 GB.
        assert embedding_fits_on_device(1_000_000, 128, 100 * 1024 * 1024, device)

    def test_titan_x_rejects_huge_graph(self):
        device = SimulatedDevice(spec=TITAN_X)
        # 65M vertices x 128 dims x 4 bytes = 33 GB — the com-friendster case.
        assert not embedding_fits_on_device(65_000_000, 128, 1 << 30, device)

    def test_small_device_rejects(self, small_device):
        assert not embedding_fits_on_device(10_000, 64, 0, small_device)
