"""Unit tests for the embedding kernels (Algorithm 1 semantics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import (
    SigmoidTable,
    SimulatedDevice,
    sigmoid,
    train_epoch_naive,
    train_epoch_optimized,
    train_pair_kernel,
    update_embedding_pair,
)


class TestSigmoid:
    def test_symmetry(self):
        assert sigmoid(0.0) == pytest.approx(0.5)
        assert sigmoid(3.0) + sigmoid(-3.0) == pytest.approx(1.0)

    def test_bounds(self):
        x = np.linspace(-50, 50, 101)
        y = sigmoid(x)
        assert np.all((y >= 0) & (y <= 1))

    def test_monotone(self):
        x = np.linspace(-5, 5, 50)
        assert np.all(np.diff(sigmoid(x)) > 0)


class TestSigmoidTable:
    def test_matches_exact_within_tolerance(self):
        table = SigmoidTable(bound=6.0, size=4096)
        x = np.linspace(-5.5, 5.5, 333)
        assert np.allclose(table(x), sigmoid(x), atol=5e-3)

    def test_clipping(self):
        table = SigmoidTable(bound=4.0, size=64)
        assert table(np.array([100.0]))[0] == pytest.approx(sigmoid(4.0), abs=1e-6)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SigmoidTable(bound=-1)
        with pytest.raises(ValueError):
            SigmoidTable(size=1)


class TestUpdatePair:
    def test_positive_update_increases_dot(self):
        rng = np.random.default_rng(0)
        v = rng.normal(size=8) * 0.1
        s = rng.normal(size=8) * 0.1
        new_v, new_s = update_embedding_pair(v, s, True, lr=0.5)
        assert np.dot(new_v, new_s) > np.dot(v, s)

    def test_negative_update_decreases_dot(self):
        rng = np.random.default_rng(1)
        v = rng.normal(size=8) * 0.1 + 0.2
        s = rng.normal(size=8) * 0.1 + 0.2
        new_v, new_s = update_embedding_pair(v, s, False, lr=0.5)
        assert np.dot(new_v, new_s) < np.dot(v, s)

    def test_matches_algorithm1_formula(self):
        v = np.array([0.1, -0.2, 0.3])
        s = np.array([0.05, 0.4, -0.1])
        lr = 0.25
        score = (1.0 - sigmoid(float(v @ s))) * lr
        expected_v = v + s * score
        expected_s = s + expected_v * score
        new_v, new_s = update_embedding_pair(v, s, True, lr)
        assert np.allclose(new_v, expected_v)
        assert np.allclose(new_s, expected_s)

    def test_zero_lr_is_noop(self):
        v = np.ones(4)
        s = np.ones(4)
        new_v, new_s = update_embedding_pair(v, s, True, 0.0)
        assert np.array_equal(new_v, v)
        assert np.array_equal(new_s, s)


class TestOptimizedEpoch:
    def _setup(self, n=30, d=8, seed=0):
        rng = np.random.default_rng(seed)
        emb = (rng.random((n, d)).astype(np.float32) - 0.5) * 0.1
        return emb, rng

    def test_single_source_matches_reference(self):
        """With one source and no races the kernel must equal Algorithm 1."""
        emb, _ = self._setup()
        reference = emb.astype(np.float64).copy()
        sources = np.array([3])
        positives = np.array([7])
        negatives = np.array([[11, 19]])
        lr = 0.1
        # reference: positive then two negative updates with staged source
        v = reference[3].copy()
        for sample, b in ((7, 1.0), (11, 0.0), (19, 0.0)):
            score = (b - sigmoid(float(v @ reference[sample]))) * lr
            new_v = v + reference[sample] * score
            reference[sample] = reference[sample] + new_v * score
            v = new_v
        reference[3] = v

        train_epoch_optimized(emb, sources, positives, negatives, lr)
        assert np.allclose(emb.astype(np.float64), reference, atol=1e-5)

    def test_duplicate_sources_rejected(self):
        emb, _ = self._setup()
        with pytest.raises(ValueError):
            train_epoch_optimized(emb, np.array([1, 1]), np.array([2, 3]),
                                  np.array([[4], [5]]), 0.1)

    def test_missing_positive_skipped(self):
        emb, _ = self._setup()
        before = emb.copy()
        train_epoch_optimized(emb, np.array([0]), np.array([-1]),
                              np.zeros((1, 0), dtype=np.int64), 0.1)
        assert np.array_equal(emb, before)

    def test_empty_sources_noop(self):
        emb, _ = self._setup()
        before = emb.copy()
        train_epoch_optimized(emb, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                              np.zeros((0, 3), dtype=np.int64), 0.1)
        assert np.array_equal(emb, before)

    def test_sample_updates_survive_chunking(self):
        """A vertex that is both a source and another source's sample keeps both updates."""
        emb, _ = self._setup(n=4, d=4, seed=3)
        sources = np.array([0, 1, 2, 3])
        positives = np.array([1, 0, 3, 2])
        negatives = np.zeros((4, 0), dtype=np.int64)
        before = emb.copy()
        train_epoch_optimized(emb, sources, positives, negatives, 0.5, chunk_size=2)
        # every row must have moved (it was updated as a source AND as a sample)
        assert np.all(np.any(emb != before, axis=1))

    def test_device_accounting(self):
        emb, _ = self._setup()
        device = SimulatedDevice()
        train_epoch_optimized(emb, np.arange(10), np.arange(1, 11),
                              np.random.default_rng(0).integers(0, 30, (10, 2)),
                              0.1, device=device)
        assert device.num_kernel_launches == 1
        assert device.simulated_compute_seconds > 0

    def test_positive_epoch_pulls_neighbors_together(self):
        emb, rng = self._setup(n=20, d=8, seed=2)
        sources = np.arange(20)
        positives = (sources + 1) % 20
        negatives = np.zeros((20, 0), dtype=np.int64)
        before = float(np.mean(np.einsum("ij,ij->i", emb[sources], emb[positives])))
        for _ in range(30):
            train_epoch_optimized(emb, sources, positives, negatives, 0.3)
        after = float(np.mean(np.einsum("ij,ij->i", emb[sources], emb[positives])))
        assert after > before


class TestNaiveEpoch:
    def test_same_direction_as_optimized(self):
        rng = np.random.default_rng(5)
        emb_a = (rng.random((15, 6)).astype(np.float32) - 0.5) * 0.1
        emb_b = emb_a.copy()
        sources = np.arange(15)
        positives = (sources + 3) % 15
        negatives = rng.integers(0, 15, (15, 2))
        train_epoch_optimized(emb_a, sources, positives, negatives, 0.2)
        train_epoch_naive(emb_b, sources, positives, negatives, 0.2)
        # Not bit-identical (different global-traffic schedule), but both push
        # positive pairs closer on average.
        dot_a = np.mean(np.einsum("ij,ij->i", emb_a[sources], emb_a[positives]))
        dot_b = np.mean(np.einsum("ij,ij->i", emb_b[sources], emb_b[positives]))
        assert dot_a > 0 or dot_b > 0

    def test_device_cost_higher_than_optimized(self):
        rng = np.random.default_rng(6)
        emb = (rng.random((20, 8)).astype(np.float32) - 0.5) * 0.1
        d_opt, d_naive = SimulatedDevice(), SimulatedDevice()
        sources = np.arange(20)
        positives = (sources + 1) % 20
        negatives = rng.integers(0, 20, (20, 3))
        train_epoch_optimized(emb.copy(), sources, positives, negatives, 0.1, device=d_opt)
        train_epoch_naive(emb.copy(), sources, positives, negatives, 0.1, device=d_naive)
        assert d_naive.simulated_compute_seconds > d_opt.simulated_compute_seconds


class TestPairKernel:
    def test_updates_only_resident_parts(self):
        rng = np.random.default_rng(0)
        n, d = 20, 6
        emb = (rng.random((n, d)).astype(np.float32) - 0.5) * 0.1
        part_a = np.arange(0, 10)
        part_b = np.arange(10, 20)
        sub_a = emb[part_a].copy()
        sub_b = emb[part_b].copy()
        pos_src = np.array([0, 1, 2])
        pos_dst = np.array([10, 11, 12])
        before_a, before_b = sub_a.copy(), sub_b.copy()
        train_pair_kernel(part_a, part_b, sub_a, sub_b, pos_src, pos_dst,
                          ns=2, lr=0.2, rng=rng)
        assert not np.array_equal(sub_a, before_a)
        assert not np.array_equal(sub_b, before_b)
        # the master embedding array is untouched (sub-matrices are copies)
        assert np.allclose(emb[part_a], before_a)

    def test_positive_pairs_pulled_together(self):
        rng = np.random.default_rng(1)
        n, d = 16, 8
        emb = (rng.random((n, d)).astype(np.float32) - 0.5) * 0.1
        part_a, part_b = np.arange(0, 8), np.arange(8, 16)
        sub_a, sub_b = emb[part_a].copy(), emb[part_b].copy()
        pos_src = np.arange(0, 8)
        pos_dst = np.arange(8, 16)
        before = float(np.mean(np.einsum("ij,ij->i", sub_a, sub_b)))
        for _ in range(40):
            train_pair_kernel(part_a, part_b, sub_a, sub_b, pos_src, pos_dst,
                              ns=0, lr=0.3, rng=rng)
        after = float(np.mean(np.einsum("ij,ij->i", sub_a, sub_b)))
        assert after > before

    def test_mismatched_pairs_raise(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            train_pair_kernel(np.arange(4), np.arange(4, 8),
                              np.zeros((4, 2), dtype=np.float32),
                              np.zeros((4, 2), dtype=np.float32),
                              np.array([0, 1]), np.array([4]), 1, 0.1, rng)

    def test_self_pair_uses_shared_storage(self):
        rng = np.random.default_rng(3)
        part = np.arange(0, 10)
        sub = (rng.random((10, 4)).astype(np.float32) - 0.5) * 0.1
        before = sub.copy()
        train_pair_kernel(part, part, sub, sub, np.array([0, 1]), np.array([2, 3]),
                          ns=1, lr=0.2, rng=rng)
        assert not np.array_equal(sub, before)
