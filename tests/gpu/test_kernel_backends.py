"""Kernel-parity golden tests: the vectorized backend against the reference.

The two backends differ in three documented ways:

1. **Sigmoid** — reference evaluates the exact ``float64`` sigmoid; vectorized
   uses a ``float32`` LUT (8192 bins over [-6, 6], max per-round score error
   ``lr * 12 / 8192 / 2``).
2. **Conflict policy** — reference accumulates duplicate-sample updates with
   ``np.add.at``; the vectorized epoch kernels resolve duplicates within a
   round deterministically last-writer-wins (the pair kernel keeps exact
   accumulation via a sorted segment sum).
3. **Chunking** — reference stages sources in 2048-wide chunks; vectorized
   stages the whole epoch at once (identical for graphs below 2048 vertices).

Golden tolerances pinned here (and documented in README.md):

* single epoch, small graph:        ``atol = 5e-3``
* 10 epochs of drift:               ``atol = 2e-2`` and mean cosine ≥ 0.99
* one pair-kernel call:             ``atol = 1e-5``
* duplicate-free samples + exact sigmoid: ``atol = 1e-6`` (the only remaining
  difference is float round-off ordering)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import init_embedding
from repro.gpu import (
    ReferenceBackend,
    UnknownBackendError,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
    sigmoid,
)
from repro.graph import social_community
from repro.graph.samplers import NegativeSampler, PositiveSampler

KERNELS = ("optimized", "naive")


def _epoch_samples(graph, rng, ns=3):
    sources = np.arange(graph.num_vertices, dtype=np.int64)
    positives = PositiveSampler(graph, seed=rng).sample(sources)
    negatives = NegativeSampler(graph.num_vertices, seed=rng).sample((sources.shape[0], ns))
    return sources, positives, negatives


class TestBackendRegistry:
    def test_builtins_available(self):
        names = available_backends()
        assert "reference" in names and "vectorized" in names

    def test_get_backend_by_name_is_cached_singleton(self):
        assert get_backend("reference") is get_backend("reference")
        assert get_backend("vectorized") is get_backend("VECTORIZED")

    def test_get_backend_default_and_passthrough(self):
        # The vectorized backend is the default; reference stays the oracle.
        assert get_backend(None).name == "vectorized"
        custom = VectorizedBackend()
        assert get_backend(custom) is custom

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownBackendError) as exc:
            get_backend("warp-speed")
        assert "warp-speed" in str(exc.value)
        assert "reference" in str(exc.value)

    def test_register_and_replace_guard(self):
        with pytest.raises(ValueError):
            register_backend("reference", ReferenceBackend)
        register_backend("reference", ReferenceBackend, replace=True)
        assert isinstance(get_backend("reference"), ReferenceBackend)

    def test_unknown_epoch_kernel_rejected_by_both(self):
        emb = init_embedding(4, 4, 0)
        srcs = np.arange(4)
        pos = np.zeros(4, dtype=np.int64)
        neg = np.zeros((4, 1), dtype=np.int64)
        for backend in (get_backend("reference"), get_backend("vectorized")):
            with pytest.raises(ValueError):
                backend.train_epoch(emb, srcs, pos, neg, 0.01, kernel="quantum")


class TestEpochKernelParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_single_epoch_close(self, kernel):
        """One epoch on a 200-vertex graph: embeddings match to atol=5e-3."""
        g = social_community(200, intra_degree=6, seed=2)
        rng = np.random.default_rng(5)
        sources, positives, negatives = _epoch_samples(g, rng)
        ref = init_embedding(g.num_vertices, 16, 3)
        vec = ref.copy()
        get_backend("reference").train_epoch(ref, sources, positives, negatives,
                                             0.035, kernel=kernel)
        get_backend("vectorized").train_epoch(vec, sources, positives, negatives,
                                              0.035, kernel=kernel)
        np.testing.assert_allclose(vec, ref, atol=5e-3)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_ten_epoch_drift_bounded(self, kernel):
        """Ten epochs of identical samples: atol=2e-2, mean cosine >= 0.99."""
        g = social_community(500, intra_degree=6, seed=2)
        rng = np.random.default_rng(5)
        ref = init_embedding(g.num_vertices, 16, 3)
        vec = ref.copy()
        for _ in range(10):
            sources, positives, negatives = _epoch_samples(g, rng)
            get_backend("reference").train_epoch(ref, sources, positives, negatives,
                                                 0.035, kernel=kernel)
            get_backend("vectorized").train_epoch(vec, sources, positives, negatives,
                                                  0.035, kernel=kernel)
        np.testing.assert_allclose(vec, ref, atol=2e-2)
        cos = np.einsum("ij,ij->i", ref, vec) / (
            np.linalg.norm(ref, axis=1) * np.linalg.norm(vec, axis=1) + 1e-12)
        assert cos.mean() >= 0.99

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_duplicate_free_samples_match_tightly(self, kernel):
        """With permutation samples and the exact sigmoid, the conflict policy
        and the LUT are both out of the picture — parity to atol=1e-6."""
        n, d = 300, 8
        rng = np.random.default_rng(0)
        ref = init_embedding(n, d, 1)
        vec = ref.copy()
        sources = np.arange(n, dtype=np.int64)
        positives = rng.permutation(n).astype(np.int64)
        negatives = np.stack([rng.permutation(n) for _ in range(3)], axis=1)
        exact_vec = VectorizedBackend(sig=sigmoid)
        get_backend("reference").train_epoch(ref, sources, positives, negatives,
                                             0.05, kernel=kernel)
        exact_vec.train_epoch(vec, sources, positives, negatives, 0.05, kernel=kernel)
        np.testing.assert_allclose(vec, ref, atol=1e-6)

    def test_vectorized_requires_unique_sources(self):
        emb = init_embedding(8, 4, 0)
        dup = np.array([0, 1, 1], dtype=np.int64)
        with pytest.raises(ValueError):
            get_backend("vectorized").train_epoch(
                emb, dup, np.zeros(3, dtype=np.int64),
                np.zeros((3, 1), dtype=np.int64), 0.01)

    def test_empty_sources_noop(self):
        emb = init_embedding(8, 4, 0)
        before = emb.copy()
        get_backend("vectorized").train_epoch(
            emb, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros((0, 2), dtype=np.int64), 0.01)
        assert np.array_equal(emb, before)

    def test_sources_with_no_positive_neighbour_skipped(self):
        """positives == -1 must skip the positive round, as in the reference."""
        n = 64
        rng = np.random.default_rng(3)
        ref = init_embedding(n, 8, 2)
        vec = ref.copy()
        sources = np.arange(n, dtype=np.int64)
        positives = rng.integers(0, n, n)
        positives[::4] = -1
        negatives = rng.integers(0, n, (n, 2))
        get_backend("reference").train_epoch(ref, sources, positives, negatives, 0.03)
        get_backend("vectorized").train_epoch(vec, sources, positives, negatives, 0.03)
        np.testing.assert_allclose(vec, ref, atol=5e-3)


class TestPairKernelParity:
    def _pair_setup(self, na=400, nb=400, d=16, B=5, seed=0):
        rng = np.random.default_rng(seed)
        part_a = np.arange(na, dtype=np.int64)
        part_b = np.arange(na, na + nb, dtype=np.int64)
        sub_a = init_embedding(na, d, seed)
        sub_b = init_embedding(nb, d, seed + 1)
        pos_src = np.repeat(part_a, B)
        pos_dst = part_b[rng.integers(0, nb, na * B)]
        return part_a, part_b, sub_a, sub_b, pos_src, pos_dst

    def test_pair_kernel_close(self):
        """One pair call (identical negative draws): parity to atol=1e-5."""
        part_a, part_b, a0, b0, pos_src, pos_dst = self._pair_setup()
        ref_a, ref_b = a0.copy(), b0.copy()
        vec_a, vec_b = a0.copy(), b0.copy()
        get_backend("reference").train_pair(
            part_a, part_b, ref_a, ref_b, pos_src, pos_dst, 3, 0.035,
            np.random.default_rng(7))
        get_backend("vectorized").train_pair(
            part_a, part_b, vec_a, vec_b, pos_src, pos_dst, 3, 0.035,
            np.random.default_rng(7))
        np.testing.assert_allclose(vec_a, ref_a, atol=1e-5)
        np.testing.assert_allclose(vec_b, ref_b, atol=1e-5)

    def test_pair_kernel_with_prebuilt_index_arrays(self):
        part_a, part_b, a0, b0, pos_src, pos_dst = self._pair_setup(na=100, nb=100)
        # One partition-wide lookup serves both parts, the way the scheduler's
        # partition cache builds it: each global id maps to its row within the
        # part that owns it.
        size = int(part_b.max()) + 1
        index = np.full(size, -1, dtype=np.int64)
        index[part_a] = np.arange(part_a.shape[0])
        index[part_b] = np.arange(part_b.shape[0])
        with_idx_a, with_idx_b = a0.copy(), b0.copy()
        without_a, without_b = a0.copy(), b0.copy()
        vec = get_backend("vectorized")
        vec.train_pair(part_a, part_b, with_idx_a, with_idx_b, pos_src, pos_dst,
                       2, 0.03, np.random.default_rng(1), index_a=index, index_b=index)
        vec.train_pair(part_a, part_b, without_a, without_b, pos_src, pos_dst,
                       2, 0.03, np.random.default_rng(1))
        assert np.array_equal(with_idx_a, without_a)
        assert np.array_equal(with_idx_b, without_b)

    def test_pair_kernel_self_pair(self):
        """(V^a, V^a) pairs share storage; both backends must handle aliasing."""
        rng = np.random.default_rng(4)
        part = np.arange(120, dtype=np.int64)
        sub = init_embedding(120, 8, 9)
        ref = sub.copy()
        vec = sub.copy()
        pos_src = np.repeat(part, 2)
        pos_dst = part[rng.integers(0, 120, 240)]
        get_backend("reference").train_pair(
            part, part, ref, ref, pos_src, pos_dst, 2, 0.03, np.random.default_rng(2))
        get_backend("vectorized").train_pair(
            part, part, vec, vec, pos_src, pos_dst, 2, 0.03, np.random.default_rng(2))
        np.testing.assert_allclose(vec, ref, atol=1e-5)

    def test_mismatched_pair_lengths_rejected(self):
        part = np.arange(10, dtype=np.int64)
        sub = init_embedding(10, 4, 0)
        for backend in (get_backend("reference"), get_backend("vectorized")):
            with pytest.raises(ValueError):
                backend.train_pair(part, part, sub, sub,
                                   np.zeros(3, dtype=np.int64),
                                   np.zeros(2, dtype=np.int64),
                                   1, 0.01, np.random.default_rng(0))


class TestDeviceAccountingParity:
    """Swapping backends must not change the *modelled* GPU cost."""

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_epoch_kernel_records_identical_work(self, kernel):
        from repro.gpu import SimulatedDevice

        g = social_community(100, intra_degree=4, seed=1)
        rng = np.random.default_rng(0)
        sources, positives, negatives = _epoch_samples(g, rng)
        devices = []
        for name in ("reference", "vectorized"):
            emb = init_embedding(g.num_vertices, 16, 0)
            device = SimulatedDevice()
            get_backend(name).train_epoch(emb, sources, positives, negatives,
                                          0.03, kernel=kernel, device=device)
            devices.append(device)
        ref_dev, vec_dev = devices
        assert ref_dev.num_kernel_launches == vec_dev.num_kernel_launches
        assert ref_dev.simulated_compute_seconds == pytest.approx(
            vec_dev.simulated_compute_seconds)
