"""Unit tests for the warp execution model and the stream-overlap timeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import (
    StreamTimeline,
    WarpConfig,
    WarpSchedule,
    vertices_per_warp,
    warp_lane_efficiency,
)


class TestVerticesPerWarp:
    def test_small_dimension_packing(self):
        # Section 3.1.1: d <= 8 -> 4 sources per warp, 8 < d <= 16 -> 2.
        assert vertices_per_warp(8) == 4
        assert vertices_per_warp(4) == 4
        assert vertices_per_warp(16) == 2
        assert vertices_per_warp(9) == 2

    def test_large_dimension_one_per_warp(self):
        assert vertices_per_warp(32) == 1
        assert vertices_per_warp(128) == 1

    def test_disabled_packing(self):
        assert vertices_per_warp(8, small_dim_mode=False) == 1

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            vertices_per_warp(0)


class TestLaneEfficiency:
    def test_full_dim_full_efficiency(self):
        assert warp_lane_efficiency(32) == pytest.approx(1.0)
        assert warp_lane_efficiency(128) == pytest.approx(1.0)

    def test_without_packing_small_d_wastes_lanes(self):
        # Table 8 shape: without SM, d=8 and d=32 cost the same per source,
        # i.e. efficiency scales as d/32.
        assert warp_lane_efficiency(8, small_dim_mode=False) == pytest.approx(8 / 32)
        assert warp_lane_efficiency(16, small_dim_mode=False) == pytest.approx(16 / 32)

    def test_with_packing_efficiency_improves(self):
        assert warp_lane_efficiency(8) > warp_lane_efficiency(8, small_dim_mode=False)
        assert warp_lane_efficiency(8) == pytest.approx(1.0)
        assert warp_lane_efficiency(16) == pytest.approx(1.0)

    def test_packed_speedup_ratios_match_table8_shape(self):
        # With SM the work for d=8 should be ~4x cheaper than d=32,
        # without SM they are equal: this is the Table 8 claim.
        with_sm_8 = warp_lane_efficiency(8, small_dim_mode=True)
        without_sm_8 = warp_lane_efficiency(8, small_dim_mode=False)
        assert with_sm_8 / without_sm_8 == pytest.approx(4.0)


class TestWarpConfigSchedule:
    def test_num_warps(self):
        cfg = WarpConfig(dim=8)
        assert cfg.sources_per_warp == 4
        assert cfg.num_warps(10) == 3
        assert cfg.num_warps(0) == 0

    def test_schedule_unique_sources(self):
        cfg = WarpConfig(dim=16)
        schedule = WarpSchedule.build(np.arange(11), cfg)
        assert schedule.validate_unique_sources()
        assert sum(len(g) for g in schedule.sources_by_warp) == 11

    def test_schedule_group_sizes(self):
        cfg = WarpConfig(dim=64)
        schedule = WarpSchedule.build(np.arange(5), cfg)
        assert all(len(g) == 1 for g in schedule.sources_by_warp)


class TestStreamTimeline:
    def test_serial_makespan_is_sum(self):
        tl = StreamTimeline()
        tl.record_copy(1.0)
        tl.record_kernel(2.0)
        assert tl.serial_makespan == pytest.approx(3.0)

    def test_overlap_hides_copy(self):
        tl = StreamTimeline()
        tl.record_copy(1.0)
        tl.record_kernel(2.0)        # does not wait for the copy
        assert tl.overlapped_makespan == pytest.approx(2.0)
        assert tl.overlap_savings > 0

    def test_kernel_waiting_for_copy(self):
        tl = StreamTimeline()
        tl.record_copy(1.5)
        tl.record_kernel(1.0, wait_for_copies=True)
        assert tl.overlapped_makespan == pytest.approx(2.5)

    def test_copies_serialize_with_each_other(self):
        tl = StreamTimeline()
        tl.record_copy(1.0)
        tl.record_copy(1.0)
        assert tl.overlapped_makespan == pytest.approx(2.0)

    def test_reset(self):
        tl = StreamTimeline()
        tl.record_copy(1.0)
        tl.reset()
        assert tl.serial_makespan == 0.0
        assert tl.overlapped_makespan == 0.0

    def test_empty_timeline_savings_zero(self):
        assert StreamTimeline().overlap_savings == 0.0
