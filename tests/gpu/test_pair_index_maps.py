"""Regression tests for the pair kernel's index maps.

``train_pair_kernel`` used to rebuild two Python ``dict`` global→local index
maps on every call (one per resident part, O(|part|) each, per kernel launch
per rotation).  They were replaced by :func:`repro.gpu.build_index_lookup`
NumPy arrays, cached partition-wide by
:meth:`repro.graph.partition.VertexPartition.global_to_local`.  These tests
pin that the replacement is *identical* — the old dict-based mapping is kept
here as the oracle — and that the cached arrays agree with it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu import build_index_lookup, get_backend, train_pair_kernel
from repro.gpu.kernels import sigmoid
from repro.graph.partition import contiguous_partition


def _dict_based_locals(part_a, part_b, pos_src, pos_dst):
    """The pre-refactor mapping, verbatim: per-call dicts + list comprehensions."""
    index_in_a = {int(v): i for i, v in enumerate(part_a)}
    index_in_b = {int(v): i for i, v in enumerate(part_b)}
    local_src = np.array([index_in_a[int(v)] for v in pos_src], dtype=np.int64)
    local_dst = np.array([index_in_b[int(v)] for v in pos_dst], dtype=np.int64)
    return local_src, local_dst


def _dict_based_train_pair(part_a, part_b, sub_a, sub_b, pos_src, pos_dst,
                           ns, lr, rng):
    """The pre-refactor kernel body (dict index maps + np.add.at), verbatim."""
    local_src, local_dst = _dict_based_locals(part_a, part_b, pos_src, pos_dst)
    if local_src.size:
        src_vecs = sub_a[local_src]
        dst_vecs = sub_b[local_dst]
        scores = (1.0 - sigmoid(np.einsum("ij,ij->i", src_vecs, dst_vecs))) * lr
        new_src = src_vecs + dst_vecs * scores[:, None]
        np.add.at(sub_a, local_src, dst_vecs * scores[:, None])
        np.add.at(sub_b, local_dst, new_src * scores[:, None])
    if ns > 0 and part_a.shape[0] and part_b.shape[0]:
        neg_sources = np.arange(part_a.shape[0], dtype=np.int64)
        for _ in range(ns):
            neg_targets = rng.integers(0, part_b.shape[0], size=neg_sources.shape[0])
            src_vecs = sub_a[neg_sources]
            dst_vecs = sub_b[neg_targets]
            scores = (0.0 - sigmoid(np.einsum("ij,ij->i", src_vecs, dst_vecs))) * lr
            new_src = src_vecs + dst_vecs * scores[:, None]
            np.add.at(sub_a, neg_sources, dst_vecs * scores[:, None])
            np.add.at(sub_b, neg_targets, new_src * scores[:, None])


def _random_pair(seed=0, na=150, nb=130, d=12, pairs=600):
    rng = np.random.default_rng(seed)
    # Non-contiguous, shuffled global ids exercise the lookup for real.
    ids = rng.permutation(1000)[: na + nb].astype(np.int64)
    part_a, part_b = ids[:na], ids[na:]
    sub_a = ((rng.random((na, d)) - 0.5) / d).astype(np.float32)
    sub_b = ((rng.random((nb, d)) - 0.5) / d).astype(np.float32)
    pos_src = part_a[rng.integers(0, na, pairs)]
    pos_dst = part_b[rng.integers(0, nb, pairs)]
    return part_a, part_b, sub_a, sub_b, pos_src, pos_dst


class TestIndexLookup:
    def test_lookup_matches_dict(self):
        part_a, part_b, _, _, pos_src, pos_dst = _random_pair()
        want_src, want_dst = _dict_based_locals(part_a, part_b, pos_src, pos_dst)
        got_src = build_index_lookup(part_a)[pos_src]
        got_dst = build_index_lookup(part_b)[pos_dst]
        assert np.array_equal(got_src, want_src)
        assert np.array_equal(got_dst, want_dst)

    def test_ids_outside_part_map_to_minus_one(self):
        lookup = build_index_lookup(np.array([3, 7, 5], dtype=np.int64))
        assert lookup[3] == 0 and lookup[7] == 1 and lookup[5] == 2
        assert lookup[0] == -1 and lookup[4] == -1

    def test_empty_part(self):
        assert build_index_lookup(np.zeros(0, dtype=np.int64)).shape == (0,)

    def test_explicit_size(self):
        lookup = build_index_lookup(np.array([1], dtype=np.int64), size=10)
        assert lookup.shape == (10,)
        assert lookup[1] == 0 and lookup[9] == -1


class TestPartitionGlobalToLocal:
    def test_matches_per_part_dicts(self):
        partition = contiguous_partition(97, 4)
        g2l = partition.global_to_local()
        for part in partition.parts:
            index = {int(v): i for i, v in enumerate(part)}
            for v in part:
                assert g2l[v] == index[int(v)]

    def test_cached_per_partition_instance(self):
        partition = contiguous_partition(50, 3)
        assert partition.global_to_local() is partition.global_to_local()


class TestTrainPairRegression:
    def test_identical_results_before_and_after(self):
        """Array-based kernel == the old dict-based kernel, bit for bit."""
        part_a, part_b, a0, b0, pos_src, pos_dst = _random_pair()
        old_a, old_b = a0.copy(), b0.copy()
        new_a, new_b = a0.copy(), b0.copy()
        _dict_based_train_pair(part_a, part_b, old_a, old_b, pos_src, pos_dst,
                               3, 0.035, np.random.default_rng(11))
        train_pair_kernel(part_a, part_b, new_a, new_b, pos_src, pos_dst,
                          3, 0.035, np.random.default_rng(11))
        assert np.array_equal(new_a, old_a)
        assert np.array_equal(new_b, old_b)

    def test_identical_with_prebuilt_partition_cache(self):
        """Passing the scheduler's cached partition-wide array changes nothing."""
        partition = contiguous_partition(280, 2)
        part_a, part_b = partition.parts[0], partition.parts[1]
        rng = np.random.default_rng(3)
        d = 8
        a0 = ((rng.random((part_a.shape[0], d)) - 0.5) / d).astype(np.float32)
        b0 = ((rng.random((part_b.shape[0], d)) - 0.5) / d).astype(np.float32)
        pos_src = part_a[rng.integers(0, part_a.shape[0], 500)]
        pos_dst = part_b[rng.integers(0, part_b.shape[0], 500)]
        g2l = partition.global_to_local()

        plain_a, plain_b = a0.copy(), b0.copy()
        cached_a, cached_b = a0.copy(), b0.copy()
        train_pair_kernel(part_a, part_b, plain_a, plain_b, pos_src, pos_dst,
                          2, 0.03, np.random.default_rng(5))
        train_pair_kernel(part_a, part_b, cached_a, cached_b, pos_src, pos_dst,
                          2, 0.03, np.random.default_rng(5),
                          index_a=g2l, index_b=g2l)
        assert np.array_equal(plain_a, cached_a)
        assert np.array_equal(plain_b, cached_b)

    def test_out_of_part_ids_still_raise_key_error(self):
        """The dict maps raised KeyError on foreign ids; the arrays must too
        (a silent -1 lookup would wrap to the last row and corrupt it)."""
        part_a, part_b, a0, b0, pos_src, pos_dst = _random_pair()
        # An id below part_b's max that belongs to neither part: the lookup
        # array covers it, so it resolves to -1 (not IndexError) — the guard
        # must turn that into the old KeyError.
        foreign = np.setdiff1d(np.arange(int(part_b.max())),
                               np.concatenate([part_a, part_b]))[:1]
        bad_dst = pos_dst.copy()
        bad_dst[0] = foreign[0]
        for backend in (get_backend("reference"), get_backend("vectorized")):
            with pytest.raises(KeyError):
                backend.train_pair(part_a, part_b, a0.copy(), b0.copy(),
                                   pos_src, bad_dst, 1, 0.02,
                                   np.random.default_rng(0))

    def test_foreign_ids_beyond_lookup_range_raise_key_error(self):
        """Ids past the lookup array's end (and negative ids) must raise the
        documented KeyError, not a bare IndexError from the fancy index."""
        part = np.array([0, 1, 2], dtype=np.int64)
        sub = np.zeros((3, 4), dtype=np.float32)
        for bad in (np.array([9], dtype=np.int64), np.array([-3], dtype=np.int64)):
            for backend in (get_backend("reference"), get_backend("vectorized")):
                with pytest.raises(KeyError):
                    backend.train_pair(part, part, sub.copy(), sub.copy(),
                                       np.array([1], dtype=np.int64), bad,
                                       0, 0.02, np.random.default_rng(0))

    def test_cross_part_ids_raise_with_partition_wide_lookup(self):
        """A partition-wide g2l maps every vertex somewhere, so a cross-part
        id resolves to a non-negative row of the *wrong* sub-matrix; the
        round-trip check must still raise the dict-era KeyError."""
        partition = contiguous_partition(10, 2)
        g2l = partition.global_to_local()
        part_a = partition.parts[0]
        sub = np.zeros((5, 4), dtype=np.float32)
        # pos_dst id 7 lives in part 1, but the kernel is invoked for (a, a).
        for backend in (get_backend("reference"), get_backend("vectorized")):
            with pytest.raises(KeyError):
                backend.train_pair(part_a, part_a, sub, sub,
                                   np.array([1], dtype=np.int64),
                                   np.array([7], dtype=np.int64),
                                   0, 0.02, np.random.default_rng(0),
                                   index_a=g2l, index_b=g2l)

    def test_empty_positive_pairs(self):
        part_a, part_b, a0, b0, _, _ = _random_pair()
        empty = np.zeros(0, dtype=np.int64)
        old_a, old_b = a0.copy(), b0.copy()
        new_a, new_b = a0.copy(), b0.copy()
        _dict_based_train_pair(part_a, part_b, old_a, old_b, empty, empty,
                               2, 0.02, np.random.default_rng(1))
        train_pair_kernel(part_a, part_b, new_a, new_b, empty, empty,
                          2, 0.02, np.random.default_rng(1))
        assert np.array_equal(new_a, old_a)
        assert np.array_equal(new_b, old_b)
