"""Unit tests for the logistic classifiers, metrics, and the end-to-end pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.embedding import NORMAL, embed
from repro.eval import (
    LogisticRegression,
    SGDLogisticClassifier,
    accuracy,
    auc_roc,
    average_precision,
    evaluate_embedding,
    node_classification,
    precision_recall_f1,
    roc_curve,
    run_link_prediction,
    train_test_split,
)
from repro.graph import stochastic_block_model


def _separable_data(n=400, d=5, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    y = (X @ w + 0.1 * rng.normal(size=n) > 0).astype(float)
    return X, y


class TestLogisticRegression:
    def test_learns_separable_data(self):
        X, y = _separable_data()
        model = LogisticRegression(max_iter=500)
        model.fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_proba_shape_and_range(self):
        X, y = _separable_data(100)
        model = LogisticRegression().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().decision_function(np.ones((2, 3)))

    def test_label_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((3, 2)), np.array([0, 1, 2]))
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((3, 2)), np.array([0, 1]))

    def test_loss_decreases(self):
        X, y = _separable_data(200)
        model = LogisticRegression(max_iter=100)
        model.fit(X, y)
        assert model.losses_[-1] < model.losses_[0]


class TestSGDClassifier:
    def test_learns_separable_data(self):
        X, y = _separable_data(600)
        model = SGDLogisticClassifier(epochs=30, learning_rate=0.5, seed=0)
        model.fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.9

    def test_partial_fit_streaming(self):
        X, y = _separable_data(300)
        model = SGDLogisticClassifier(learning_rate=0.5)
        for _ in range(50):
            model.partial_fit(X, y)
        assert np.mean(model.predict(X) == y) > 0.85

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SGDLogisticClassifier().decision_function(np.ones((2, 3)))


class TestMetrics:
    def test_auc_perfect(self):
        labels = np.array([0, 0, 1, 1])
        assert auc_roc(labels, np.array([0.1, 0.2, 0.8, 0.9])) == pytest.approx(1.0)

    def test_auc_inverted(self):
        labels = np.array([0, 0, 1, 1])
        assert auc_roc(labels, np.array([0.9, 0.8, 0.2, 0.1])) == pytest.approx(0.0)

    def test_auc_random_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 5000)
        scores = rng.random(5000)
        assert auc_roc(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_auc_handles_ties(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert auc_roc(labels, scores) == pytest.approx(0.5)

    def test_auc_needs_both_classes(self):
        with pytest.raises(ValueError):
            auc_roc(np.ones(5), np.random.default_rng(0).random(5))

    def test_auc_scale_invariant(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 200)
        labels[:5] = 1
        labels[5:10] = 0
        scores = rng.random(200)
        assert auc_roc(labels, scores) == pytest.approx(auc_roc(labels, scores * 10 + 3))

    def test_roc_curve_monotone(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, 100)
        labels[0] = 1
        labels[1] = 0
        scores = rng.random(100)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)

    def test_accuracy_and_prf(self):
        labels = np.array([1, 1, 0, 0])
        preds = np.array([1, 0, 0, 0])
        assert accuracy(labels, preds) == pytest.approx(0.75)
        p, r, f1 = precision_recall_f1(labels, preds)
        assert p == pytest.approx(1.0)
        assert r == pytest.approx(0.5)
        assert f1 == pytest.approx(2 / 3)

    def test_average_precision_perfect(self):
        assert average_precision(np.array([0, 1, 1]), np.array([0.1, 0.8, 0.9])) == pytest.approx(1.0)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 0]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestEndToEndPipelines:
    def test_link_prediction_on_community_graph(self, community_graph):
        result = run_link_prediction(
            community_graph,
            lambda tg: embed(tg, NORMAL.scaled(0.1, dim=16)).embedding,
            seed=0,
        )
        assert 0.5 < result.auc <= 1.0
        assert result.num_test_edges > 0
        assert result.embed_seconds > 0
        assert "AUCROC(%)" in result.as_row()

    def test_evaluate_embedding_with_sgd_classifier(self, community_graph):
        split = train_test_split(community_graph, seed=0)
        emb = embed(split.train_graph, NORMAL.scaled(0.1, dim=16)).embedding
        result = evaluate_embedding(emb, split, classifier="sgd", seed=0)
        assert 0.4 < result.auc <= 1.0
        assert result.classifier == "sgd"

    def test_unknown_classifier_raises(self, community_graph):
        split = train_test_split(community_graph, seed=0)
        emb = np.random.default_rng(0).random((community_graph.num_vertices, 4))
        with pytest.raises(ValueError):
            evaluate_embedding(emb, split, classifier="svm")

    def test_random_embedding_scores_near_chance(self, community_graph):
        split = train_test_split(community_graph, seed=0)
        emb = np.random.default_rng(0).random((community_graph.num_vertices, 16))
        result = evaluate_embedding(emb, split, seed=0)
        assert result.auc < 0.7

    def test_undersized_embedding_raises(self, community_graph):
        split = train_test_split(community_graph, seed=0)
        with pytest.raises(ValueError):
            evaluate_embedding(np.ones((3, 4)), split)


class TestNodeClassification:
    def test_recovers_sbm_blocks(self):
        g = stochastic_block_model([70, 70, 70], p_in=0.2, p_out=0.01, seed=2)
        # 0.2 epoch scale clears the accuracy bar comfortably with either
        # kernel backend (0.1 was marginal under the vectorized default).
        emb = embed(g, NORMAL.scaled(0.2, dim=16)).embedding
        labels = np.repeat(np.arange(3), 70)
        result = node_classification(emb, labels, train_fraction=0.5, seed=0)
        assert result.num_classes == 3
        assert result.accuracy > 1.0 / 3.0 + 0.15
        assert 0.0 <= result.macro_f1 <= 1.0
        assert 0.0 <= result.micro_f1 <= 1.0

    def test_validation(self):
        emb = np.ones((10, 4))
        with pytest.raises(ValueError):
            node_classification(emb, np.zeros(5))
        with pytest.raises(ValueError):
            node_classification(emb, np.zeros(10), train_fraction=1.5)
