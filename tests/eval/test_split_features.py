"""Unit tests for the link-prediction split and feature construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import (
    EDGE_OPERATORS,
    build_dataset,
    edge_features,
    sample_negative_edges,
    train_test_split,
)
from repro.graph import CSRGraph, powerlaw_cluster


class TestTrainTestSplit:
    def test_default_80_20(self, small_power_graph):
        split = train_test_split(small_power_graph, seed=0)
        total = small_power_graph.num_undirected_edges
        assert split.num_train_edges == round(0.8 * total)
        assert split.num_test_edges <= total - split.num_train_edges

    def test_train_graph_contains_only_train_edges(self, small_power_graph):
        split = train_test_split(small_power_graph, seed=0)
        assert split.train_graph.num_undirected_edges == split.num_train_edges
        for u, v in split.train_edges[:50]:
            assert split.train_graph.has_edge(int(u), int(v))

    def test_test_edges_not_in_train_graph(self, small_power_graph):
        split = train_test_split(small_power_graph, seed=0)
        for u, v in split.test_edges:
            assert not split.train_graph.has_edge(int(u), int(v))

    def test_test_endpoints_active_in_train(self, small_power_graph):
        """The paper's V_test ⊆ V_train guarantee."""
        split = train_test_split(small_power_graph, seed=0)
        deg = split.train_graph.degrees
        assert np.all(deg[split.test_edges[:, 0]] > 0)
        assert np.all(deg[split.test_edges[:, 1]] > 0)

    def test_custom_fraction(self, small_power_graph):
        split = train_test_split(small_power_graph, train_fraction=0.5, seed=0)
        assert split.num_train_edges == round(0.5 * small_power_graph.num_undirected_edges)

    def test_invalid_fraction(self, small_power_graph):
        with pytest.raises(ValueError):
            train_test_split(small_power_graph, train_fraction=1.5)

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            train_test_split(CSRGraph.empty(5))

    def test_different_seeds_differ(self, small_power_graph):
        a = train_test_split(small_power_graph, seed=0)
        b = train_test_split(small_power_graph, seed=1)
        assert not np.array_equal(a.train_edges, b.train_edges)


class TestNegativeEdgeSampling:
    def test_samples_are_non_edges(self, small_power_graph):
        negatives = sample_negative_edges(small_power_graph, 200, seed=0)
        assert negatives.shape == (200, 2)
        for u, v in negatives:
            assert not small_power_graph.has_edge(int(u), int(v))
            assert u != v

    def test_no_duplicates(self, small_power_graph):
        negatives = sample_negative_edges(small_power_graph, 300, seed=0)
        keys = set(map(tuple, negatives.tolist()))
        assert len(keys) == 300

    def test_exclude_graph_respected(self, small_power_graph):
        extra = CSRGraph.from_edges(small_power_graph.num_vertices,
                                    sample_negative_edges(small_power_graph, 50, seed=3))
        negatives = sample_negative_edges(small_power_graph, 100, seed=4, exclude=extra)
        for u, v in negatives:
            assert not extra.has_edge(int(u), int(v))

    def test_active_vertices_only(self):
        g = CSRGraph.from_edges(10, [(0, 1), (1, 2), (2, 3)])
        negatives = sample_negative_edges(g, 3, seed=0, restrict_to_active=True)
        active = {0, 1, 2, 3}
        assert set(negatives.ravel().tolist()).issubset(active)

    def test_dense_graph_raises(self):
        from repro.graph import complete

        g = complete(6)
        with pytest.raises(RuntimeError):
            sample_negative_edges(g, 10, seed=0)


class TestEdgeFeatures:
    def test_hadamard(self):
        emb = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])
        feats = edge_features(emb, np.array([[0, 1], [1, 2]]))
        assert np.allclose(feats, [[3.0, 8.0], [15.0, 24.0]])

    def test_all_operators_produce_correct_shape(self):
        emb = np.random.default_rng(0).random((10, 4))
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        for op in EDGE_OPERATORS:
            feats = edge_features(emb, pairs, operator=op)
            assert feats.shape == (3, 4)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            edge_features(np.ones((3, 2)), np.array([[0, 1]]), operator="xor")

    def test_bad_pairs_shape(self):
        with pytest.raises(ValueError):
            edge_features(np.ones((3, 2)), np.array([0, 1, 2]))

    def test_build_dataset_balanced_labels(self):
        emb = np.random.default_rng(0).random((20, 4))
        pos = np.array([[0, 1], [2, 3]])
        neg = np.array([[4, 5], [6, 7], [8, 9]])
        X, y = build_dataset(emb, pos, neg, shuffle=False)
        assert X.shape == (5, 4)
        assert y.tolist() == [1, 1, 0, 0, 0]

    def test_build_dataset_shuffles(self):
        emb = np.random.default_rng(0).random((30, 4))
        pos = np.column_stack([np.arange(10), np.arange(10, 20)])
        neg = np.column_stack([np.arange(20, 30), np.arange(0, 10)])
        _, y_noshuffle = build_dataset(emb, pos, neg, shuffle=False)
        _, y_shuffle = build_dataset(emb, pos, neg, shuffle=True, seed=1)
        assert not np.array_equal(y_noshuffle, y_shuffle)
        assert y_shuffle.sum() == 10
