"""Tests for the dataset registry, table formatting, and experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.harness import (
    ALL_DATASETS,
    LARGE_DATASETS,
    MEDIUM_DATASETS,
    ExperimentRunner,
    dataset_names,
    default_tools,
    format_table,
    load_dataset,
    paper_table2_rows,
)


class TestDatasetRegistry:
    def test_all_twelve_paper_graphs_present(self):
        assert len(MEDIUM_DATASETS) == 8
        assert len(LARGE_DATASETS) == 4
        assert len(ALL_DATASETS) == 12
        names = dataset_names()
        assert "com-orkut" in names and "com-friendster" in names

    def test_scale_filter(self):
        assert len(dataset_names(scale="medium")) == 8
        assert len(dataset_names(scale="large")) == 4

    def test_load_by_name(self):
        g = load_dataset("com-dblp", seed=0)
        assert g.name == "com-dblp"
        assert g.num_vertices > 100
        assert g.num_undirected_edges > g.num_vertices

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("com-myspace")

    def test_twin_determinism(self):
        a = load_dataset("youtube", seed=3)
        b = load_dataset("youtube", seed=3)
        assert np.array_equal(a.adj, b.adj)

    def test_density_ordering_tracks_paper(self):
        """Denser paper graphs get denser twins (relative ordering preserved)."""
        dblp = load_dataset("com-dblp")
        orkut = load_dataset("com-orkut")
        assert orkut.density > dblp.density

    def test_large_twins_bigger_than_medium(self):
        medium = load_dataset("com-dblp")
        large = load_dataset("com-friendster")
        assert large.num_vertices > medium.num_vertices

    def test_table2_rows(self):
        rows = paper_table2_rows()
        assert len(rows) == 12
        assert {"Graph", "paper |V|", "twin |V|", "twin density"}.issubset(rows[0].keys())


class TestTableFormatting:
    def test_basic_rendering(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}]
        out = format_table(rows, title="demo")
        assert "demo" in out
        assert "a" in out and "b" in out
        assert "10" in out

    def test_empty_rows(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in out
        assert "a" not in out.splitlines()[0]


class TestExperimentRunner:
    def test_runs_selected_tools(self):
        graph = load_dataset("com-amazon", seed=0)
        tools = default_tools(dim=16, epoch_scale=0.02, seed=0)
        runner = ExperimentRunner(tools=tools, baseline_tool="Verse", seed=0)
        runs = runner.run_graph(graph, tools=["Verse", "Gosh-fast"])
        assert len(runs) == 2
        by_tool = {r.tool: r for r in runs}
        assert by_tool["Verse"].error is None
        assert by_tool["Gosh-fast"].error is None
        assert 0.0 < by_tool["Gosh-fast"].auc <= 1.0
        # speedups are relative to Verse
        assert by_tool["Verse"].speedup_vs_baseline == pytest.approx(1.0)
        assert by_tool["Gosh-fast"].speedup_vs_baseline > 1.0

    def test_rows_format(self):
        graph = load_dataset("com-amazon", seed=0)
        tools = default_tools(dim=16, epoch_scale=0.02, seed=0)
        runner = ExperimentRunner(tools=tools, seed=0)
        runner.run_graph(graph, tools=["Verse"])
        rows = runner.rows()
        assert rows and {"Graph", "Algorithm", "Time (s)", "AUCROC (%)"}.issubset(rows[0])

    def test_device_memory_error_reported_as_row(self):
        from repro.gpu import DeviceSpec, SimulatedDevice

        graph = load_dataset("com-amazon", seed=0)
        tiny = SimulatedDevice(spec=DeviceSpec(name="tiny", memory_bytes=4 * 1024))
        tools = default_tools(dim=16, epoch_scale=0.02, device=tiny, seed=0)
        runner = ExperimentRunner(tools=tools, seed=0)
        runs = runner.run_graph(graph, tools=["Graphvite"])
        assert runs[0].error is not None
        assert runs[0].auc is None


class TestRegistryBackedSuite:
    def test_default_tools_matches_registry(self):
        from repro.api import available_tools

        tools = default_tools(dim=8, epoch_scale=0.02)
        assert len(tools) == len(available_tools())
        assert set(tools) == {"Verse", "Mile", "Graphvite", "Gosh-fast",
                              "Gosh-normal", "Gosh-slow", "Gosh-NoCoarse"}

    def test_display_name_collision_falls_back_to_registry_name(self):
        from repro.api import register_tool, unregister_tool
        from repro.api.tools import GoshTool

        register_tool("gosh-fast-v2", lambda **kw: GoshTool("fast", **kw))
        try:
            tools = default_tools(dim=8, epoch_scale=0.02)
            # Both fast variants survive: the second keeps its registry name.
            assert "Gosh-fast" in tools and "gosh-fast-v2" in tools
        finally:
            unregister_tool("gosh-fast-v2")

    def test_runner_retains_slim_results(self):
        graph = load_dataset("com-amazon", seed=0)
        runner = ExperimentRunner(tools=default_tools(dim=8, epoch_scale=0.02), seed=0)
        runs = runner.run_graph(graph, tools=["Gosh-fast"])
        retained = runs[0].result
        assert retained is not None
        assert retained.embedding.size == 0 and retained.raw is None
        assert retained.timings["training"] > 0
