"""Property tests for the vectorized part-pair sampler (hypothesis).

Random small graphs and random two-part splits; the invariants are the
paper's sample-pool contract (Section 3.3): sources come from part A,
destinations from part B, every pair is an edge, eligible vertices
contribute exactly ``B`` pairs and ineligible ones none — and the vectorized
backend agrees bit-for-bit with the reference loop under a shared seed.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CSRGraph, PositiveSampler


@st.composite
def graph_and_split(draw):
    """A small undirected graph plus a random (possibly empty) vertex split."""
    n = draw(st.integers(min_value=2, max_value=24))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=0, max_size=60))
    graph = CSRGraph.from_edges(n, edges, undirected=True)
    in_b = draw(st.lists(st.booleans(), min_size=n, max_size=n))
    mask_b = np.array(in_b, dtype=bool)
    part_a = np.flatnonzero(~mask_b).astype(np.int64)
    return graph, part_a, mask_b


@settings(max_examples=60, deadline=None)
@given(data=graph_and_split(),
       B=st.integers(min_value=0, max_value=6),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_membership_and_count_invariants(data, B, seed):
    graph, part_a, mask_b = data
    sampler = PositiveSampler(graph, seed=seed, sampler_backend="vectorized")
    src, dst = sampler.sample_pairs_for_part(part_a, mask_b, B)

    assert src.shape == dst.shape
    assert src.dtype == dst.dtype == np.int64

    in_a = np.zeros(graph.num_vertices, dtype=bool)
    in_a[part_a] = True
    assert np.all(in_a[src])          # every src is in part A
    assert np.all(mask_b[dst])        # every dst is in part B

    counts = np.bincount(src, minlength=graph.num_vertices)
    for v in part_a:
        nbrs = graph.neighbors(int(v))
        eligible = nbrs.shape[0] > 0 and bool(mask_b[nbrs].any())
        assert counts[v] == (B if eligible else 0)

    for s, d in zip(src, dst):
        assert graph.has_edge(int(s), int(d))


@settings(max_examples=60, deadline=None)
@given(data=graph_and_split(),
       B=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_vectorized_matches_reference_oracle(data, B, seed):
    graph, part_a, mask_b = data
    draws = {}
    for backend in ("reference", "vectorized"):
        sampler = PositiveSampler(graph, seed=seed, sampler_backend=backend)
        draws[backend] = sampler.sample_pairs_for_part(part_a, mask_b, B)
    assert np.array_equal(draws["reference"][0], draws["vectorized"][0])
    assert np.array_equal(draws["reference"][1], draws["vectorized"][1])


@settings(max_examples=40, deadline=None)
@given(B=st.integers(min_value=0, max_value=6),
       n=st.integers(min_value=1, max_value=16),
       seed=st.integers(min_value=0, max_value=2**16))
def test_empty_part_and_edgeless_graph(B, n, seed):
    graph = CSRGraph.empty(n)
    sampler = PositiveSampler(graph, seed=seed, sampler_backend="vectorized")
    # Edgeless graph: nothing is eligible no matter the split.
    src, dst = sampler.sample_pairs_for_part(
        np.arange(n, dtype=np.int64), np.ones(n, dtype=bool), B)
    assert src.shape == dst.shape == (0,)
    # Empty part A: no sources to draw for.
    src, dst = sampler.sample_pairs_for_part(
        np.zeros(0, dtype=np.int64), np.ones(n, dtype=bool), B)
    assert src.shape == dst.shape == (0,)
    # Empty part B: nothing is eligible.
    src, dst = sampler.sample_pairs_for_part(
        np.arange(n, dtype=np.int64), np.zeros(n, dtype=bool), B)
    assert src.shape == dst.shape == (0,)
