"""Property-based tests for coarsening invariants (Section 3.2)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.coarsening import (
    CoarseningHierarchy,
    coarsen_graph,
    collapse_once,
    multi_edge_collapse,
    parallel_collapse_once,
    parallel_multi_edge_collapse,
)
from repro.graph import CSRGraph


@st.composite
def random_graphs(draw, min_vertices=5, max_vertices=60):
    n = draw(st.integers(min_vertices, max_vertices))
    m = draw(st.integers(n, 4 * n))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    return CSRGraph.from_edges(n, np.column_stack([src, dst]), name=f"rand{seed}")


class TestCollapseInvariants:
    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_every_vertex_assigned_sequential(self, graph):
        mapping, k = collapse_once(graph)
        assert np.all(mapping >= 0)
        assert np.all(mapping < k)
        assert k >= 1

    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_every_vertex_assigned_parallel(self, graph):
        mapping, k = parallel_collapse_once(graph)
        assert np.all(mapping >= 0)
        assert np.all(mapping < k)
        # every cluster id in range is used (compaction invariant)
        assert set(np.unique(mapping).tolist()) == set(range(k))

    @given(random_graphs())
    @settings(max_examples=50, deadline=None)
    def test_never_grows(self, graph):
        _, k_seq = collapse_once(graph)
        _, k_par = parallel_collapse_once(graph)
        assert k_seq <= graph.num_vertices
        assert k_par <= graph.num_vertices

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_coarse_graph_edge_projection_sound(self, graph):
        mapping, k = collapse_once(graph)
        coarse = coarsen_graph(graph, mapping, k)
        assert coarse.num_vertices == k
        # no self loops and every coarse arc maps back to >= 1 fine arc
        arcs = coarse.edge_array()
        if arcs.size:
            assert np.all(arcs[:, 0] != arcs[:, 1])
        fine_arcs = graph.edge_array()
        coarse_pairs = {(int(mapping[u]), int(mapping[v])) for u, v in fine_arcs
                        if mapping[u] != mapping[v]}
        for cu, cv in arcs:
            assert (int(cu), int(cv)) in coarse_pairs

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_multilevel_hierarchy_is_valid(self, graph):
        result = multi_edge_collapse(graph, threshold=5, max_levels=10)
        hierarchy = CoarseningHierarchy.from_result(result)
        hierarchy.validate()
        sizes = result.level_sizes
        assert all(sizes[i] > sizes[i + 1] for i in range(len(sizes) - 1))

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_parallel_multilevel_hierarchy_is_valid(self, graph):
        result = parallel_multi_edge_collapse(graph, threshold=5, max_levels=10)
        CoarseningHierarchy.from_result(result).validate()

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_expansion_preserves_rows(self, graph):
        result = parallel_multi_edge_collapse(graph, threshold=5, max_levels=10)
        hierarchy = CoarseningHierarchy.from_result(result)
        rng = np.random.default_rng(0)
        emb = rng.random((hierarchy.coarsest().num_vertices, 4))
        full = hierarchy.project_to_original(hierarchy.num_levels - 1, emb)
        assert full.shape == (graph.num_vertices, 4)
        # every fine row equals its super vertex's row
        composed = hierarchy.composed_mapping(hierarchy.num_levels - 1)
        assert np.allclose(full, emb[composed])
