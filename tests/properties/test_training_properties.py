"""Property-based tests for epoch distribution, kernels, metrics, and rotations."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.embedding import distribute_epochs, per_epoch_learning_rate
from repro.eval.metrics import auc_roc
from repro.gpu import get_backend, sigmoid, update_embedding_pair
from repro.graph import powerlaw_cluster
from repro.graph.samplers import NegativeSampler, PositiveSampler
from repro.large import inside_out_order, validate_rotation_cover


class TestEpochDistributionProperties:
    @given(st.integers(1, 5000), st.integers(1, 16), st.floats(0.0, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_sum_and_nonnegativity(self, total, levels, p):
        epochs = distribute_epochs(total, levels, p)
        assert sum(epochs) == total
        assert all(e >= 0 for e in epochs)
        assert len(epochs) == levels

    @given(st.integers(16, 5000), st.integers(2, 12))
    @settings(max_examples=80, deadline=None)
    def test_geometric_part_weights_coarse_levels(self, total, levels):
        epochs = distribute_epochs(total, levels, 0.0)
        # coarsest gets the most
        assert epochs[-1] == max(epochs)

    @given(st.floats(1e-4, 1.0), st.integers(0, 2000), st.integers(1, 2000))
    @settings(max_examples=100, deadline=None)
    def test_learning_rate_bounded(self, lr, epoch, level_epochs):
        value = per_epoch_learning_rate(lr, epoch, level_epochs)
        assert 0 < value <= lr + 1e-12


class TestUpdateRuleProperties:
    @given(
        st.integers(2, 32),
        st.floats(0.001, 0.5),
        st.booleans(),
        st.integers(0, 10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_update_moves_dot_toward_label(self, dim, lr, positive, seed):
        rng = np.random.default_rng(seed)
        v = rng.normal(scale=0.3, size=dim)
        s = rng.normal(scale=0.3, size=dim)
        before = float(v @ s)
        new_v, new_s = update_embedding_pair(v, s, positive, lr)
        after = float(new_v @ new_s)
        if positive:
            assert after >= before - 1e-9
        else:
            # negative updates push the pair apart unless already far apart
            assert after <= before + max(1e-9, abs(before) * lr)

    @given(st.floats(-30, 30))
    @settings(max_examples=100, deadline=None)
    def test_sigmoid_bounds_and_symmetry(self, x):
        y = float(sigmoid(x))
        assert 0.0 <= y <= 1.0
        assert abs(y + float(sigmoid(-x)) - 1.0) < 1e-9


class TestAUCProperties:
    @given(st.integers(2, 300), st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_auc_invariant_to_monotone_transform(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, n)
        labels[0], labels[1] = 0, 1  # ensure both classes
        scores = rng.normal(size=n)
        a = auc_roc(labels, scores)
        b = auc_roc(labels, 5 * scores + 2)
        c = auc_roc(labels, np.tanh(scores))
        assert abs(a - b) < 1e-9
        assert abs(a - c) < 1e-9
        assert 0.0 <= a <= 1.0

    @given(st.integers(2, 300), st.integers(0, 1000))
    @settings(max_examples=80, deadline=None)
    def test_auc_complement_when_scores_negated(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, n)
        labels[0], labels[1] = 0, 1
        scores = rng.normal(size=n)
        assert abs(auc_roc(labels, scores) + auc_roc(labels, -scores) - 1.0) < 1e-9


class TestRotationProperties:
    @given(st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_inside_out_is_a_complete_cover(self, k):
        order = inside_out_order(k)
        assert validate_rotation_cover(order, k)
        assert len(order) == k * (k + 1) // 2

    @given(st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_inside_out_follows_paper_recurrence(self, k):
        """The order is exactly the paper's recurrence from (0, 0)."""
        order = inside_out_order(k)
        assert order[0] == (0, 0)
        for (a1, b1), (a2, b2) in zip(order, order[1:]):
            if a1 > b1:
                assert (a2, b2) == (a1, b1 + 1)
            else:
                assert (a2, b2) == (a1 + 1, 0)


class TestNegativeSamplerProperties:
    @given(st.integers(1, 5000), st.integers(0, 64), st.integers(0, 8),
           st.integers(0, 10_000))
    @settings(max_examples=120, deadline=None)
    def test_shape_and_range(self, num_vertices, rows, ns, seed):
        sampler = NegativeSampler(num_vertices, seed=seed)
        out = sampler.sample((rows, ns))
        assert out.shape == (rows, ns)
        if out.size:
            assert out.min() >= 0
            assert out.max() < num_vertices

    @given(st.integers(1, 1000), st.integers(1, 200), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_flat_shape_and_range(self, num_vertices, count, seed):
        out = NegativeSampler(num_vertices, seed=seed).sample(count)
        assert out.shape == (count,)
        assert out.min() >= 0 and out.max() < num_vertices

    @given(st.integers(2, 500), st.integers(1, 100), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_restrict_to_only_yields_members(self, num_vertices, count, seed):
        rng = np.random.default_rng(seed)
        allowed = rng.choice(num_vertices, size=max(1, num_vertices // 3), replace=False)
        out = NegativeSampler(num_vertices, seed=seed).sample(count, restrict_to=allowed)
        assert np.isin(out, allowed).all()


class TestEpochRowBoundsProperties:
    """One trainer epoch must never write rows outside the graph's vertex range.

    The embedding matrix is over-allocated with guard rows filled with a
    sentinel; after a full epoch through either backend the guard rows must
    be bit-identical (no out-of-range write) and every in-range row finite.
    """

    @given(st.integers(20, 120), st.integers(2, 16), st.integers(0, 5),
           st.sampled_from(["reference", "vectorized"]),
           st.sampled_from(["optimized", "naive"]),
           st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_epoch_stays_inside_vertex_range(self, n, dim, ns, backend_name,
                                             kernel, seed):
        graph = powerlaw_cluster(n, m=2, seed=seed % 17)
        rng = np.random.default_rng(seed)
        guard_rows = 7
        sentinel = np.float32(123.25)
        embedding = ((rng.random((n + guard_rows, dim)) - 0.5) / dim).astype(np.float32)
        embedding[n:] = sentinel

        sources = np.arange(n, dtype=np.int64)
        positives = PositiveSampler(graph, seed=rng).sample(sources)
        negatives = NegativeSampler(n, seed=rng).sample((n, ns))
        get_backend(backend_name).train_epoch(
            embedding, sources, positives, negatives, 0.05, kernel=kernel)

        assert np.all(embedding[n:] == sentinel), "guard rows were written"
        assert np.all(np.isfinite(embedding[:n]))
