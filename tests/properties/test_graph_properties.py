"""Property-based tests (hypothesis) for the graph substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import CSRGraph, coo_to_csr, contiguous_partition, validate_csr
from repro.graph.samplers import AliasTable


@st.composite
def edge_lists(draw, max_vertices=40, max_edges=120):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return n, edges


class TestCSRProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_from_edges_always_valid_csr(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges)
        validate_csr(g.xadj, g.adj, n)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_undirected_symmetry_invariant(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges, undirected=True)
        arcs = g.edge_array()
        for u, v in arcs:
            assert g.has_edge(int(v), int(u))

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_equals_arc_count(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges)
        assert int(g.degrees.sum()) == g.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_edge_array_round_trip(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges)
        rebuilt = CSRGraph.from_edges(n, g.edge_array(), undirected=False)
        assert np.array_equal(rebuilt.xadj, g.xadj)
        assert np.array_equal(rebuilt.adj, g.adj)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_no_self_loops_after_construction(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges, drop_self_loops=True)
        arcs = g.edge_array()
        if arcs.size:
            assert np.all(arcs[:, 0] != arcs[:, 1])

    @given(
        st.integers(min_value=2, max_value=500),
        st.integers(min_value=0, max_value=300),
    )
    @settings(max_examples=50, deadline=None)
    def test_coo_to_csr_preserves_arc_count(self, n, m):
        rng = np.random.default_rng(m)
        src = rng.integers(0, n, size=m)
        dst = rng.integers(0, n, size=m)
        xadj, adj = coo_to_csr(n, src, dst)
        assert xadj[-1] == m
        assert adj.shape[0] == m


class TestPartitionProperties:
    @given(st.integers(1, 2000), st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_contiguous_partition_covers_exactly_once(self, n, k):
        p = contiguous_partition(n, k)
        p.validate()
        assert sum(len(part) for part in p.parts) == n
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1


class TestAliasTableProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_alias_table_empirical_distribution(self, weights):
        weights = np.asarray(weights)
        table = AliasTable.from_weights(weights)
        rng = np.random.default_rng(0)
        samples = table.sample(20_000, rng)
        assert samples.min() >= 0 and samples.max() < weights.shape[0]
        # the most-weighted item must be sampled at least as often as the least
        counts = np.bincount(samples, minlength=weights.shape[0])
        if weights.shape[0] >= 2 and weights.max() > 5 * weights.min():
            assert counts[int(np.argmax(weights))] >= counts[int(np.argmin(weights))]
