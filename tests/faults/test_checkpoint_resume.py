"""Checkpoint/resume golden tests: recovery must be bit-exact.

The contract under test is the strongest one a checkpointed trainer can
offer: kill a run at a scripted injection point, resume it from the store,
and the final embedding is **bit-identical** (same float32 words, compared
with ``np.array_equal``) to the run that was never interrupted.  This holds
because every random draw in the pipeline is keyed by content — (seed,
stream, rotation, pair) for the partitioned engine, seed+level for the
in-memory trainer — never by call order or wall clock.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import get_tool
from repro.embedding import CheckpointMismatchError, TrainingInterrupted
from repro.embedding.checkpoint import CHECKPOINT_SUFFIX, latest_checkpoint
from repro.faults import FAULTS, InjectedFault
from repro.gpu.device import DeviceMemoryError
from repro.graph import powerlaw_cluster
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.store import EmbeddingStore


def tiny_device(bytes_: int) -> SimulatedDevice:
    """A device small enough to force the partitioned large-graph engine."""
    return SimulatedDevice(
        spec=DeviceSpec(name=f"tiny-{bytes_}", memory_bytes=bytes_))


@pytest.fixture(autouse=True)
def clean_registry():
    """Tests share the FAULTS singleton; never leak an armed point."""
    FAULTS.reset()
    yield
    FAULTS.reset()


#: Small enough to run the partitioned engine at K>1 with several rotations,
#: large enough that a mid-level kill point actually lands mid-level.
DEVICE_BYTES = 20_000
DIM = 16
EPOCH_SCALE = 0.2


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(400, m=3, seed=1)


@pytest.fixture(scope="module")
def golden(graph):
    """The uninterrupted, uncheckpointed run every scenario must match."""
    result = make_tool().embed(graph)
    large = result.stats["large_graph"]
    # Self-check the scenario is non-trivial: partitioned levels with
    # multiple parts and rotations, so kill points land mid-schedule.
    assert large and max(large["parts_per_level"]) > 1
    assert large["rotations"] >= 4
    return result.embedding


def make_tool():
    return get_tool("gosh-normal", dim=DIM, epoch_scale=EPOCH_SCALE,
                    device=tiny_device(DEVICE_BYTES), seed=0)


def checkpointed_tool(store, *, resume=True, every=1, stop_event=None):
    tool = make_tool()
    tool.configure_checkpointing(store, every_rotations=every,
                                 auto_resume=resume, stop_event=stop_event)
    return tool


class TestUninterruptedParity:
    def test_checkpointing_does_not_change_bits(self, graph, golden, tmp_path):
        """Snapshotting (sync_to_host + store writes) must be bit-neutral."""
        store = EmbeddingStore(tmp_path)
        result = checkpointed_tool(store).embed(graph)
        assert result.stats["checkpoints_saved"] > 0
        assert np.array_equal(golden, result.embedding)

    def test_checkpoints_live_in_ckpt_lineage_and_are_never_served(
            self, graph, tmp_path):
        store = EmbeddingStore(tmp_path)
        tool = checkpointed_tool(store)
        tool.embed(graph)
        fp = graph.fingerprint()
        assert store.latest(fp, tool.name) is None  # final result not saved here
        ckpt = store.latest(fp, tool.name + CHECKPOINT_SUFFIX)
        assert ckpt is not None
        assert "checkpoint" in ckpt.manifest["metadata"]

    def test_keep_bounds_checkpoint_versions(self, graph, tmp_path):
        store = EmbeddingStore(tmp_path)
        tool = make_tool()
        tool.configure_checkpointing(store, every_rotations=1, keep=2)
        result = tool.embed(graph)
        assert result.stats["checkpoints_saved"] > 2
        entries = store.list(graph.fingerprint(), tool.name + CHECKPOINT_SUFFIX)
        assert len(entries) <= 2

    def test_sweep_checkpoints_clears_the_lineage(self, graph, tmp_path):
        store = EmbeddingStore(tmp_path)
        tool = checkpointed_tool(store)
        tool.embed(graph)
        assert tool.sweep_checkpoints(graph.fingerprint()) > 0
        assert store.latest(graph.fingerprint(),
                            tool.name + CHECKPOINT_SUFFIX) is None


class TestKillAndResume:
    """The acceptance gate: >= 2 distinct kill points, ids AND bits equal."""

    @pytest.mark.parametrize("spec", [
        "rotation-boundary:2",   # mid-level, partitioned engine
        "rotation-boundary:5",   # later rotation, possibly a later level
        "level-boundary:1",      # right after a level expanded
        "pool-producer:7",       # mid-rotation, producer side
    ])
    def test_resume_is_bit_exact(self, graph, golden, tmp_path, spec):
        store = EmbeddingStore(tmp_path)
        crashed = checkpointed_tool(store)
        with pytest.raises(InjectedFault):
            with FAULTS.armed(spec):
                crashed.embed(graph)
        # A fresh process: new tool instance, same store.
        resumed_result = checkpointed_tool(store).embed(graph)
        assert np.array_equal(golden, resumed_result.embedding), \
            f"resume after kill at {spec} is not bit-exact"

    def test_resume_actually_skips_work(self, graph, tmp_path):
        """Resume must restart from the cursor, not silently recompute."""
        store = EmbeddingStore(tmp_path)
        with pytest.raises(InjectedFault):
            with FAULTS.armed("rotation-boundary:3"):
                checkpointed_tool(store).embed(graph)
        result = checkpointed_tool(store).embed(graph)
        resumed = result.stats["resumed_from"]
        assert resumed is not None and resumed["rotation"] > 0
        # The raw run records the skip: the resumed level starts its schedule
        # at the cursor's rotation instead of 0.
        assert any(s.start_rotation == resumed["rotation"]
                   for s in result.raw.large_graph_stats)

    def test_crash_before_any_checkpoint_restarts_clean(self, graph, golden,
                                                        tmp_path):
        """Dying before the first *committed* snapshot falls back to a fresh
        run.  The first commit itself is the earliest such point: in-memory
        coarse levels checkpoint at their boundaries before any pool exists,
        so ``store-commit:1`` kills the very first save mid-staging."""
        store = EmbeddingStore(tmp_path)
        with pytest.raises(InjectedFault):
            with FAULTS.armed("store-commit:1"):
                checkpointed_tool(store).embed(graph)
        assert latest_checkpoint(
            store, graph.fingerprint(), "gosh-normal",
            metadata=make_tool().config.metadata_echo()) is None
        result = checkpointed_tool(store).embed(graph)
        assert result.stats.get("resumed_from") is None
        assert np.array_equal(golden, result.embedding)

    def test_store_commit_crash_leaves_resumable_older_checkpoint(
            self, graph, golden, tmp_path):
        """Dying *inside* a checkpoint commit must not poison the lineage."""
        store = EmbeddingStore(tmp_path)
        with pytest.raises(InjectedFault):
            with FAULTS.armed("store-commit:3"):
                checkpointed_tool(store).embed(graph)
        # The third commit died mid-staging: its .tmp-* debris is ignored,
        # the second checkpoint resumes the run.
        result = checkpointed_tool(store).embed(graph)
        assert result.stats["resumed_from"]["version"] >= 1
        assert np.array_equal(golden, result.embedding)

    def test_resume_checkpoint_pinned_to_config_hash(self, graph, tmp_path):
        """A checkpoint from different settings must never be resumed."""
        store = EmbeddingStore(tmp_path)
        with pytest.raises(InjectedFault):
            with FAULTS.armed("rotation-boundary:2"):
                checkpointed_tool(store).embed(graph)
        other = get_tool("gosh-normal", dim=DIM, epoch_scale=EPOCH_SCALE,
                         device=tiny_device(DEVICE_BYTES), seed=99)
        assert latest_checkpoint(
            store, graph.fingerprint(), other.name,
            metadata=other.config.metadata_echo()) is None


class TestGracefulStop:
    def test_stop_event_checkpoints_and_interrupts(self, graph, golden,
                                                   tmp_path):
        """The SIGTERM path: stop at the next boundary, then resume bit-exact."""
        store = EmbeddingStore(tmp_path)
        stop = threading.Event()
        stop.set()  # request the stop before training: first boundary wins
        tool = checkpointed_tool(store, stop_event=stop)
        with pytest.raises(TrainingInterrupted) as err:
            tool.embed(graph)
        assert err.value.entry is not None
        resumed = checkpointed_tool(store).embed(graph)
        assert resumed.stats["resumed_from"] is not None
        assert np.array_equal(golden, resumed.embedding)


class TestMismatchGuards:
    def test_in_memory_level_rejects_rotation_cursor(self, graph, tmp_path):
        """A cursor inside a partitioned level cannot resume on a big device."""
        store = EmbeddingStore(tmp_path)
        with pytest.raises(InjectedFault):
            with FAULTS.armed("rotation-boundary:2"):
                checkpointed_tool(store).embed(graph)
        fp = graph.fingerprint()
        small = make_tool()
        resume = latest_checkpoint(store, fp, small.name,
                                   metadata=small.config.metadata_echo())
        assert resume is not None and resume.rotation > 0
        # Same config hash, roomy device: the resumed level now fits in
        # memory, which would change the draw schedule — must refuse.
        from repro.embedding import GoshEmbedder
        from repro.gpu import SimulatedDevice

        embedder = GoshEmbedder(small.config, device=SimulatedDevice())
        with pytest.raises(CheckpointMismatchError):
            embedder.embed(graph, resume=resume)
