"""The deterministic fault-injection registry (repro.faults)."""

from __future__ import annotations

import pytest

from repro.faults import (
    FAULT_POINTS,
    FAULTS,
    FaultRegistry,
    InjectedFault,
    UnknownFaultPointError,
    parse_fault_spec,
)
from repro.gpu.device import DeviceMemoryError


@pytest.fixture(autouse=True)
def clean_registry():
    """Tests share the FAULTS singleton; never leak an armed point."""
    FAULTS.reset()
    yield
    FAULTS.reset()


class TestRegistryBasics:
    def test_unarmed_crossings_are_free(self):
        reg = FaultRegistry()
        for _ in range(5):
            reg.crossing("level-boundary", level=0)
        assert reg.crossings("level-boundary") == 5

    def test_unknown_point_rejected_everywhere(self):
        reg = FaultRegistry()
        with pytest.raises(UnknownFaultPointError):
            reg.arm("no-such-point")
        with pytest.raises(UnknownFaultPointError):
            reg.crossing("no-such-point")
        with pytest.raises(UnknownFaultPointError):
            reg.crossings("no-such-point")

    def test_armed_point_fires_at_nth_crossing(self):
        reg = FaultRegistry()
        reg.arm("rotation-boundary", at=3)
        reg.crossing("rotation-boundary")
        reg.crossing("rotation-boundary")
        with pytest.raises(InjectedFault) as err:
            reg.crossing("rotation-boundary", rotation=3)
        assert err.value.point == "rotation-boundary"
        assert err.value.context == {"rotation": 3}

    def test_one_shot_disarms_before_raising(self):
        reg = FaultRegistry()
        reg.arm("store-commit")
        with pytest.raises(InjectedFault):
            reg.crossing("store-commit")
        assert not reg.is_armed("store-commit")
        reg.crossing("store-commit")  # subsequent crossings are free again

    def test_counts_start_at_arm_time_not_process_start(self):
        reg = FaultRegistry()
        for _ in range(10):
            reg.crossing("pool-producer")
        reg.arm("pool-producer", at=2)
        reg.crossing("pool-producer")
        with pytest.raises(InjectedFault):
            reg.crossing("pool-producer")

    def test_device_oom_raises_real_device_error(self):
        """The degradation path must see the production exception type."""
        reg = FaultRegistry()
        reg.arm("device-oom")
        with pytest.raises(DeviceMemoryError):
            reg.crossing("device-oom", nbytes=1024)

    def test_store_commit_leaves_partial_state(self):
        reg = FaultRegistry()
        reg.arm("store-commit")
        with pytest.raises(InjectedFault) as err:
            reg.crossing("store-commit")
        assert err.value.leaves_partial_state
        reg.arm("level-boundary")
        with pytest.raises(InjectedFault) as err:
            reg.crossing("level-boundary")
        assert not err.value.leaves_partial_state

    def test_armed_context_manager_disarms_on_exit(self):
        reg = FaultRegistry()
        with pytest.raises(InjectedFault):
            with reg.armed("level-boundary:1"):
                reg.crossing("level-boundary")
        assert not reg.is_armed("level-boundary")
        with reg.armed("level-boundary:5"):
            assert reg.is_armed("level-boundary")
        assert not reg.is_armed("level-boundary")

    def test_snapshot_reports_armed_and_counts(self):
        reg = FaultRegistry()
        reg.arm("rotation-boundary", at=4)
        reg.crossing("rotation-boundary")
        snap = reg.snapshot()
        assert snap["crossings"]["rotation-boundary"] == 1
        assert snap["armed"]["rotation-boundary"] == 3  # crossings remaining


class TestSpecParsing:
    def test_plain_point_defaults_to_first_crossing(self):
        assert parse_fault_spec("level-boundary") == ("level-boundary", 1)

    def test_point_with_count(self):
        assert parse_fault_spec("rotation-boundary:7") == ("rotation-boundary", 7)

    @pytest.mark.parametrize("bad", ["", "rotation-boundary:0",
                                     "rotation-boundary:x", "nope:1"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises((ValueError, UnknownFaultPointError)):
            parse_fault_spec(bad)

    def test_every_registered_point_parses(self):
        for point in FAULT_POINTS:
            assert parse_fault_spec(f"{point}:2") == (point, 2)


def test_module_singleton_is_shared():
    """The CLI arms FAULTS; library code crosses the same instance."""
    FAULTS.arm("level-boundary", at=1)
    with pytest.raises(InjectedFault):
        FAULTS.crossing("level-boundary")
