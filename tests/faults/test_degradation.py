"""Graceful degradation under device OOM (LargeGraphTrainer retry path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_tool
from repro.faults import FAULTS
from repro.gpu.device import DeviceMemoryError
from repro.gpu import DeviceSpec, SimulatedDevice
from repro.graph import powerlaw_cluster
from repro.large import LargeGraphConfig, train_large_graph


def tiny_device(bytes_: int) -> SimulatedDevice:
    return SimulatedDevice(
        spec=DeviceSpec(name=f"tiny-{bytes_}", memory_bytes=bytes_))


@pytest.fixture(autouse=True)
def clean_registry():
    """Tests share the FAULTS singleton; never leak an armed point."""
    FAULTS.reset()
    yield
    FAULTS.reset()


@pytest.fixture(scope="module")
def graph():
    return powerlaw_cluster(400, m=3, seed=1)


def make_tool(**overrides):
    kwargs = dict(dim=16, epoch_scale=0.2, device=tiny_device(20_000), seed=0)
    kwargs.update(overrides)
    return get_tool("gosh-normal", **kwargs)


class TestDegradation:
    def test_oom_mid_training_degrades_and_completes(self, graph):
        """The acceptance case: injected OOM mid-run completes bit-exactly."""
        golden = make_tool().embed(graph)
        FAULTS.arm("device-oom", at=3)
        result = make_tool().embed(graph)
        large = result.stats["large_graph"]
        assert large["oom_retries"] == 1
        (record,) = large["degradations"]
        assert record["resident_submatrices"] == 2    # halved from 3, floor 2
        assert record["resident_sample_pools"] == 2   # halved from 4
        assert record["backoff_s"] > 0
        assert "injected device OOM" in record["error"]
        assert np.array_equal(golden.embedding, result.embedding)

    def test_repeated_oom_keeps_halving(self, graph):
        """Two OOMs: the second retry runs at the footprint floor (2, 1)."""
        golden = make_tool().embed(graph)
        FAULTS.arm("device-oom", at=3)
        tool = make_tool()
        # Re-arm from inside the retry: the registry is one-shot, so a second
        # arm is scheduled after the first fires by wrapping the device.
        device = tool.device
        original_allocate = type(device).allocate
        state = {"fired": 0}

        def allocate_then_rearm(self, *args, **kwargs):
            try:
                return original_allocate(self, *args, **kwargs)
            except DeviceMemoryError:
                state["fired"] += 1
                if state["fired"] == 1:
                    FAULTS.arm("device-oom", at=2)
                raise

        type(device).allocate = allocate_then_rearm
        try:
            result = tool.embed(graph)
        finally:
            type(device).allocate = original_allocate
        large = result.stats["large_graph"]
        assert large["oom_retries"] == 2
        assert large["degradations"][-1]["resident_submatrices"] == 2
        assert large["degradations"][-1]["resident_sample_pools"] == 1
        assert np.array_equal(golden.embedding, result.embedding)

    def test_oom_at_floor_reraises(self, graph):
        """With P_GPU/S_GPU already minimal there is nothing left to halve."""
        embedding = np.random.default_rng(0).standard_normal(
            (graph.num_vertices, 16)).astype(np.float32)
        config = LargeGraphConfig(resident_submatrices=2,
                                  resident_sample_pools=1, min_parts=4, seed=0)
        FAULTS.arm("device-oom", at=2)
        with pytest.raises(DeviceMemoryError):
            train_large_graph(graph, embedding, epochs=40,
                              device=tiny_device(50_000), config=config)

    def test_retry_budget_bounds_attempts(self, graph):
        """max_oom_retries=0 turns the retry loop off entirely."""
        embedding = np.random.default_rng(0).standard_normal(
            (graph.num_vertices, 16)).astype(np.float32)
        config = LargeGraphConfig(min_parts=4, max_oom_retries=0, seed=0)
        FAULTS.arm("device-oom", at=2)
        with pytest.raises(DeviceMemoryError):
            train_large_graph(graph, embedding, epochs=40,
                              device=tiny_device(50_000), config=config)

    def test_persistent_oom_exhausts_halving_and_reraises(self, graph):
        """Degradation must not mask a device that keeps failing: the halving
        ladder bottoms out at (2, 1) and the real error propagates."""
        device = tiny_device(50_000)

        def always_oom(*args, **kwargs):
            raise DeviceMemoryError("persistent allocation failure")

        device.allocate = always_oom
        embedding = np.random.default_rng(0).standard_normal(
            (graph.num_vertices, 16)).astype(np.float32)
        config = LargeGraphConfig(min_parts=4, seed=0)
        with pytest.raises(DeviceMemoryError, match="persistent"):
            train_large_graph(graph, embedding, epochs=40,
                              device=device, config=config)

    def test_stats_record_degradations_in_summary(self, graph):
        FAULTS.arm("device-oom", at=3)
        result = make_tool().embed(graph)
        large = result.stats["large_graph"]
        assert large["oom_retries"] >= 1
        assert all({"attempt", "error", "resident_submatrices",
                    "resident_sample_pools", "backoff_s"} <= set(d)
                   for d in large["degradations"])
