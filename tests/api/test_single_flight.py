"""Single-flight embed-on-miss: concurrent misses elect one owner.

A traffic spike on a cold lineage used to fan out into N identical training
runs racing to save N identical versions.  ``EmbeddingService.ensure_stored``
now latches each in-flight (graph, tool) miss: one thread embeds, the rest
wait and serve the owner's saved entry, counted in ``embeds_deduped``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import EmbeddingService


@pytest.fixture
def service(tmp_path):
    return EmbeddingService(dim=8, epoch_scale=0.02, store=tmp_path)


def run_workers(service, graph, n):
    """Call ensure_stored from ``n`` threads; return (results, errors)."""
    results: list[object] = [None] * n
    errors: list[BaseException | None] = [None] * n

    def worker(i):
        try:
            results[i] = service.ensure_stored("gosh-fast", graph)
        except BaseException as exc:  # noqa: BLE001 — surfaced in asserts
            errors[i] = exc

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    return threads, results, errors


def wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("timed out waiting for condition")
        time.sleep(0.005)


class TestSingleFlight:
    def test_concurrent_misses_embed_once(self, service, small_power_graph):
        real_embed = service.embed
        started = threading.Event()
        release = threading.Event()
        calls: list[str] = []

        def slow_embed(tool, graph, **kwargs):
            calls.append(tool.name)
            started.set()
            assert release.wait(20)
            return real_embed(tool, graph, **kwargs)

        service.embed = slow_embed
        threads, results, errors = run_workers(service, small_power_graph, 2)
        threads[0].start()
        wait_for(started.is_set)          # the owner is inside embed()
        threads[1].start()
        wait_for(lambda: service.embeds_deduped == 1)  # the waiter latched
        release.set()
        for t in threads:
            t.join(30)
        assert errors == [None, None]
        assert calls == ["gosh-fast"]     # exactly one training run
        (e0, hit0), (e1, hit1) = results
        assert e0.version == e1.version == 1
        assert sorted([hit0, hit1]) == [False, True]
        assert service.stats()["embeds_deduped"] == 1

    def test_waiter_claims_ownership_when_owner_fails(self, service,
                                                      small_power_graph):
        """A transient owner failure must not strand the queue."""
        real_embed = service.embed
        started = threading.Event()
        release = threading.Event()
        attempts: list[int] = []

        def flaky_embed(tool, graph, **kwargs):
            attempts.append(len(attempts))
            if len(attempts) == 1:
                started.set()
                assert release.wait(20)
                raise RuntimeError("transient embed failure")
            return real_embed(tool, graph, **kwargs)

        service.embed = flaky_embed
        threads, results, errors = run_workers(service, small_power_graph, 2)
        threads[0].start()
        wait_for(started.is_set)
        threads[1].start()
        wait_for(lambda: service.embeds_deduped == 1)
        release.set()
        for t in threads:
            t.join(30)
        # The first worker surfaced the failure; the second took over,
        # re-embedded, and saved the lineage.
        raised = [e for e in errors if e is not None]
        assert len(raised) == 1 and "transient" in str(raised[0])
        succeeded = [r for r in results if r is not None]
        assert len(succeeded) == 1
        entry, store_hit = succeeded[0]
        assert entry.version == 1 and store_hit is False
        assert len(attempts) == 2

    def test_sequential_misses_do_not_count_as_deduped(self, service,
                                                       small_power_graph):
        entry1, hit1 = service.ensure_stored("gosh-fast", small_power_graph)
        entry2, hit2 = service.ensure_stored("gosh-fast", small_power_graph)
        assert (hit1, hit2) == (False, True)
        assert entry1.version == entry2.version
        assert service.embeds_deduped == 0

    def test_distinct_lineages_fly_independently(self, service,
                                                 small_power_graph):
        """Two different tools missing at once are not serialized."""
        real_embed = service.embed
        in_flight = threading.Semaphore(0)
        release = threading.Event()

        def gated_embed(tool, graph, **kwargs):
            in_flight.release()
            assert release.wait(20)
            return real_embed(tool, graph, **kwargs)

        service.embed = gated_embed
        results, errors = [None, None], [None, None]

        def worker(i, name):
            try:
                results[i] = service.ensure_stored(name, small_power_graph)
            except BaseException as exc:  # noqa: BLE001
                errors[i] = exc

        threads = [threading.Thread(target=worker, args=(0, "gosh-fast")),
                   threading.Thread(target=worker, args=(1, "gosh-normal"))]
        for t in threads:
            t.start()
        # Both lineages must reach embed() concurrently — neither waits on
        # the other's latch.
        wait_for(lambda: in_flight.acquire(blocking=False), 20)
        wait_for(lambda: in_flight.acquire(blocking=False), 20)
        release.set()
        for t in threads:
            t.join(30)
        assert errors == [None, None]
        assert service.embeds_deduped == 0
