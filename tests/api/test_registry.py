"""Tests for the repro.api tool registry and the EmbeddingTool wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    EmbeddingResult,
    EmbeddingTool,
    UnknownToolError,
    as_embedder,
    available_tools,
    get_tool,
    register_lazy,
    register_tool,
    tool_descriptions,
    unregister_tool,
)

BUILTINS = ["verse", "mile", "graphvite", "gosh-fast", "gosh-normal", "gosh-slow",
            "gosh-nocoarse"]


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_tools()
        assert len(names) >= 7
        for name in BUILTINS:
            assert name in names

    def test_builtin_presentation_order(self):
        names = available_tools()
        assert names[:7] == BUILTINS

    def test_get_tool_case_insensitive_and_aliases(self):
        assert get_tool("Gosh-Fast").name == "gosh-fast"
        assert get_tool("  VERSE ").name == "verse"
        assert get_tool("gosh").name == "gosh-normal"
        assert get_tool("gosh-no-coarsening").name == "gosh-nocoarse"

    def test_unknown_name_raises_with_options(self):
        with pytest.raises(UnknownToolError) as exc_info:
            get_tool("node2vec")
        assert "node2vec" in str(exc_info.value)
        assert "gosh-fast" in str(exc_info.value)
        assert isinstance(exc_info.value, KeyError)

    def test_register_and_unregister_custom_tool(self, tiny_graph):
        class ConstantTool:
            name = "constant"
            display_name = "Constant"

            def __init__(self, *, dim=None, epoch_scale=1.0, device=None, seed=None):
                self.dim = dim or 4

            def describe(self):
                return "returns a constant matrix"

            def prepare(self, graph):
                pass

            def embed(self, graph, *, device=None, seed=None, progress=None):
                emb = np.zeros((graph.num_vertices, self.dim), dtype=np.float32)
                return EmbeddingResult(embedding=emb, tool=self.name,
                                       graph=graph.name, seconds=0.0)

            def __call__(self, graph):
                return self.embed(graph).embedding

        register_tool("constant", ConstantTool)
        try:
            assert "constant" in available_tools()
            tool = get_tool("constant", dim=3)
            assert isinstance(tool, EmbeddingTool)
            assert tool.embed(tiny_graph).embedding.shape == (6, 3)
            # Duplicate registration must be explicit.
            with pytest.raises(ValueError):
                register_tool("constant", ConstantTool)
            register_tool("constant", ConstantTool, replace=True)
        finally:
            unregister_tool("constant")
        assert "constant" not in available_tools()

    def test_register_lazy_entry_point_style(self):
        register_lazy("verse-lazy", "repro.api.tools:VerseTool")
        try:
            tool = get_tool("verse-lazy", dim=8)
            assert tool.name == "verse"
        finally:
            unregister_tool("verse-lazy")

    def test_register_lazy_rejects_bad_spec(self):
        with pytest.raises(ValueError, match="module:attr"):
            register_lazy("bad", "no-colon-here")

    def test_explicit_registration_wins_over_builtin_alias(self):
        """A tool registered under an alias name must not be shadowed by it."""
        marker = object()
        register_tool("gosh", lambda **kw: marker)
        try:
            assert get_tool("gosh") is marker
        finally:
            unregister_tool("gosh")
        # With the registration gone the builtin alias applies again.
        assert get_tool("gosh").name == "gosh-normal"

    def test_failed_lazy_import_survives_for_retry(self):
        """A lazy spec whose import fails must keep raising the real error,
        not degrade into UnknownToolError on the second lookup."""
        register_lazy("broken-lazy", "no_such_module_xyz:Tool")
        try:
            with pytest.raises(ModuleNotFoundError):
                get_tool("broken-lazy")
            with pytest.raises(ModuleNotFoundError):
                get_tool("broken-lazy")
        finally:
            unregister_tool("broken-lazy")

    def test_builtin_name_collision_rejected(self):
        with pytest.raises(ValueError):
            register_tool("verse", lambda **kw: None)

    def test_tool_descriptions_rows(self):
        rows = tool_descriptions(dim=8, epoch_scale=0.02)
        names = [r["name"] for r in rows]
        assert set(BUILTINS) <= set(names)
        assert all(r["description"] for r in rows)


class TestBuiltinTools:
    @pytest.mark.parametrize("name", BUILTINS)
    def test_embed_returns_canonical_result(self, name, tiny_graph):
        tool = get_tool(name, dim=8, epoch_scale=0.02, seed=0)
        assert isinstance(tool, EmbeddingTool)
        result = tool.embed(tiny_graph)
        assert isinstance(result, EmbeddingResult)
        assert result.embedding.shape == (tiny_graph.num_vertices, 8)
        assert np.isfinite(result.embedding).all()
        assert result.tool == tool.name
        assert result.graph == tiny_graph.name
        assert result.seconds >= 0
        assert result.timings and all(v >= 0 for v in result.timings.values())
        assert result.raw is not None
        # Bare-callable compatibility: tool(graph) -> matrix.
        assert tool(tiny_graph).shape == (tiny_graph.num_vertices, 8)

    def test_gosh_result_stats_shape(self, small_power_graph):
        result = get_tool("gosh-fast", dim=8, epoch_scale=0.02).embed(small_power_graph)
        assert result.stats["levels"] == len(result.stats["level_sizes"])
        assert len(result.stats["epochs_per_level"]) == result.stats["levels"]
        assert result.metadata["config"] == "fast"
        assert "coarsening" in result.timings and "training" in result.timings

    def test_seed_override_is_deterministic(self, tiny_graph):
        tool = get_tool("gosh-normal", dim=8, epoch_scale=0.02)
        a = tool.embed(tiny_graph, seed=11).embedding
        b = tool.embed(tiny_graph, seed=11).embedding
        c = tool.embed(tiny_graph, seed=12).embedding
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_progress_events_emitted(self, tiny_graph):
        events = []
        get_tool("gosh-fast", dim=8, epoch_scale=0.02).embed(tiny_graph,
                                                             progress=events.append)
        stages = [e.stage for e in events]
        assert stages == ["coarsen", "train", "done"]
        assert all(e.tool == "gosh-fast" and e.graph == tiny_graph.name for e in events)

    def test_prepare_warms_gosh_hierarchy(self, small_power_graph):
        tool = get_tool("gosh-normal", dim=8, epoch_scale=0.02)
        tool.prepare(small_power_graph)
        result = tool.embed(small_power_graph)
        assert result.stats["hierarchy_cache_hit"] is True

    def test_gosh_without_cache_recoarsens_every_run(self, small_power_graph):
        """Caching is opt-in: a bare tool keeps the paper's timing semantics,
        so repeated benchmark runs never skip stage 1 silently."""
        tool = get_tool("gosh-fast", dim=8, epoch_scale=0.02)
        first = tool.embed(small_power_graph)
        second = tool.embed(small_power_graph)
        assert tool.hierarchy_cache is None
        assert first.stats["hierarchy_cache_hit"] is False
        assert second.stats["hierarchy_cache_hit"] is False

    def test_broken_registration_does_not_break_listing(self):
        register_lazy("broken-listing", "no_such_module_xyz:Tool")
        try:
            rows = tool_descriptions(dim=8, epoch_scale=0.02)
            by_name = {r["name"]: r for r in rows}
            assert "unavailable" in by_name["broken-listing"]["description"]
            assert by_name["verse"]["display"] == "Verse"
        finally:
            unregister_tool("broken-listing")

    def test_as_embedder_accepts_all_spellings(self, tiny_graph):
        from_name = as_embedder("gosh-fast")
        from_tool = as_embedder(get_tool("gosh-fast", dim=8, epoch_scale=0.02))
        from_callable = as_embedder(lambda g: np.ones((g.num_vertices, 2)))
        assert from_name(tiny_graph).ndim == 2
        assert from_tool(tiny_graph).shape == (6, 8)
        assert from_callable(tiny_graph).shape == (6, 2)
        with pytest.raises(TypeError):
            as_embedder(42)

    def test_as_embedder_forwards_seed_to_the_embedding(self, tiny_graph):
        """A pipeline seed must reach the embedding for name spellings too —
        not just the split/classifier."""
        a = as_embedder("gosh-fast", seed=11)(tiny_graph)
        b = as_embedder("gosh-fast", seed=11)(tiny_graph)
        c = as_embedder("gosh-fast", seed=12)(tiny_graph)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
