"""Tests for the EmbeddingService facade and its hierarchy cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BatchFailure,
    EmbedRequest,
    EmbeddingService,
    HierarchyCache,
    hierarchy_cache_key,
)
from repro.embedding import NORMAL, GoshEmbedder
from repro.eval import LinkPredictionResult
from repro.gpu import DeviceMemoryError, DeviceSpec, SimulatedDevice


class TestHierarchyCache:
    def test_second_build_is_a_hit(self, small_power_graph):
        cache = HierarchyCache()
        cfg = NORMAL.scaled(0.02, dim=8)
        embedder = GoshEmbedder(cfg)
        h1, s1, hit1 = cache.get_or_build(small_power_graph, cfg,
                                          lambda: embedder.coarsen(small_power_graph))
        h2, s2, hit2 = cache.get_or_build(small_power_graph, cfg,
                                          lambda: embedder.coarsen(small_power_graph))
        assert hit1 is False and hit2 is True
        assert h2 is h1
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_key_ignores_training_knobs_but_not_coarsening_knobs(self, small_power_graph):
        base = NORMAL.scaled(0.02, dim=8)
        same = base.with_(learning_rate=0.9, epochs=3, dim=64, seed=5)
        different = base.with_(coarsening_threshold=10)
        no_coarse = base.with_(use_coarsening=False)
        key = hierarchy_cache_key(small_power_graph, base)
        assert hierarchy_cache_key(small_power_graph, same) == key
        assert hierarchy_cache_key(small_power_graph, different) != key
        assert hierarchy_cache_key(small_power_graph, no_coarse) != key

    def test_key_tracks_graph_content_not_name(self, small_power_graph, tiny_graph):
        cfg = NORMAL.scaled(0.02, dim=8)
        renamed = type(small_power_graph)(
            xadj=small_power_graph.xadj, adj=small_power_graph.adj,
            num_vertices=small_power_graph.num_vertices, name="other-name")
        assert (hierarchy_cache_key(renamed, cfg)
                == hierarchy_cache_key(small_power_graph, cfg))
        assert (hierarchy_cache_key(tiny_graph, cfg)
                != hierarchy_cache_key(small_power_graph, cfg))

    def test_lru_eviction(self, small_power_graph, tiny_graph, community_graph):
        cache = HierarchyCache(max_entries=2)
        cfg = NORMAL.scaled(0.02, dim=8)
        embedder = GoshEmbedder(cfg)
        for g in (small_power_graph, tiny_graph, community_graph):
            cache.get_or_build(g, cfg, lambda g=g: embedder.coarsen(g))
        assert len(cache) == 2
        # The oldest entry (small_power_graph) was evicted.
        _, _, hit = cache.get_or_build(small_power_graph, cfg,
                                       lambda: embedder.coarsen(small_power_graph))
        assert hit is False

    def test_lru_eviction_order_respects_recent_use(
            self, small_power_graph, tiny_graph, community_graph):
        """Eviction is least-RECENTLY-used, not least-recently-built: a hit
        refreshes an entry, so inserting a third entry must evict the one
        that was *not* touched since."""
        cache = HierarchyCache(max_entries=2)
        cfg = NORMAL.scaled(0.02, dim=8)
        embedder = GoshEmbedder(cfg)
        build = lambda g: (lambda: embedder.coarsen(g))  # noqa: E731
        cache.get_or_build(small_power_graph, cfg, build(small_power_graph))
        cache.get_or_build(tiny_graph, cfg, build(tiny_graph))
        # Touch the older entry, then overflow the cache.
        _, _, hit = cache.get_or_build(small_power_graph, cfg, build(small_power_graph))
        assert hit is True
        cache.get_or_build(community_graph, cfg, build(community_graph))
        # tiny_graph (least recently used) is gone; small_power_graph stays.
        _, _, hit = cache.get_or_build(small_power_graph, cfg, build(small_power_graph))
        assert hit is True
        _, _, hit = cache.get_or_build(tiny_graph, cfg, build(tiny_graph))
        assert hit is False

    def test_hit_miss_counters_and_clear(self, small_power_graph, tiny_graph):
        cache = HierarchyCache(max_entries=1)
        cfg = NORMAL.scaled(0.02, dim=8)
        embedder = GoshEmbedder(cfg)
        build = lambda g: (lambda: embedder.coarsen(g))  # noqa: E731
        cache.get_or_build(small_power_graph, cfg, build(small_power_graph))   # miss
        cache.get_or_build(small_power_graph, cfg, build(small_power_graph))   # hit
        cache.get_or_build(tiny_graph, cfg, build(tiny_graph))                 # miss+evict
        cache.get_or_build(small_power_graph, cfg, build(small_power_graph))   # miss again
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 3}
        cache.clear()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}


class TestEmbeddingService:
    def test_repeated_graph_skips_recoarsening(self, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        first = service.embed("gosh-normal", small_power_graph)
        second = service.embed("gosh-normal", small_power_graph)
        assert first.stats["hierarchy_cache_hit"] is False
        assert second.stats["hierarchy_cache_hit"] is True
        # The cached run reports (near-)zero coarsening time — strictly less
        # than the build, and bounded by a lookup's worth of wall-clock.
        assert second.timings["coarsening"] < first.timings["coarsening"]
        assert second.timings["coarsening"] < 0.005
        assert service.hierarchy_cache.stats()["hits"] == 1
        # Both runs used the same hierarchy, so shapes agree.
        assert first.stats["level_sizes"] == second.stats["level_sizes"]

    def test_cache_shared_across_gosh_variants(self, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        service.embed("gosh-normal", small_power_graph)
        sweep = service.embed("gosh-slow", small_power_graph)
        assert sweep.stats["hierarchy_cache_hit"] is True
        assert service.hierarchy_cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_prepare_then_embed_hits(self, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        service.prepare("gosh-fast", small_power_graph)
        result = service.embed("gosh-fast", small_power_graph)
        assert result.stats["hierarchy_cache_hit"] is True

    def test_batched_requests_mixed_tools(self, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        results = service.embed_batch([
            EmbedRequest("verse", small_power_graph),
            EmbedRequest("gosh-fast", small_power_graph),
            EmbedRequest("gosh-slow", small_power_graph),
            EmbedRequest("gosh-fast", small_power_graph, evaluate=True),
        ])
        assert len(results) == 4
        assert results[0].tool == "verse"
        assert results[1].stats["hierarchy_cache_hit"] is False
        assert results[2].stats["hierarchy_cache_hit"] is True
        assert isinstance(results[3], LinkPredictionResult)
        assert 0.0 < results[3].auc <= 1.0
        assert service.stats()["requests_served"] == 4

    def test_batch_isolates_failing_request(self, small_power_graph):
        """A failing request (GraphVite's expected DeviceMemoryError on an
        over-budget graph) must not abort the batch: completed results are
        kept, later requests still run, and the failure is recorded in
        place."""
        nano = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=1024))
        service = EmbeddingService(dim=8, epoch_scale=0.02, device=nano)
        results = service.embed_batch([
            EmbedRequest("verse", small_power_graph),
            EmbedRequest("graphvite", small_power_graph),   # cannot fit: fails
            EmbedRequest("verse", small_power_graph, seed=1),
        ])
        assert len(results) == 3
        assert results[0].tool == "verse"
        assert results[2].tool == "verse"                   # ran after the failure
        failure = results[1]
        assert isinstance(failure, BatchFailure)
        assert failure.tool == "graphvite"
        assert isinstance(failure.error, DeviceMemoryError)
        assert failure.request.graph is small_power_graph
        stats = service.stats()
        assert stats["requests_served"] == 2
        assert stats["requests_failed"] == 1

    def test_batch_result_ordering_under_mixed_failures(self, small_power_graph):
        """Every response lands at its request's index: failures interleaved
        with successes must not shift, drop, or reorder entries."""
        nano = SimulatedDevice(spec=DeviceSpec(name="nano", memory_bytes=1024))
        service = EmbeddingService(dim=8, epoch_scale=0.02, device=nano)
        requests = [
            EmbedRequest("graphvite", small_power_graph),            # fails
            EmbedRequest("verse", small_power_graph),
            EmbedRequest("graphvite", small_power_graph, seed=1),    # fails
            EmbedRequest("gosh-fast", small_power_graph),
            EmbedRequest("graphvite", small_power_graph, seed=2),    # fails
        ]
        results = service.embed_batch(requests)
        assert len(results) == len(requests)
        failed_positions = [i for i, r in enumerate(results)
                            if isinstance(r, BatchFailure)]
        assert failed_positions == [0, 2, 4]
        assert results[1].tool == "verse"
        assert results[3].tool == "gosh-fast"
        # Each failure records the request that produced it, in place.
        for i in failed_positions:
            assert results[i].request is requests[i]
            assert isinstance(results[i].error, DeviceMemoryError)
        stats = service.stats()
        assert stats["requests_served"] == 2
        assert stats["requests_failed"] == 3

    def test_batch_all_success_reports_no_failures(self, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        results = service.embed_batch([EmbedRequest("verse", small_power_graph)])
        assert not any(isinstance(r, BatchFailure) for r in results)
        assert service.stats()["requests_failed"] == 0

    def test_batch_unknown_tool_still_raises(self, small_power_graph):
        """Isolation covers runtime failures, not batch programming errors:
        a typo'd tool name must raise instead of degrading into a silent
        BatchFailure entry."""
        from repro.api import UnknownToolError

        service = EmbeddingService(dim=8, epoch_scale=0.02)
        with pytest.raises(UnknownToolError):
            service.embed_batch([EmbedRequest("ghos-normal", small_power_graph)])
        assert service.stats()["requests_failed"] == 0

    def test_progress_callback_from_service(self, small_power_graph):
        events = []
        service = EmbeddingService(dim=8, epoch_scale=0.02, progress=events.append)
        service.embed("gosh-normal", small_power_graph)
        assert [e.stage for e in events] == ["coarsen", "train", "done"]

    def test_service_keeps_prewarmed_tool_cache(self, small_power_graph):
        """A caller-supplied tool that already carries a (warm) cache keeps
        it — the service must not clobber state it does not own."""
        from repro.api import get_tool

        tool = get_tool("gosh-normal", dim=8, epoch_scale=0.02)
        tool.prepare(small_power_graph)
        warmed = tool.hierarchy_cache
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        result = service.embed(tool, small_power_graph)
        assert tool.hierarchy_cache is warmed
        assert result.stats["hierarchy_cache_hit"] is True

    def test_tool_instances_memoised(self, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        assert service.tool("verse") is service.tool("VERSE")
        assert service.stats()["tools_resolved"] == ["verse"]

    def test_different_graphs_do_not_collide(self, small_power_graph, community_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        a = service.embed("gosh-normal", small_power_graph)
        b = service.embed("gosh-normal", community_graph)
        assert b.stats["hierarchy_cache_hit"] is False
        assert a.embedding.shape[0] != b.embedding.shape[0]

    def test_evaluate_by_name(self, community_graph):
        service = EmbeddingService(dim=16, epoch_scale=0.05)
        result = service.evaluate("gosh-fast", community_graph)
        assert 0.5 < result.auc <= 1.0

    def test_raw_result_timings_agree_with_envelope(self, small_power_graph):
        """On the cache path the backend-native GoshResult must not report
        coarsening as free when it actually ran (miss) or vice versa."""
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        miss = service.embed("gosh-normal", small_power_graph)
        assert miss.raw.coarsening_seconds == miss.timings["coarsening"] > 0.0
        assert miss.raw.total_seconds >= miss.raw.coarsening_seconds
        hit = service.embed("gosh-normal", small_power_graph)
        assert hit.raw.coarsening_seconds == hit.timings["coarsening"] < 0.005


def test_embedder_accepts_prebuilt_hierarchy(small_power_graph):
    """GoshEmbedder.embed(hierarchy=...) skips stage 1 (the cache's hook)."""
    cfg = NORMAL.scaled(0.02, dim=8)
    embedder = GoshEmbedder(cfg)
    hierarchy, _ = embedder.coarsen(small_power_graph)
    result = embedder.embed(small_power_graph, hierarchy=hierarchy)
    assert result.coarsening_seconds == 0.0
    assert result.hierarchy is hierarchy
    assert result.embedding.shape == (small_power_graph.num_vertices, 8)
    assert np.isfinite(result.embedding).all()
