"""Tests for the EmbeddingService k-NN facade (embed-if-missing -> store -> query)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EmbeddingService, QueryRequest
from repro.store import EmbeddingStore


@pytest.fixture
def service(tmp_path):
    return EmbeddingService(dim=8, epoch_scale=0.02, store=tmp_path / "store")


class TestEmbedIfMissing:
    def test_first_query_embeds_and_stores(self, service, small_power_graph):
        response = service.query("gosh-fast", small_power_graph, vertices=[0, 5], k=4)
        assert response.store_hit is False
        assert response.ids.shape == (2, 4)
        assert response.entry.version == 1
        assert service.store.stats()["saves"] == 1
        assert service.stats()["requests_served"] == 1   # the implicit embed

    def test_second_query_serves_from_store(self, service, small_power_graph):
        first = service.query("gosh-fast", small_power_graph, vertices=0, k=3)
        second = service.query("gosh-fast", small_power_graph, vertices=0, k=3)
        assert (first.store_hit, second.store_hit) == (False, True)
        assert service.stats()["requests_served"] == 1   # no re-embed
        assert (first.ids == second.ids).all()
        assert (first.scores == second.scores).all()

    def test_store_survives_service_restart(self, tmp_path, small_power_graph):
        root = tmp_path / "store"
        EmbeddingService(dim=8, epoch_scale=0.02, store=root).query(
            "gosh-fast", small_power_graph, vertices=0)
        fresh = EmbeddingService(dim=8, epoch_scale=0.02, store=root)
        response = fresh.query("gosh-fast", small_power_graph, vertices=0)
        assert response.store_hit is True
        assert fresh.stats()["requests_served"] == 0

    def test_distinct_tools_get_distinct_lineages(self, service, small_power_graph):
        service.query("gosh-fast", small_power_graph, vertices=0)
        service.query("verse", small_power_graph, vertices=0)
        assert service.store.stats()["lineages"] == 2

    def test_embed_stamps_graph_fingerprint(self, service, small_power_graph):
        result = service.embed("verse", small_power_graph)
        assert result.metadata["graph_fingerprint"] == small_power_graph.fingerprint()
        # ... which is exactly what lets the store key it without the graph.
        entry = service.store.save(result)
        assert entry.fingerprint == small_power_graph.fingerprint()

    def test_query_without_store_is_a_clear_error(self, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02)
        with pytest.raises(ValueError, match="store"):
            service.query("gosh-fast", small_power_graph, vertices=0)

    def test_store_accepts_instance_or_path(self, tmp_path):
        store = EmbeddingStore(tmp_path)
        assert EmbeddingService(store=store).store is store
        assert EmbeddingService(store=tmp_path).store.root == tmp_path


class TestMicrobatching:
    def test_batch_groups_same_engine_requests(self, service, small_power_graph):
        responses = service.query_batch([
            QueryRequest("gosh-fast", small_power_graph, vertices=[1, 2], k=3),
            QueryRequest("gosh-fast", small_power_graph, vertices=7, k=3),
            QueryRequest("gosh-fast", small_power_graph, vertices=[9], k=3),
        ])
        assert len(responses) == 3
        # One embed, one engine, ONE backend call for all three requests.
        assert service.stats()["microbatches"] == 1
        assert service.stats()["query_engines"] == 1
        assert service.stats()["query"]["batches"] == 1
        assert service.stats()["queries_served"] == 4

    def test_batch_answers_match_individual_queries(self, service, small_power_graph):
        """Stacking requests must not change what each request gets back.

        Ids are pinned exactly; scores to tolerance only, because stacking
        changes the matmul's column count and optimized BLAS may reorder the
        accumulation (the bit-level guarantee is across *backends* on a fixed
        batch, not across batch shapes)."""
        batched = service.query_batch([
            QueryRequest("gosh-fast", small_power_graph, vertices=[1, 2], k=5),
            QueryRequest("gosh-fast", small_power_graph, vertices=[9], k=5),
        ])
        solo_a = service.query("gosh-fast", small_power_graph, vertices=[1, 2], k=5)
        solo_b = service.query("gosh-fast", small_power_graph, vertices=9, k=5)
        assert (batched[0].ids == solo_a.ids).all()
        assert (batched[1].ids == solo_b.ids).all()
        np.testing.assert_allclose(batched[0].scores, solo_a.scores, rtol=1e-5)
        np.testing.assert_allclose(batched[1].scores, solo_b.scores, rtol=1e-5)

    def test_mixed_kinds_split_into_groups_in_order(self, service, small_power_graph):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((2, 8)).astype(np.float32)
        responses = service.query_batch([
            QueryRequest("gosh-fast", small_power_graph, vertices=[1], k=2),
            QueryRequest("gosh-fast", small_power_graph, vectors=vectors, k=2),
            QueryRequest("gosh-fast", small_power_graph, vertices=[2, 3], k=2),
            QueryRequest("gosh-fast", small_power_graph, vectors=vectors[:1], k=4),
        ])
        # vertex k=2 group, vector k=2 group, vector k=4 group.
        assert service.stats()["microbatches"] == 3
        assert [r.ids.shape for r in responses] == [(1, 2), (2, 2), (2, 2), (1, 4)]
        # Responses come back in request order regardless of grouping.
        solo = service.query("gosh-fast", small_power_graph, vertices=[2, 3], k=2)
        assert (responses[2].ids == solo.ids).all()

    def test_exclude_self_splits_vertex_groups(self, service, small_power_graph):
        responses = service.query_batch([
            QueryRequest("gosh-fast", small_power_graph, vertices=5, k=3),
            QueryRequest("gosh-fast", small_power_graph, vertices=5, k=3,
                         exclude_self=False),
        ])
        assert service.stats()["microbatches"] == 2
        assert 5 not in responses[0].ids[0]
        assert responses[1].ids[0, 0] == 5

    def test_request_validation(self, small_power_graph):
        with pytest.raises(ValueError, match="exactly one"):
            QueryRequest("gosh-fast", small_power_graph)
        with pytest.raises(ValueError, match="exactly one"):
            QueryRequest("gosh-fast", small_power_graph, vertices=[1],
                         vectors=np.zeros((1, 8), dtype=np.float32))


class TestServingSafety:
    def test_incompatible_dim_reembeds_instead_of_serving_stale(
            self, tmp_path, small_power_graph):
        """A stored dim-8 embedding must not silently answer a dim-16
        service's queries — that would return vectors from a configuration
        the caller never asked for (and crash vector queries outright)."""
        root = tmp_path / "store"
        EmbeddingService(dim=8, epoch_scale=0.02, store=root).query(
            "gosh-fast", small_power_graph, vertices=0)
        wide = EmbeddingService(dim=16, epoch_scale=0.02, store=root)
        response = wide.query("gosh-fast", small_power_graph, vertices=0)
        assert response.store_hit is False            # re-embedded at dim 16
        assert response.entry.shape[1] == 16
        # Vector queries in the service's dimension now work.
        vec = np.zeros((1, 16), dtype=np.float32)
        assert wide.query("gosh-fast", small_power_graph,
                          vectors=vec).ids.shape == (1, 10)
        # Both configurations coexist as separate lineages.
        assert wide.store.stats()["lineages"] == 2
        # And alternating services each keep hitting their own lineage — the
        # newer dim-16 entry must not mask the servable dim-8 one (which
        # would re-embed and re-save on every alternation).
        narrow = EmbeddingService(dim=8, epoch_scale=0.02, store=root)
        again = narrow.query("gosh-fast", small_power_graph, vertices=0)
        assert again.store_hit is True
        assert again.entry.shape[1] == 8
        assert narrow.store.stats()["entries"] == 2   # nothing new saved

    def test_config_hash_pins_a_lineage(self, tmp_path, small_power_graph):
        root = tmp_path / "store"
        service = EmbeddingService(dim=8, epoch_scale=0.02, store=root)
        first = service.query("gosh-fast", small_power_graph, vertices=0)
        pinned = service.query("gosh-fast", small_power_graph, vertices=0,
                               config_hash=first.entry.config_hash)
        assert pinned.store_hit is True
        assert pinned.entry.config_hash == first.entry.config_hash

    def test_unknown_config_pin_raises_instead_of_reembedding(
            self, service, small_power_graph):
        """A pin means 'serve exactly this validated lineage'; embedding
        under the service's own settings would silently answer from a
        different lineage than the one pinned."""
        from repro.store import StoreError

        with pytest.raises(StoreError, match="deadbeef"):
            service.query("gosh-fast", small_power_graph, vertices=0,
                          config_hash="deadbeef00000000")
        assert service.stats()["requests_served"] == 0    # nothing embedded
        assert service.store.stats()["saves"] == 0

    def test_gcd_version_is_noticed_not_served_blind(self, service,
                                                     small_power_graph):
        """After gc removes the memoised version, the next query must
        re-resolve (re-embedding if needed), not crash on the dead path or
        serve the removed version from a cached mmap."""
        service.query("gosh-fast", small_power_graph, vertices=0)
        service.store.gc(keep_n=0)
        response = service.query("gosh-fast", small_power_graph, vertices=0,
                                 metric="dot")   # would load the dead path
        assert response.store_hit is False       # re-embedded and re-stored
        assert response.entry.path.is_dir()

    def test_stats_stay_cumulative_across_engine_eviction(
            self, tmp_path, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02,
                                   store=tmp_path / "store",
                                   engine_cache_entries=1)
        service.query("gosh-fast", small_power_graph, vertices=0)
        before = service.stats()["query"]["rows_scored"]
        service.query("gosh-fast", small_power_graph, vertices=0, metric="dot")
        after = service.stats()["query"]
        assert after["rows_scored"] == before + small_power_graph.num_vertices
        assert after["batches"] == 2              # evicted engine still counted

    def test_stats_survive_eviction_within_one_batch(
            self, tmp_path, small_power_graph):
        """A batch whose requests need more engines than the cache holds must
        not lose counters: eviction waits until the batch finished serving."""
        service = EmbeddingService(dim=8, epoch_scale=0.02,
                                   store=tmp_path / "store",
                                   engine_cache_entries=1)
        service.query_batch([
            QueryRequest("gosh-fast", small_power_graph, vertices=[0], k=2),
            QueryRequest("gosh-fast", small_power_graph, vertices=[1], k=2,
                         metric="dot"),
        ])
        stats = service.stats()
        assert stats["query_engines"] == 1        # cap enforced after the batch
        assert stats["query"]["batches"] == 2
        assert stats["query"]["rows_scored"] == 2 * small_power_graph.num_vertices

    def test_engine_cache_entries_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="engine_cache_entries"):
            EmbeddingService(store=tmp_path, engine_cache_entries=0)

    def test_batch_resolves_store_entry_once(self, service, small_power_graph,
                                             monkeypatch):
        """Serving must not re-scan store manifests per request of a batch."""
        service.query("gosh-fast", small_power_graph, vertices=0)  # warm
        calls = []
        real = type(service.store).latest

        def counting(store, *args, **kwargs):
            calls.append(1)
            return real(store, *args, **kwargs)

        monkeypatch.setattr(type(service.store), "latest", counting)
        service.query_batch([
            QueryRequest("gosh-fast", small_power_graph, vertices=[v], k=2)
            for v in range(10)])
        assert calls == []                            # memoised entry served

    def test_engine_cache_is_lru_bounded(self, tmp_path, small_power_graph):
        service = EmbeddingService(dim=8, epoch_scale=0.02,
                                   store=tmp_path / "store",
                                   engine_cache_entries=1)
        service.query("gosh-fast", small_power_graph, vertices=0)
        service.query("gosh-fast", small_power_graph, vertices=0, metric="dot")
        assert service.stats()["query_engines"] == 1  # oldest engine evicted


class TestQuerySettings:
    def test_metric_and_backend_overrides(self, service, small_power_graph):
        cos = service.query("gosh-fast", small_power_graph, vertices=0, k=3)
        dot = service.query("gosh-fast", small_power_graph, vertices=0, k=3,
                            metric="dot", backend="exact")
        assert cos.result.metric == "cosine" and cos.result.backend == "blocked"
        assert dot.result.metric == "dot" and dot.result.backend == "exact"
        # Distinct settings memoise distinct engines over the same entry.
        assert service.stats()["query_engines"] == 2

    def test_engines_reused_across_calls(self, service, small_power_graph):
        service.query("gosh-fast", small_power_graph, vertices=0)
        service.query("gosh-fast", small_power_graph, vertices=1)
        service.query("gosh-fast", small_power_graph, vertices=2)
        assert service.stats()["query_engines"] == 1

    def test_stats_expose_store_and_query_sections(self, service, small_power_graph):
        service.query("gosh-fast", small_power_graph, vertices=[0, 1], k=2)
        stats = service.stats()
        assert stats["store"]["entries"] == 1
        assert stats["query"]["rows_scored"] == 2 * small_power_graph.num_vertices
        assert stats["queries_served"] == 2
