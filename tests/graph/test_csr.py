"""Unit tests for the CSR graph data structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, coo_to_csr, validate_csr


class TestCooToCsr:
    def test_simple_conversion(self):
        xadj, adj = coo_to_csr(3, np.array([0, 0, 1]), np.array([1, 2, 2]))
        assert xadj.tolist() == [0, 2, 3, 3]
        assert adj.tolist() == [1, 2, 2]

    def test_empty(self):
        xadj, adj = coo_to_csr(4, np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert xadj.tolist() == [0, 0, 0, 0, 0]
        assert adj.size == 0

    def test_neighbors_sorted(self):
        xadj, adj = coo_to_csr(3, np.array([0, 0, 0]), np.array([2, 1, 0]))
        assert adj.tolist() == [0, 1, 2]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            coo_to_csr(2, np.array([0]), np.array([5]))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            coo_to_csr(3, np.array([0, 1]), np.array([1]))


class TestValidateCsr:
    def test_valid_passes(self):
        validate_csr(np.array([0, 1, 2]), np.array([1, 0]), 2)

    def test_bad_first_entry(self):
        with pytest.raises(ValueError):
            validate_csr(np.array([1, 1, 2]), np.array([1, 0]), 2)

    def test_bad_last_entry(self):
        with pytest.raises(ValueError):
            validate_csr(np.array([0, 1, 3]), np.array([1, 0]), 2)

    def test_decreasing_xadj(self):
        with pytest.raises(ValueError):
            validate_csr(np.array([0, 2, 1, 3]), np.array([1, 0, 2]), 3)

    def test_adj_out_of_range(self):
        with pytest.raises(ValueError):
            validate_csr(np.array([0, 1, 2]), np.array([1, 7]), 2)


class TestFromEdges:
    def test_undirected_symmetry(self, tiny_graph):
        for u in range(tiny_graph.num_vertices):
            for v in tiny_graph.neighbors(u):
                assert tiny_graph.has_edge(int(v), u)

    def test_edge_counts(self, tiny_graph):
        assert tiny_graph.num_undirected_edges == 6
        assert tiny_graph.num_edges == 12

    def test_self_loops_dropped(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1)])
        assert g.num_undirected_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicates_removed(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert g.num_undirected_edges == 1

    def test_directed_mode(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], undirected=False)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_empty_edge_list(self):
        g = CSRGraph.from_edges(5, [])
        assert g.num_edges == 0
        assert g.num_vertices == 5

    def test_bad_shape_raises(self):
        with pytest.raises(ValueError):
            CSRGraph.from_edges(3, np.array([[0, 1, 2]]))


class TestBasicAccessors:
    def test_degrees(self, tiny_graph):
        assert tiny_graph.degrees.tolist() == [3, 2, 2, 2, 2, 1]

    def test_degree_single(self, tiny_graph):
        assert tiny_graph.degree(0) == 3
        assert tiny_graph.degree(5) == 1

    def test_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.neighbors(0).tolist()) == [1, 2, 3]
        assert tiny_graph.neighbors(5).tolist() == [4]

    def test_has_edge(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert not tiny_graph.has_edge(1, 5)

    def test_density(self, tiny_graph):
        assert tiny_graph.density == pytest.approx(1.0)

    def test_edge_array_roundtrip(self, tiny_graph):
        arcs = tiny_graph.edge_array()
        rebuilt = CSRGraph.from_edges(tiny_graph.num_vertices, arcs, undirected=False)
        assert np.array_equal(rebuilt.xadj, tiny_graph.xadj)
        assert np.array_equal(rebuilt.adj, tiny_graph.adj)

    def test_undirected_edge_array(self, tiny_graph):
        edges = tiny_graph.undirected_edge_array()
        assert edges.shape == (6, 2)
        assert np.all(edges[:, 0] < edges[:, 1])

    def test_len_and_iter(self, tiny_graph):
        assert len(tiny_graph) == 6
        assert list(tiny_graph) == list(range(6))

    def test_nbytes_positive(self, tiny_graph):
        assert tiny_graph.nbytes() > 0


class TestTransformations:
    def test_subgraph_preserves_internal_edges(self, tiny_graph):
        sub, original_ids = tiny_graph.subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert original_ids.tolist() == [0, 1, 2]
        assert sub.num_undirected_edges == 3  # triangle 0-1, 0-2, 1-2

    def test_subgraph_drops_external_edges(self, tiny_graph):
        sub, _ = tiny_graph.subgraph([4, 5])
        assert sub.num_undirected_edges == 1

    def test_remove_isolated_vertices(self):
        g = CSRGraph.from_edges(5, [(0, 1)])
        compact, old_ids = g.remove_isolated_vertices()
        assert compact.num_vertices == 2
        assert sorted(old_ids.tolist()) == [0, 1]

    def test_relabel_is_isomorphic(self, tiny_graph):
        perm = np.array([5, 4, 3, 2, 1, 0])
        relabelled = tiny_graph.relabel(perm)
        assert relabelled.num_undirected_edges == tiny_graph.num_undirected_edges
        for u in range(6):
            for v in tiny_graph.neighbors(u):
                assert relabelled.has_edge(int(perm[u]), int(perm[int(v)]))

    def test_relabel_bad_length(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.relabel(np.array([0, 1]))

    def test_copy_is_independent(self, tiny_graph):
        clone = tiny_graph.copy()
        clone.adj[0] = 99 if clone.adj.size else 0
        assert tiny_graph.adj[0] != 99

    def test_empty_factory(self):
        g = CSRGraph.empty(4)
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert g.density == 0.0

    def test_symmetrized(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], undirected=False)
        sym = g.symmetrized()
        assert sym.has_edge(1, 0)
        assert sym.has_edge(2, 1)


class TestFingerprint:
    """fingerprint() is the store/cache key: content-keyed and memoised."""

    def test_content_keyed_not_name_keyed(self, tiny_graph):
        renamed = CSRGraph(xadj=tiny_graph.xadj.copy(), adj=tiny_graph.adj.copy(),
                           num_vertices=tiny_graph.num_vertices, name="other")
        assert renamed.fingerprint() == tiny_graph.fingerprint()
        other = CSRGraph.from_edges(6, [(0, 1)], name=tiny_graph.name)
        assert other.fingerprint() != tiny_graph.fingerprint()

    def test_memoised_on_the_instance(self, tiny_graph, monkeypatch):
        """Every store save/load and serving request fingerprints the graph;
        the CSR arrays must be hashed exactly once per instance."""
        import hashlib

        calls = []
        real = hashlib.blake2b

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(hashlib, "blake2b", counting)
        first = tiny_graph.fingerprint()
        for _ in range(5):
            assert tiny_graph.fingerprint() == first
        assert len(calls) == 1

    def test_copy_carries_the_memoised_fingerprint(self, tiny_graph):
        fp = tiny_graph.fingerprint()
        clone = tiny_graph.copy()
        assert clone._fingerprint == fp     # no re-hash needed
        assert clone.fingerprint() == fp

    def test_copy_before_fingerprinting_hashes_lazily(self, tiny_graph):
        clone = tiny_graph.copy()
        assert clone._fingerprint is None
        assert clone.fingerprint() == tiny_graph.fingerprint()
