"""Unit tests for graph IO round-trips."""

from __future__ import annotations

import io

import numpy as np

from repro.graph import (
    load_npz,
    powerlaw_cluster,
    read_edge_list,
    read_metis,
    save_npz,
    write_edge_list,
    write_metis,
)


class TestEdgeListIO:
    def test_roundtrip_via_file(self, tmp_path, tiny_graph):
        path = tmp_path / "tiny.txt"
        write_edge_list(tiny_graph, path)
        loaded = read_edge_list(path, num_vertices=tiny_graph.num_vertices)
        assert loaded.num_undirected_edges == tiny_graph.num_undirected_edges
        for u, v in tiny_graph.undirected_edge_array():
            assert loaded.has_edge(int(u), int(v))

    def test_roundtrip_via_stream(self, tiny_graph):
        buffer = io.StringIO()
        write_edge_list(tiny_graph, buffer)
        buffer.seek(0)
        loaded = read_edge_list(buffer, num_vertices=tiny_graph.num_vertices)
        assert loaded.num_undirected_edges == tiny_graph.num_undirected_edges

    def test_comments_and_blank_lines_skipped(self):
        text = io.StringIO("# comment\n\n% another\n0 1\n1 2\n")
        g = read_edge_list(text)
        assert g.num_vertices == 3
        assert g.num_undirected_edges == 2

    def test_infers_vertex_count(self):
        g = read_edge_list(io.StringIO("0 9\n"))
        assert g.num_vertices == 10

    def test_header_written(self, tmp_path, tiny_graph):
        path = tmp_path / "h.txt"
        write_edge_list(tiny_graph, path, header=True)
        assert path.read_text().startswith("#")


class TestNpzIO:
    def test_roundtrip(self, tmp_path):
        g = powerlaw_cluster(120, m=2, seed=3)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        loaded = load_npz(path)
        assert loaded.name == g.name
        assert loaded.num_vertices == g.num_vertices
        assert np.array_equal(loaded.xadj, g.xadj)
        assert np.array_equal(loaded.adj, g.adj)
        assert loaded.undirected == g.undirected


class TestMetisIO:
    def test_roundtrip(self, tmp_path, tiny_graph):
        path = tmp_path / "tiny.metis"
        write_metis(tiny_graph, path)
        loaded = read_metis(path)
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert loaded.num_undirected_edges == tiny_graph.num_undirected_edges
        for u, v in tiny_graph.undirected_edge_array():
            assert loaded.has_edge(int(u), int(v))
