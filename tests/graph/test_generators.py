"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    barabasi_albert,
    complete,
    erdos_renyi,
    grid_2d,
    powerlaw_cluster,
    ring,
    rmat,
    social_community,
    star,
    stochastic_block_model,
    watts_strogatz,
)


class TestErdosRenyi:
    def test_edge_count_mode(self):
        g = erdos_renyi(50, m=100, seed=0)
        assert g.num_vertices == 50
        assert g.num_undirected_edges == 100

    def test_probability_mode(self):
        g = erdos_renyi(60, p=0.1, seed=1)
        expected = 0.1 * 60 * 59 / 2
        assert 0.3 * expected < g.num_undirected_edges < 2.0 * expected

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValueError):
            erdos_renyi(10)
        with pytest.raises(ValueError):
            erdos_renyi(10, p=0.1, m=5)

    def test_deterministic_with_seed(self):
        a = erdos_renyi(40, m=60, seed=7)
        b = erdos_renyi(40, m=60, seed=7)
        assert np.array_equal(a.adj, b.adj)

    def test_no_self_loops(self):
        g = erdos_renyi(30, m=80, seed=2)
        for v in range(30):
            assert v not in g.neighbors(v)


class TestBarabasiAlbert:
    def test_size_and_connectivity(self):
        g = barabasi_albert(200, m=3, seed=0)
        assert g.num_vertices == 200
        # every vertex added after the seed has at least m edges
        assert np.all(g.degrees[3:] >= 3)

    def test_degree_skew(self):
        g = barabasi_albert(500, m=3, seed=0)
        assert g.degrees.max() > 5 * np.median(g.degrees)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, m=5)


class TestRmat:
    def test_size(self):
        g = rmat(8, edge_factor=8, seed=0)
        assert g.num_vertices == 256
        assert g.num_undirected_edges > 0

    def test_skewed_degrees(self):
        g = rmat(9, edge_factor=8, seed=0)
        assert g.degrees.max() > 4 * max(np.median(g.degrees), 1)

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            rmat(5, a=0.5, b=0.4, c=0.3)


class TestStochasticBlockModel:
    def test_blocks_denser_than_cross(self):
        g = stochastic_block_model([100, 100], p_in=0.2, p_out=0.005, seed=0)
        intra = sum(1 for u, v in g.undirected_edge_array() if (u < 100) == (v < 100))
        inter = g.num_undirected_edges - intra
        assert intra > 3 * inter

    def test_vertex_count(self):
        g = stochastic_block_model([30, 40, 50], p_in=0.2, p_out=0.01, seed=0)
        assert g.num_vertices == 120

    def test_zero_out_probability(self):
        g = stochastic_block_model([50, 50], p_in=0.3, p_out=0.0, seed=0)
        cross = [(u, v) for u, v in g.undirected_edge_array() if (u < 50) != (v < 50)]
        assert not cross


class TestWattsStrogatz:
    def test_degree_regularity_without_rewiring(self):
        g = watts_strogatz(100, k=6, beta=0.0, seed=0)
        assert np.all(g.degrees == 6)

    def test_odd_k_raises(self):
        with pytest.raises(ValueError):
            watts_strogatz(50, k=5)

    def test_rewiring_changes_edges(self):
        a = watts_strogatz(100, k=6, beta=0.0, seed=0)
        b = watts_strogatz(100, k=6, beta=0.9, seed=0)
        assert not np.array_equal(a.adj, b.adj)


class TestPowerlawCluster:
    def test_size(self):
        g = powerlaw_cluster(150, m=3, seed=0)
        assert g.num_vertices == 150
        assert np.all(g.degrees[3:] >= 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            powerlaw_cluster(3, m=5)


class TestSocialCommunity:
    def test_size_and_density(self):
        g = social_community(400, intra_degree=8, seed=0)
        assert g.num_vertices == 400
        assert 2.0 < g.density < 20.0

    def test_hubs_present(self):
        g = social_community(600, intra_degree=6, hub_fraction=0.01, hub_reach=0.1, seed=0)
        assert g.degrees.max() > 4 * np.median(g.degrees)

    def test_too_small_raises(self):
        with pytest.raises(ValueError):
            social_community(10)

    def test_deterministic(self):
        a = social_community(300, seed=5)
        b = social_community(300, seed=5)
        assert np.array_equal(a.adj, b.adj)


class TestSimpleTopologies:
    def test_star(self):
        g = star(10)
        assert g.degree(0) == 9
        assert np.all(g.degrees[1:] == 1)

    def test_ring(self):
        g = ring(12)
        assert np.all(g.degrees == 2)
        assert g.num_undirected_edges == 12

    def test_complete(self):
        g = complete(6)
        assert g.num_undirected_edges == 15
        assert np.all(g.degrees == 5)

    def test_grid(self):
        g = grid_2d(4, 5)
        assert g.num_vertices == 20
        assert g.num_undirected_edges == 4 * 4 + 3 * 5
