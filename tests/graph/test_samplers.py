"""Unit tests for positive/negative samplers and the alias table."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    AliasTable,
    NegativeSampler,
    PositiveSampler,
    ring,
    sample_negative_batch,
    sample_positive_batch,
    star,
)


class TestPositiveBatch:
    def test_samples_are_neighbors(self, tiny_graph, rng):
        sources = np.arange(tiny_graph.num_vertices)
        samples = sample_positive_batch(tiny_graph, sources, rng)
        for v, s in zip(sources, samples):
            assert s in tiny_graph.neighbors(int(v))

    def test_isolated_vertex_returns_minus_one(self, rng):
        from repro.graph import CSRGraph

        g = CSRGraph.from_edges(3, [(0, 1)])
        samples = sample_positive_batch(g, np.array([2]), rng)
        assert samples[0] == -1

    def test_star_leaves_sample_center(self, star_graph, rng):
        leaves = np.arange(1, star_graph.num_vertices)
        samples = sample_positive_batch(star_graph, leaves, rng)
        assert np.all(samples == 0)

    def test_coverage_of_neighbors(self, ring_graph, rng):
        # Over many draws, both neighbours of a ring vertex must appear.
        draws = sample_positive_batch(ring_graph, np.full(200, 5), rng)
        assert set(np.unique(draws)) == {4, 6}


class TestNegativeBatch:
    def test_range(self, rng):
        samples = sample_negative_batch(100, (50, 3), rng)
        assert samples.shape == (50, 3)
        assert samples.min() >= 0 and samples.max() < 100

    def test_restricted_sampling(self, rng):
        allowed = np.array([7, 9, 11])
        samples = sample_negative_batch(100, 200, rng, restrict_to=allowed)
        assert set(np.unique(samples)).issubset(set(allowed.tolist()))


class TestAliasTable:
    def test_uniform_weights(self, rng):
        table = AliasTable.from_weights(np.ones(10))
        samples = table.sample(5000, rng)
        counts = np.bincount(samples, minlength=10)
        assert counts.min() > 300  # roughly uniform

    def test_skewed_weights(self, rng):
        weights = np.array([100.0, 1.0, 1.0, 1.0])
        table = AliasTable.from_weights(weights)
        samples = table.sample(5000, rng)
        counts = np.bincount(samples, minlength=4)
        assert counts[0] > 0.8 * 5000

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            AliasTable.from_weights(np.array([]))
        with pytest.raises(ValueError):
            AliasTable.from_weights(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            AliasTable.from_weights(np.zeros(3))


class TestSamplerClasses:
    def test_positive_sampler_adjacency(self, tiny_graph):
        sampler = PositiveSampler(tiny_graph, strategy="adjacency", seed=0)
        sources = np.arange(tiny_graph.num_vertices)
        samples = sampler.sample(sources)
        for v, s in zip(sources, samples):
            assert s in tiny_graph.neighbors(int(v))

    def test_positive_sampler_ppr_stays_in_component(self):
        g = ring(10)
        sampler = PositiveSampler(g, strategy="ppr", walk_length=3, seed=0)
        samples = sampler.sample(np.arange(10))
        assert samples.min() >= 0 and samples.max() < 10

    def test_unknown_strategy(self, tiny_graph):
        with pytest.raises(ValueError):
            PositiveSampler(tiny_graph, strategy="bogus")

    def test_negative_sampler_uniform(self):
        sampler = NegativeSampler(50, seed=0)
        samples = sampler.sample((100, 2))
        assert samples.shape == (100, 2)
        assert samples.max() < 50

    def test_negative_sampler_degree_power(self, star_graph):
        sampler = NegativeSampler(star_graph.num_vertices, degrees=star_graph.degrees,
                                  power=0.75, seed=0)
        samples = sampler.sample(2000)
        counts = np.bincount(samples, minlength=star_graph.num_vertices)
        # the hub (vertex 0) has far higher degree, so it must be sampled more
        assert counts[0] > 2 * counts[1:].mean()

    def test_negative_power_requires_degrees(self):
        with pytest.raises(ValueError):
            NegativeSampler(10, power=0.75)

    def test_sample_pairs_for_part(self, tiny_graph):
        sampler = PositiveSampler(tiny_graph, seed=0)
        part_a = np.array([0, 1])
        mask = np.zeros(tiny_graph.num_vertices, dtype=bool)
        mask[[2, 3]] = True
        src, dst = sampler.sample_pairs_for_part(part_a, mask, count_per_vertex=4)
        assert src.shape == dst.shape
        for s, d in zip(src, dst):
            assert s in (0, 1)
            assert d in (2, 3)
            assert tiny_graph.has_edge(int(s), int(d))
