"""Unit tests for vertex partitioning and graph statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    VertexPartition,
    compute_num_parts,
    compute_stats,
    connected_components,
    contiguous_partition,
    degree_histogram,
    largest_component,
    ring,
    star,
)
from repro.graph.csr import CSRGraph
from repro.graph.partition import partition_degrees


class TestContiguousPartition:
    def test_covers_all_vertices(self):
        p = contiguous_partition(100, 7)
        p.validate()
        assert p.num_parts == 7
        assert sum(len(part) for part in p.parts) == 100

    def test_single_part(self):
        p = contiguous_partition(10, 1)
        assert p.num_parts == 1
        assert len(p.parts[0]) == 10

    def test_more_parts_than_vertices(self):
        p = contiguous_partition(3, 10)
        p.validate()
        assert p.num_parts == 3

    def test_invalid_num_parts(self):
        with pytest.raises(ValueError):
            contiguous_partition(10, 0)

    def test_mask(self):
        p = contiguous_partition(10, 2)
        mask = p.mask(0)
        assert mask.sum() == len(p.parts[0])
        assert np.all(mask[p.parts[0]])

    def test_part_sizes_balanced(self):
        p = contiguous_partition(103, 4)
        sizes = p.part_sizes()
        assert sizes.max() - sizes.min() <= 1

    def test_validate_detects_overlap(self):
        p = contiguous_partition(10, 2)
        broken = VertexPartition(num_vertices=10, part_of=p.part_of,
                                 parts=[p.parts[0], p.parts[0]])
        with pytest.raises(ValueError):
            broken.validate()


class TestComputeNumParts:
    def test_fits_entirely(self):
        # 1000 vertices x 16 dims x 4 bytes = 64 KB, device has 1 MB.
        assert compute_num_parts(1000, 16, 4, 1 << 20) == 1

    def test_partitioning_needed(self):
        k = compute_num_parts(10_000, 64, 4, 256 * 1024, resident_parts=3)
        assert k >= 2
        # three parts of size ceil(n/k) must fit in 85% of the device
        per_part = int(np.ceil(10_000 / k)) * 64 * 4
        assert 3 * per_part <= 256 * 1024 * 0.85 * 1.01

    def test_tiny_device_raises(self):
        with pytest.raises(ValueError):
            compute_num_parts(100, 1024, 8, 1024)

    def test_zero_vertices(self):
        assert compute_num_parts(0, 8, 4, 1 << 20) == 1


class TestStats:
    def test_star_stats(self, star_graph):
        stats = compute_stats(star_graph)
        assert stats.max_degree == star_graph.num_vertices - 1
        assert stats.isolated_vertices == 0
        assert stats.degree_skew > 1.0

    def test_ring_stats(self, ring_graph):
        stats = compute_stats(ring_graph)
        assert stats.max_degree == 2
        assert stats.degree_skew == pytest.approx(0.0)
        assert stats.density == pytest.approx(1.0)

    def test_as_row_keys(self, ring_graph):
        row = compute_stats(ring_graph).as_row()
        assert {"Graph", "|V|", "|E|", "Density"}.issubset(row.keys())

    def test_degree_histogram(self, star_graph):
        hist, edges = degree_histogram(star_graph, bins=8)
        assert hist.sum() == star_graph.num_vertices


class TestComponents:
    def test_single_component(self, ring_graph):
        labels = connected_components(ring_graph)
        assert np.all(labels == labels[0])

    def test_two_components(self):
        g = CSRGraph.from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        labels = connected_components(g)
        assert labels[0] == labels[2]
        assert labels[3] == labels[5]
        assert labels[0] != labels[3]

    def test_largest_component(self):
        g = CSRGraph.from_edges(7, [(0, 1), (1, 2), (2, 3), (4, 5)])
        sub, original = largest_component(g)
        assert sub.num_vertices == 4
        assert set(original.tolist()) == {0, 1, 2, 3}


class TestPartitionDegrees:
    def test_total_matches(self, star_graph):
        p = contiguous_partition(star_graph.num_vertices, 3)
        per_part = partition_degrees(star_graph, p)
        assert per_part.sum() == star_graph.num_edges
