"""Sampler-backend suite: registry, golden parity, and distribution pins.

The parity tests are the contract of the subsystem: the ``"reference"``
per-vertex loop and the ``"vectorized"`` whole-part batched sampler must draw
*identical* ``(src, dst)`` arrays from a shared seeded Generator, because
both consume one row of ``B`` float64 uniforms per eligible vertex.  The
distributional tests pin the paper's "almost equivalent to B×K epochs"
semantics: every dst lands in the partner part, eligible vertices contribute
exactly ``B`` pairs, and isolated / partner-less vertices contribute none.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    CSRGraph,
    DEFAULT_SAMPLER_BACKEND,
    DegreeBiasedSamplerBackend,
    PositiveSampler,
    ReferenceSamplerBackend,
    UnknownSamplerBackendError,
    VectorizedSamplerBackend,
    available_sampler_backends,
    build_filtered_adjacency,
    contiguous_partition,
    get_sampler_backend,
    powerlaw_cluster,
    register_sampler_backend,
    ring,
    social_community,
    star,
)
from repro.graph.sampler_backends import FilteredAdjacencyCache, pick_indices

BACKENDS = ("reference", "vectorized")
#: Every built-in, including the weighted sampler (no reference-parity claim).
ALL_BACKENDS = BACKENDS + ("degree_biased",)


def _pair_draw(graph, part_vertices, partner_mask, B, backend, seed=123):
    sampler = PositiveSampler(graph, seed=seed, sampler_backend=backend)
    return sampler.sample_pairs_for_part(part_vertices, partner_mask, B)


class TestRegistry:
    def test_builtins_available(self):
        names = available_sampler_backends()
        assert "reference" in names and "vectorized" in names

    def test_default_is_vectorized(self):
        assert DEFAULT_SAMPLER_BACKEND == "vectorized"
        assert get_sampler_backend(None).name == "vectorized"

    def test_name_lookup_is_cached_singleton(self):
        assert get_sampler_backend("reference") is get_sampler_backend("reference")
        assert get_sampler_backend("vectorized") is get_sampler_backend("VECTORIZED")

    def test_instance_passthrough(self):
        custom = ReferenceSamplerBackend()
        assert get_sampler_backend(custom) is custom

    def test_unknown_backend_raises(self):
        with pytest.raises(UnknownSamplerBackendError) as exc:
            get_sampler_backend("warp-speed")
        assert "warp-speed" in str(exc.value)
        assert "vectorized" in str(exc.value)

    def test_register_and_replace_guard(self):
        with pytest.raises(ValueError):
            register_sampler_backend("reference", ReferenceSamplerBackend)
        register_sampler_backend("reference", ReferenceSamplerBackend, replace=True)
        assert isinstance(get_sampler_backend("reference"), ReferenceSamplerBackend)


class TestFilteredAdjacency:
    def test_rows_equal_masked_neighbour_lists(self, tiny_graph):
        part = np.array([0, 1, 4], dtype=np.int64)
        mask = np.zeros(tiny_graph.num_vertices, dtype=bool)
        mask[[2, 3, 5]] = True
        filt = build_filtered_adjacency(tiny_graph, part, mask)
        for i, v in enumerate(part):
            expected = tiny_graph.neighbors(int(v))
            expected = expected[mask[expected]]
            row = filt.targets[filt.offsets[i]: filt.offsets[i + 1]]
            assert np.array_equal(row, expected)

    def test_empty_part(self, tiny_graph):
        filt = build_filtered_adjacency(tiny_graph, np.zeros(0, dtype=np.int64),
                                        np.ones(tiny_graph.num_vertices, dtype=bool))
        assert filt.offsets.shape == (1,)
        assert filt.targets.shape == (0,)

    def test_part_of_isolated_vertices(self):
        g = CSRGraph.from_edges(5, [(0, 1)])
        filt = build_filtered_adjacency(g, np.array([2, 3, 4]), np.ones(5, dtype=bool))
        assert np.array_equal(filt.counts, [0, 0, 0])
        assert filt.targets.shape == (0,)

    def test_cache_reuses_entries(self):
        g = social_community(120, intra_degree=4, seed=1)
        partition = contiguous_partition(g.num_vertices, 3)
        cache = FilteredAdjacencyCache(g, partition)
        first = cache.get(0, 1)
        again = cache.get(0, 1)
        other = cache.get(1, 0)
        assert again is first and other is not first
        stats = cache.stats()
        assert stats["builds"] == 2 and stats["hits"] == 1 and stats["entries"] == 2
        assert stats["nbytes"] > 0

    def test_cached_entry_matches_fresh_build(self):
        g = social_community(120, intra_degree=4, seed=1)
        partition = contiguous_partition(g.num_vertices, 3)
        cache = FilteredAdjacencyCache(g, partition)
        cached = cache.get(2, 0)
        fresh = build_filtered_adjacency(g, partition.parts[2], partition.mask(0))
        assert np.array_equal(cached.offsets, fresh.offsets)
        assert np.array_equal(cached.targets, fresh.targets)


class TestPickIndices:
    def test_in_range_and_floor_semantics(self):
        u = np.array([0.0, 0.49, 0.5, 0.999])
        assert np.array_equal(pick_indices(u, 2), [0, 0, 1, 1])

    def test_scalar_and_column_counts_agree(self):
        rng = np.random.default_rng(0)
        u = rng.random((6, 4))
        counts = np.array([1, 2, 3, 5, 8, 13])
        stacked = np.stack([pick_indices(u[i], int(counts[i])) for i in range(6)])
        assert np.array_equal(pick_indices(u, counts[:, None]), stacked)
        assert (pick_indices(u, counts[:, None]) < counts[:, None]).all()


class TestGoldenParity:
    """reference and vectorized draw identical pairs under a shared seed."""

    @pytest.mark.parametrize("B", [1, 2, 5, 9])
    def test_identical_arrays_on_community_graph(self, B):
        g = social_community(300, intra_degree=5, seed=3)
        partition = contiguous_partition(g.num_vertices, 3)
        mask = partition.mask(1)
        ref = _pair_draw(g, partition.parts[0], mask, B, "reference")
        vec = _pair_draw(g, partition.parts[0], mask, B, "vectorized")
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])
        assert ref[0].shape[0] > 0

    @pytest.mark.parametrize("graph_factory", [
        lambda: powerlaw_cluster(200, m=3, seed=1),
        lambda: star(40),
        lambda: ring(64),
        lambda: CSRGraph.from_edges(8, [(0, 1), (2, 3)]),   # mostly isolated
        lambda: CSRGraph.empty(12),                          # fully isolated
    ])
    def test_identical_arrays_across_graph_shapes(self, graph_factory):
        g = graph_factory()
        n = g.num_vertices
        part_a = np.arange(n // 2, dtype=np.int64)
        mask = np.zeros(n, dtype=bool)
        mask[n // 2:] = True
        ref = _pair_draw(g, part_a, mask, 4, "reference", seed=7)
        vec = _pair_draw(g, part_a, mask, 4, "vectorized", seed=7)
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])

    def test_parity_with_self_pair_mask(self):
        """(V^a, V^a) pools: the partner mask covers the part itself."""
        g = social_community(200, intra_degree=6, seed=0)
        partition = contiguous_partition(g.num_vertices, 4)
        mask = partition.mask(2)
        ref = _pair_draw(g, partition.parts[2], mask, 3, "reference")
        vec = _pair_draw(g, partition.parts[2], mask, 3, "vectorized")
        assert np.array_equal(ref[0], vec[0])
        assert np.array_equal(ref[1], vec[1])

    def test_parity_survives_interleaved_calls(self):
        """Pools are drawn from one shared RNG stream across many calls —
        the whole sequence must match, not just a single draw."""
        g = social_community(240, intra_degree=5, seed=2)
        partition = contiguous_partition(g.num_vertices, 4)
        samplers = {name: PositiveSampler(g, seed=42, sampler_backend=name)
                    for name in BACKENDS}
        for a in range(4):
            for b in range(4):
                draws = {name: s.sample_pairs_for_part(
                    partition.parts[a], partition.mask(b), 2)
                    for name, s in samplers.items()}
                assert np.array_equal(draws["reference"][0], draws["vectorized"][0])
                assert np.array_equal(draws["reference"][1], draws["vectorized"][1])


class TestDistribution:
    @pytest.fixture
    def setup(self):
        g = social_community(300, intra_degree=6, seed=4)
        partition = contiguous_partition(g.num_vertices, 3)
        return g, partition

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_src_in_part_a_dst_in_part_b(self, setup, backend):
        g, partition = setup
        src, dst = _pair_draw(g, partition.parts[0], partition.mask(1), 5, backend)
        assert np.all(partition.part_of[src] == 0)
        assert np.all(partition.part_of[dst] == 1)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_every_pair_is_an_edge(self, setup, backend):
        g, partition = setup
        src, dst = _pair_draw(g, partition.parts[2], partition.mask(0), 3, backend)
        for s, d in zip(src, dst):
            assert g.has_edge(int(s), int(d))

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_eligible_vertices_contribute_exactly_B(self, setup, backend):
        g, partition = setup
        B = 4
        mask = partition.mask(1)
        src, _ = _pair_draw(g, partition.parts[0], mask, B, backend)
        counts = np.bincount(src, minlength=g.num_vertices)
        # Every vertex contributes 0 (no partner-part neighbour) or exactly B.
        assert set(np.unique(counts[partition.parts[0]])).issubset({0, B})
        for v in partition.parts[0]:
            nbrs = g.neighbors(int(v))
            eligible = bool(nbrs.shape[0]) and bool(mask[nbrs].any())
            assert counts[v] == (B if eligible else 0)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_isolated_vertices_excluded(self, backend):
        g = CSRGraph.from_edges(6, [(0, 3), (1, 4)])   # 2 and 5 isolated
        mask = np.zeros(6, dtype=bool)
        mask[3:] = True
        src, dst = _pair_draw(g, np.array([0, 1, 2]), mask, 3, backend)
        assert 2 not in src
        assert np.array_equal(np.unique(src), [0, 1])

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_vertex_without_partner_neighbours_excluded(self, backend):
        # 0-1 edge stays inside part_a; only 2-3 crosses into the partner.
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3)])
        mask = np.zeros(4, dtype=bool)
        mask[3] = True
        src, dst = _pair_draw(g, np.array([0, 1, 2]), mask, 2, backend)
        assert np.array_equal(np.unique(src), [2])
        assert np.all(dst == 3)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_part_returns_empty_int64(self, setup, backend):
        g, partition = setup
        src, dst = _pair_draw(g, np.zeros(0, dtype=np.int64), partition.mask(0),
                              5, backend)
        assert src.shape == dst.shape == (0,)
        assert src.dtype == dst.dtype == np.int64

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_mask_returns_empty(self, setup, backend):
        g, partition = setup
        src, dst = _pair_draw(g, partition.parts[0],
                              np.zeros(g.num_vertices, dtype=bool), 5, backend)
        assert src.shape == dst.shape == (0,)

    def test_vectorized_covers_all_partner_neighbours(self):
        """Over many draws every partner-part neighbour must appear."""
        g = ring(12)
        mask = np.zeros(12, dtype=bool)
        mask[[1, 11]] = True   # both neighbours of vertex 0
        sampler = PositiveSampler(g, seed=0, sampler_backend="vectorized")
        seen = set()
        for _ in range(40):
            _, dst = sampler.sample_pairs_for_part(np.array([0]), mask, 5)
            seen.update(dst.tolist())
        assert seen == {1, 11}


class TestBackendThroughSampler:
    def test_default_backend_is_registry_default(self, tiny_graph):
        assert PositiveSampler(tiny_graph).backend.name == DEFAULT_SAMPLER_BACKEND

    def test_instance_injection(self, tiny_graph):
        backend = VectorizedSamplerBackend()
        assert PositiveSampler(tiny_graph, sampler_backend=backend).backend is backend

    def test_unknown_backend_name_raises(self, tiny_graph):
        with pytest.raises(UnknownSamplerBackendError):
            PositiveSampler(tiny_graph, sampler_backend="warp-speed")


class TestDegreeBiased:
    """GraphVite-style deg^0.75 weighting of positive-neighbour draws."""

    def _hub_leaf_graph(self, hub_fanout=15):
        # Vertex 0 (the sampled part) has two partner-part neighbours: a hub
        # (vertex 1, degree 1 + hub_fanout) and a leaf (vertex 2, degree 1).
        n = 3 + hub_fanout
        edges = [(0, 1), (0, 2)] + [(1, 3 + i) for i in range(hub_fanout)]
        return CSRGraph.from_edges(n, edges)

    def test_registered_builtin(self):
        assert "degree_biased" in available_sampler_backends()
        backend = get_sampler_backend("degree_biased")
        assert isinstance(backend, DegreeBiasedSamplerBackend)
        assert backend.power == 0.75
        assert backend.uses_filtered_adjacency

    def test_hub_neighbours_oversampled_at_power(self):
        fanout = 15
        g = self._hub_leaf_graph(fanout)
        mask = np.zeros(g.num_vertices, dtype=bool)
        mask[[1, 2]] = True
        draws = 4000
        _, dst = _pair_draw(g, np.array([0]), mask, draws, "degree_biased")
        hub, leaf = int((dst == 1).sum()), int((dst == 2).sum())
        assert hub + leaf == draws
        expected = (1 + fanout) ** 0.75          # deg(hub)^0.75 / deg(leaf)^0.75
        assert hub / max(leaf, 1) == pytest.approx(expected, rel=0.25)

    def test_uniform_backend_has_no_such_bias(self):
        """Control: the uniform sampler splits the same pair evenly."""
        g = self._hub_leaf_graph(15)
        mask = np.zeros(g.num_vertices, dtype=bool)
        mask[[1, 2]] = True
        _, dst = _pair_draw(g, np.array([0]), mask, 4000, "vectorized")
        hub = int((dst == 1).sum())
        assert hub / 4000 == pytest.approx(0.5, abs=0.05)

    def test_equal_degrees_reduce_to_uniform_support(self):
        """On a ring every neighbour has equal degree: both partner
        neighbours must appear, roughly evenly."""
        g = ring(12)
        mask = np.zeros(12, dtype=bool)
        mask[[1, 11]] = True
        _, dst = _pair_draw(g, np.array([0]), mask, 2000, "degree_biased")
        share = int((dst == 1).sum()) / 2000
        assert 0.4 < share < 0.6

    def test_samples_remain_valid_edges(self):
        g = social_community(300, intra_degree=6, seed=4)
        partition = contiguous_partition(g.num_vertices, 3)
        src, dst = _pair_draw(g, partition.parts[0], partition.mask(1), 5,
                              "degree_biased")
        assert src.shape == dst.shape and src.shape[0] > 0
        for s, d in zip(src, dst):
            assert g.has_edge(int(s), int(d))
        assert np.all(partition.part_of[src] == 0)
        assert np.all(partition.part_of[dst] == 1)

    def test_custom_power_instance(self):
        """power=0 degenerates to uniform weighting over the support."""
        g = self._hub_leaf_graph(15)
        mask = np.zeros(g.num_vertices, dtype=bool)
        mask[[1, 2]] = True
        sampler = PositiveSampler(g, seed=123,
                                  sampler_backend=DegreeBiasedSamplerBackend(power=0.0))
        _, dst = sampler.sample_pairs_for_part(np.array([0]), mask, 4000)
        assert int((dst == 1).sum()) / 4000 == pytest.approx(0.5, abs=0.05)
