"""Tests for the load-generation harness (closed/open loop, rejection math)."""

from __future__ import annotations

import json
import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api import EmbeddingService
from repro.graph import powerlaw_cluster
from repro.loadgen import LoadConfig, LoadGenerator
from repro.serve import QueryServer, ServerThread

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    graph = powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)
    service = EmbeddingService(dim=8, epoch_scale=0.02,
                               store=tmp_path_factory.mktemp("store"))
    service.ensure_stored("gosh-fast", graph)
    server = QueryServer(service, {"g": graph}, default_tool="gosh-fast")
    handle = ServerThread(server)
    address = handle.start()
    yield address, server
    handle.stop()


class TestClosedLoop:
    def test_fixed_request_count_is_deterministic(self, served):
        address, _ = served
        report = LoadGenerator(LoadConfig(
            address=address, clients=2, mode="closed", duration_s=60.0,
            requests_per_client=5, num_vertices=300, seed=1)).run()
        assert report.sent == 10
        assert report.answered == 10
        assert report.rejected == 0 and report.errors == 0
        assert report.timeouts == 0 and report.disconnects == 0

    def test_report_statistics_are_coherent(self, served):
        address, _ = served
        report = LoadGenerator(LoadConfig(
            address=address, clients=3, mode="closed", duration_s=0.5,
            num_vertices=300)).run()
        assert report.answered > 0
        assert report.queries_per_s > 0
        lat = report.latency_ms
        assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
        assert report.rejection_rate == 0.0
        assert 0.0 <= report.queue_wait_share <= 1.0
        # Server-side breakdown was captured for every answered request.
        assert report.queue_wait_ms["count"] == report.answered
        # The report is a JSON artifact (record_perf_json feeds on it).
        payload = json.loads(json.dumps(report.as_json()))
        assert payload["answered"] == report.answered
        assert set(payload["latency_ms"]) == {"count", "mean", "p50", "p95",
                                              "p99", "max"}


class TestOpenLoop:
    def test_open_loop_offers_rate_limited_load(self, served):
        address, _ = served
        report = LoadGenerator(LoadConfig(
            address=address, clients=2, mode="open", duration_s=0.5,
            rate_per_client=40.0, num_vertices=300)).run()
        # 2 clients x 40/s x 0.5s = 40 offered; allow scheduling slack.
        assert 20 <= report.sent <= 44
        assert report.answered == report.sent     # healthy server keeps up
        assert report.timeouts == 0


class TestOverloadAccounting:
    def test_rejections_and_timeouts_are_counted(self):
        """Against a saturated server (blocked service, inflight cap 1) the
        closed-loop harness must report rejections, not hang or crash."""
        release = threading.Event()

        class Blocked:
            def query_batch(self, requests):
                assert release.wait(timeout=30)
                return [SimpleNamespace(
                    ids=np.zeros((r.num_queries, r.k), dtype=np.int64),
                    scores=np.zeros((r.num_queries, r.k), dtype=np.float32),
                    store_hit=True, entry=SimpleNamespace(version=1))
                    for r in requests]

            def stats(self):
                return {}

        server = QueryServer(Blocked(), {"g": object()}, default_tool="stub",
                             max_inflight=1, queue_depth=1)
        handle = ServerThread(server)
        address = handle.start()
        try:
            report = LoadGenerator(LoadConfig(
                address=address, clients=3, mode="closed", duration_s=0.3,
                timeout_s=1.0, num_vertices=10)).run()
        finally:
            release.set()
            handle.stop()
        # One client's request is stuck in service (-> timeout), the others
        # are refused at admission.
        assert report.rejected > 0
        assert report.rejection_rate > 0
        assert report.timeouts >= 1
        assert report.answered == 0


class TestDeadlines:
    @pytest.fixture()
    def blackhole(self):
        """A server that accepts connections and reads, but never replies."""
        import socket

        listener = socket.create_server(("127.0.0.1", 0))
        listener.settimeout(0.1)
        address = f"127.0.0.1:{listener.getsockname()[1]}"
        stop = threading.Event()

        def swallow(conn):
            with conn:
                try:
                    while conn.recv(65536):
                        pass
                except OSError:
                    pass

        def accept_loop():
            while not stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                threading.Thread(target=swallow, args=(conn,),
                                 daemon=True).start()

        thread = threading.Thread(target=accept_loop, daemon=True)
        thread.start()
        yield address
        stop.set()
        thread.join(timeout=10.0)
        listener.close()

    def test_blackholed_address_counts_timeouts_within_the_deadline(
            self, blackhole):
        """A server that accepts and then goes silent must not hang the
        closed loop past ``timeout_s``: every await inside a request shares
        the wall-clock deadline and the miss is tallied as a timeout."""
        import time

        start = time.monotonic()
        report = LoadGenerator(LoadConfig(
            address=blackhole, clients=2, mode="closed", duration_s=5.0,
            timeout_s=0.4, num_vertices=10)).run()
        elapsed = time.monotonic() - start
        assert report.timeouts == 2              # one per client, then stop
        assert report.answered == 0
        assert elapsed < 4.0                     # bounded by deadlines, not
                                                 # by duration_s
    @pytest.fixture(scope="class")
    def second_served(self, tmp_path_factory):
        graph = powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)
        service = EmbeddingService(dim=8, epoch_scale=0.02,
                                   store=tmp_path_factory.mktemp("store2"))
        service.ensure_stored("gosh-fast", graph)
        server = QueryServer(service, {"g": graph}, default_tool="gosh-fast")
        handle = ServerThread(server)
        address = handle.start()
        yield address, server
        handle.stop()

    def test_clients_round_robin_over_addresses(self, served, second_served):
        addr1, server1 = served
        addr2, server2 = second_served
        before1, before2 = server1.queries_answered, server2.queries_answered
        report = LoadGenerator(LoadConfig(
            address=[addr1, addr2], clients=4, mode="closed", duration_s=60.0,
            requests_per_client=5, num_vertices=300, seed=3)).run()
        # 4 clients round-robin over 2 addresses: 2 clients x 5 each per server.
        assert report.sent == 20 and report.answered == 20
        assert report.addresses == [addr1, addr2]
        assert server1.queries_answered - before1 == 10
        assert server2.queries_answered - before2 == 10
        # The per-address breakdown partitions the merged totals exactly.
        assert set(report.per_address) == {addr1, addr2}
        for side in report.per_address.values():
            assert side["answered"] == 10
            assert side["rejected"] == side["errors"] == side["timeouts"] == 0
            assert side["latency_ms"]["count"] == 10
        assert sum(s["sent"] for s in report.per_address.values()) == report.sent
        payload = report.as_json()
        assert payload["addresses"] == [addr1, addr2]
        assert set(payload["per_address"]) == {addr1, addr2}
        # The human summary gains per-address lines only in multi-address runs.
        assert any(addr2 in line for line in report.summary_lines())

    def test_single_address_string_still_works(self, served):
        address, _ = served
        config = LoadConfig(address=address, clients=1, mode="closed",
                            duration_s=60.0, requests_per_client=2,
                            num_vertices=300)
        assert config.address == (address,)
        report = LoadGenerator(config).run()
        assert report.answered == 2
        assert report.addresses == [address]
        # Single-address reports keep the compact summary (no per-line spam).
        assert not any("per-address" in line for line in report.summary_lines())


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"mode": "sideways"},
        {"clients": 0},
        {"duration_s": 0},
        {"mode": "open", "rate_per_client": 0},
        {"num_vertices": 0},
    ])
    def test_bad_configs_raise(self, kwargs):
        with pytest.raises(ValueError):
            LoadConfig(address="127.0.0.1:1", **kwargs)

    @pytest.mark.parametrize("address", [[], [""], ["ok:1", ""]])
    def test_bad_address_lists_raise(self, address):
        with pytest.raises(ValueError):
            LoadConfig(address=address)
