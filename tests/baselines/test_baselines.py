"""Tests for the MILE and GraphVite-like baseline pipelines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    GraphViteConfig,
    MileConfig,
    graphvite_embed,
    mile_embed,
)
from repro.gpu import DeviceMemoryError, DeviceSpec, SimulatedDevice
from repro.graph import social_community


@pytest.fixture
def graph():
    return social_community(300, intra_degree=8, seed=2)


class TestMile:
    def test_end_to_end_shapes(self, graph):
        cfg = MileConfig(dim=16, coarsening_levels=3, base_epochs=10, seed=0)
        result = mile_embed(graph, cfg)
        assert result.embedding.shape == (graph.num_vertices, 16)
        assert result.hierarchy.num_levels >= 2
        assert result.total_seconds > 0
        assert result.coarsening_seconds > 0

    def test_refinement_smooths_neighbors(self, graph):
        cfg = MileConfig(dim=16, coarsening_levels=3, base_epochs=20,
                         refinement_hops=2, seed=0)
        result = mile_embed(graph, cfg)
        emb = result.embedding
        edges = graph.undirected_edge_array()
        rng = np.random.default_rng(0)
        ru = rng.integers(0, graph.num_vertices, edges.shape[0])
        rv = rng.integers(0, graph.num_vertices, edges.shape[0])
        pos = np.einsum("ij,ij->i", emb[edges[:, 0]], emb[edges[:, 1]]).mean()
        rnd = np.einsum("ij,ij->i", emb[ru], emb[rv]).mean()
        assert pos > rnd

    def test_fewer_levels_than_requested_on_small_graph(self):
        small = social_community(60, intra_degree=4, seed=0)
        result = mile_embed(small, MileConfig(dim=8, coarsening_levels=10, base_epochs=2, seed=0))
        assert result.hierarchy.num_levels <= 11


class TestGraphViteLike:
    def test_runs_when_memory_sufficient(self, graph):
        cfg = GraphViteConfig(dim=16, epochs=10, seed=0)
        result = graphvite_embed(graph, cfg, device=SimulatedDevice())
        assert result.embedding.shape == (graph.num_vertices, 16)
        assert result.episodes == 10

    def test_fails_without_partitioning_when_memory_small(self, graph):
        """The paper's Table 7 behaviour: GraphVite cannot embed what does not fit."""
        tiny = SimulatedDevice(spec=DeviceSpec(name="tiny", memory_bytes=8 * 1024))
        with pytest.raises(DeviceMemoryError):
            graphvite_embed(graph, GraphViteConfig(dim=16, epochs=5), device=tiny)

    def test_embedding_learns_edges(self, graph):
        cfg = GraphViteConfig(dim=16, epochs=60, learning_rate=0.05, seed=0)
        result = graphvite_embed(graph, cfg, device=SimulatedDevice())
        emb = result.embedding
        edges = graph.undirected_edge_array()
        rng = np.random.default_rng(0)
        ru = rng.integers(0, graph.num_vertices, edges.shape[0])
        rv = rng.integers(0, graph.num_vertices, edges.shape[0])
        pos = np.einsum("ij,ij->i", emb[edges[:, 0]], emb[edges[:, 1]]).mean()
        rnd = np.einsum("ij,ij->i", emb[ru], emb[rv]).mean()
        assert pos > rnd

    def test_degree_biased_negatives_used(self, graph):
        # power=0.75 is the default; just ensure the config plumbs through.
        cfg = GraphViteConfig(dim=8, epochs=2, negative_power=0.75, seed=0)
        result = graphvite_embed(graph, cfg, device=SimulatedDevice())
        assert result.embedding.shape[1] == 8
