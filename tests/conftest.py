"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import CSRGraph, powerlaw_cluster, ring, star, stochastic_block_model


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """A hand-built 6-vertex graph with a hub (vertex 0) and a tail."""
    edges = [(0, 1), (0, 2), (0, 3), (1, 2), (3, 4), (4, 5)]
    return CSRGraph.from_edges(6, edges, undirected=True, name="tiny")


@pytest.fixture
def small_power_graph() -> CSRGraph:
    """A ~300-vertex power-law graph with clustering (fast to embed)."""
    return powerlaw_cluster(300, m=3, p_triangle=0.5, seed=7)


@pytest.fixture
def community_graph() -> CSRGraph:
    """A 4-block SBM whose structure an embedding must recover."""
    return stochastic_block_model([80, 80, 80, 80], p_in=0.15, p_out=0.005, seed=3)


@pytest.fixture
def star_graph() -> CSRGraph:
    return star(50)


@pytest.fixture
def ring_graph() -> CSRGraph:
    return ring(64)
