"""`ShardRouter` — horizontal scale-out for the resident serving tier.

One :class:`~repro.serve.server.QueryServer` process is the ceiling on
serving throughput; the router removes it the way the paper's multi-worker
partitioning removes the training ceiling: **partition the vertex space,
fan out, merge**.  Each graph's rows are split into N contiguous ranges
(:func:`partition_ranges`); shard *s* is an ordinary ``QueryServer`` that
answers every query with ``"range": [lo_s, hi_s)`` — the routing primitive
added to the query stack — so it only proposes candidates from the rows it
owns.  The router concatenates the shards' candidates per query row and
re-ranks with the *same* shared rule every backend uses
(:func:`repro.query.backends.topk_by_score`: descending score, ascending id
on ties).

**The merge is bit-exact.**  Ranged scoring walks the same canonical block
grid as an unranged run and only masks selection (see
``resolve_vertex_range``), so every shard candidate's float32 score bits
equal the single-server oracle's bits for that row; JSON transport is
exact for float32 (shortest-repr round-trip); and a shard returns its full
local top-k — a global top-k winner is necessarily a local top-k winner in
the shard that owns it.  The parity suite in ``tests/serve/test_router.py``
pins merged ids *and* score bits against a single-process run.

**Failure is recoverable, never permanent.**  Every shard range is served
by a *replica set* of one or more addresses; each replica carries an
explicit health state machine (:class:`HealthState`:
``healthy → suspect → dead``) driven by exchange outcomes.  Routing prefers
the healthiest, least-loaded replica and **fails over within the request**
when the primary errors (replicas serve identical store versions — the
merge-time version-skew refusal covers cross-replica skew too).  A replica
marked dead is not routed to — requests fail fast instead of paying
connect timeouts — but it is never abandoned: a background prober re-pings
it on an exponential-backoff schedule (``probe_interval_s`` doubling up to
``probe_backoff_max_s``) and readmits it the moment a ping succeeds, so a
shard that crashes and restarts rejoins the fleet automatically.  Every
socket operation in a fan-out runs under a per-shard wall-clock deadline
(``timeout_s``), so a *hung* shard — accepted connection, no replies —
fails its own batch with :class:`ShardError` inside the deadline instead
of wedging the router's fan-out; other ranges keep serving.

**The router is itself a ``QueryServer``.**  :class:`ShardedBackendService`
duck-types the one interface the server needs (``query_batch`` /
``stats``), so the router inherits the whole serving tier for free:
NDJSON protocol, admission control with typed ``overloaded`` rejections,
per-tool admission quotas, microbatching of concurrent client queries into
shared fan-outs, the ``stats`` verb, graceful drain, the blocking
:class:`ServerThread` facade, and the HTTP front (``http_port``).

``exclude_self`` never reaches the shards: the router asks each shard for
``k + 1`` *including* self (self-exclusion is not range-local — the self
row lives in exactly one shard) and drops the query's own id at merge
time, reproducing the engine's ask-one-extra idiom across the cluster.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from time import monotonic
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..query.backends import topk_by_score
from .client import ServeClient, parse_address
from .metrics import LatencyHistogram, StateClock
from .protocol import MAX_FRAME_BYTES, decode_frame, encode_frame
from .server import QueryServer, ServerThread

__all__ = ["ShardRouter", "ShardedBackendService", "ShardError",
           "HealthState", "partition_ranges",
           "HEALTH_HEALTHY", "HEALTH_SUSPECT", "HEALTH_DEAD"]

#: Replica health states, in escalation order.  ``healthy`` is routable and
#: preferred; ``suspect`` (one recent failure) is routable as a fallback;
#: ``dead`` (repeated failures) is only touched by probes — or as a
#: last-ditch candidate once its probe backoff has elapsed.
HEALTH_HEALTHY = "healthy"
HEALTH_SUSPECT = "suspect"
HEALTH_DEAD = "dead"

_HEALTH_RANK = {HEALTH_HEALTHY: 0, HEALTH_SUSPECT: 1, HEALTH_DEAD: 2}


def partition_ranges(num_vertices: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, num_vertices)`` into ``shards`` contiguous near-even ranges.

    The first ``num_vertices % shards`` ranges get one extra row.  With more
    shards than rows the tail ranges are empty ``(x, x)`` — callers must
    skip those when fanning out (a ranged query requires ``lo < hi``).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if num_vertices < 0:
        raise ValueError("num_vertices must be >= 0")
    base, extra = divmod(num_vertices, shards)
    ranges, lo = [], 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class ShardError(RuntimeError):
    """A shard failed a fanned-out request (error reply, version skew,
    timeout, or connection failure).  Carried per-request so one shard's
    trouble fails only the queries that needed it."""


class HealthState:
    """``healthy → suspect → dead`` state machine for one shard replica.

    Driven by exchange/probe outcomes: the first failure demotes a healthy
    replica to ``suspect`` (still routable, deprioritized), the second to
    ``dead`` (not routed to; fail fast).  Every failure schedules the next
    probe with exponential backoff — ``probe_interval_s`` doubling per
    consecutive failure beyond the one that killed it, capped at
    ``probe_backoff_max_s`` — and any success snaps the replica back to
    ``healthy`` (a *readmission* when it was not healthy before).  The
    clock is injectable so the schedule is unit-testable without sleeping.
    """

    def __init__(self, *, probe_interval_s: float = 1.0,
                 probe_backoff_max_s: float = 30.0,
                 clock: Callable[[], float] = monotonic):
        if probe_interval_s <= 0 or probe_backoff_max_s < probe_interval_s:
            raise ValueError("need 0 < probe_interval_s <= probe_backoff_max_s")
        self.probe_interval_s = probe_interval_s
        self.probe_backoff_max_s = probe_backoff_max_s
        self._clock = clock
        self.state = HEALTH_HEALTHY
        self.consecutive_failures = 0
        self.next_probe_at = 0.0
        self.readmissions = 0
        self.dwell = StateClock(HEALTH_HEALTHY, clock=clock)

    def backoff_s(self) -> float:
        """Wait before the next probe, from the current failure count."""
        doublings = max(self.consecutive_failures - 2, 0)
        return min(self.probe_interval_s * (2.0 ** doublings),
                   self.probe_backoff_max_s)

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        state = (HEALTH_SUSPECT if self.consecutive_failures < 2
                 else HEALTH_DEAD)
        if state != self.state:
            self.state = state
            self.dwell.transition(state)
        self.next_probe_at = self._clock() + self.backoff_s()

    def record_success(self) -> bool:
        """Snap back to healthy; True when this was a readmission."""
        readmitted = self.state != HEALTH_HEALTHY
        self.consecutive_failures = 0
        self.next_probe_at = 0.0
        if readmitted:
            self.state = HEALTH_HEALTHY
            self.dwell.transition(HEALTH_HEALTHY)
            self.readmissions += 1
        return readmitted

    def probe_due(self) -> bool:
        return (self.state != HEALTH_HEALTHY
                and self._clock() >= self.next_probe_at)

    def routable(self) -> bool:
        """May traffic be sent here?  Dead replicas only once probe-due."""
        return self.state != HEALTH_DEAD or self.probe_due()


class _RoutedEntry:
    """The ``entry`` facet of a routed response: just the store version the
    shards agreed on (the router holds no store of its own)."""

    __slots__ = ("version",)

    def __init__(self, version: int):
        self.version = version


class _RoutedResponse:
    """Duck-types the response surface ``QueryServer._finish`` reads:
    ``ids`` / ``scores`` / ``store_hit`` / ``entry.version``."""

    __slots__ = ("ids", "scores", "store_hit", "entry")

    def __init__(self, ids: np.ndarray, scores: np.ndarray, store_hit: bool,
                 version: int):
        self.ids = ids
        self.scores = scores
        self.store_hit = store_hit
        self.entry = _RoutedEntry(version)


class _ShardLink:
    """One persistent NDJSON connection to a shard replica, with pipelined
    batches, a per-exchange wall-clock deadline, and health tracking.

    ``exchange`` writes every frame before reading any reply, then matches
    replies to frames by id (a server answers admission rejections
    immediately but batched queries later, so reply order is not request
    order).  Wire ids are rewritten to per-exchange-unique tokens and
    mapped back on receipt, so a resend can never be satisfied by a stale
    or duplicate reply — replies that match no outstanding token are
    counted (``duplicate_replies``) and dropped instead of corrupting this
    or any later exchange.  One resend on a fresh connection absorbs a
    shard restart that killed the persistent connection between batches; a
    failure on a *fresh* connection, or any deadline expiry, raises
    :class:`ShardError` immediately (retrying a hung shard would double
    the hang, and the replica set is the real retry mechanism).
    """

    def __init__(self, address: str, *, timeout_s: float = 30.0,
                 probe_timeout_s: "float | None" = None,
                 health: "HealthState | None" = None,
                 clock: Callable[[], float] = monotonic):
        self.address = address
        self.timeout_s = timeout_s
        self.probe_timeout_s = (min(timeout_s, 5.0) if probe_timeout_s is None
                                else probe_timeout_s)
        self._clock = clock
        self.health = health if health is not None else HealthState(clock=clock)
        self._sock: "socket.socket | None" = None
        self._file = None
        self._lock = threading.Lock()
        self._epoch = 0
        # Link stats (read by routing heuristics + the stats verb).
        self.inflight = 0           # frames currently being exchanged here
        self.routed = 0             # frames attempted (resends/failovers count)
        self.frames_ok = 0          # frames answered by a completed exchange
        self.exchange_failures = 0
        self.duplicate_replies = 0
        self.probes_sent = 0
        self.probes_ok = 0

    # ------------------------------------------------------------------ #
    def _connect(self, deadline: float) -> None:
        remaining = deadline - self._clock()
        if remaining <= 0:
            raise TimeoutError("deadline exhausted before connect")
        kind, target = parse_address(self.address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(remaining)
            sock.connect(target)
        else:
            sock = socket.create_connection(target, timeout=remaining)
        self._sock, self._file = sock, sock.makefile("rb")

    def close(self) -> None:
        with self._lock:
            self._teardown()

    def _teardown(self) -> None:
        for obj in (self._file, self._sock):
            if obj is not None:
                try:
                    obj.close()
                except OSError:
                    pass
        self._sock = self._file = None

    # ------------------------------------------------------------------ #
    def exchange(self, frames: "list[dict[str, Any]]") -> dict[Any, dict[str, Any]]:
        """Send every frame, read one reply per frame; return ``{id: reply}``.

        The whole exchange — connect included — runs under one
        ``timeout_s`` wall-clock deadline.  Success/failure is recorded on
        :attr:`health`.
        """
        if not frames:
            return {}
        self.inflight += len(frames)
        try:
            with self._lock:
                return self._exchange_locked(frames)
        finally:
            self.inflight -= len(frames)

    def _exchange_locked(self, frames: "list[dict[str, Any]]",
                         ) -> dict[Any, dict[str, Any]]:
        deadline = self._clock() + self.timeout_s
        reused = self._sock is not None
        while True:
            self.routed += len(frames)
            try:
                if self._sock is None:
                    self._connect(deadline)
                replies = self._exchange_once(frames, deadline)
            except (ConnectionError, OSError, ValueError) as exc:
                self._teardown()
                self.exchange_failures += 1
                timed_out = isinstance(exc, TimeoutError)
                if reused and not timed_out:
                    # The persistent connection went stale (e.g. the shard
                    # restarted between batches): one resend, fresh socket.
                    reused = False
                    continue
                self.health.record_failure()
                what = "timed out" if timed_out else "unreachable"
                raise ShardError(
                    f"shard {self.address} {what}: {exc}") from exc
            self.frames_ok += len(frames)
            self.health.record_success()
            return replies

    def _exchange_once(self, frames: "list[dict[str, Any]]", deadline: float,
                       ) -> dict[Any, dict[str, Any]]:
        self._epoch += 1
        tokens: dict[str, Any] = {}
        payload: list[bytes] = []
        for j, frame in enumerate(frames):
            # Per-exchange-unique wire ids: a resent batch can only be
            # answered by replies to *this* incarnation, and duplicates
            # dedupe instead of bleeding into the next exchange.
            token = f"x{self._epoch}.{j}"
            tokens[token] = frame.get("id")
            payload.append(encode_frame({**frame, "id": token}))
        assert self._sock is not None and self._file is not None
        self._arm(deadline)
        self._sock.sendall(b"".join(payload))
        replies: dict[Any, dict[str, Any]] = {}
        pending = set(tokens)
        # Tolerate bounded noise (duplicate/unsolicited replies from a
        # misbehaving shard) without reading this connection forever.
        budget = 2 * len(frames) + 8
        while pending:
            if budget <= 0:
                raise ConnectionError("shard flooded the link with "
                                      "unmatched replies")
            budget -= 1
            self._arm(deadline)
            line = self._file.readline(MAX_FRAME_BYTES + 1)
            if not line:
                raise ConnectionError("shard closed the connection mid-batch")
            reply = decode_frame(line)
            token = reply.get("id")
            if token in pending:
                pending.discard(token)
                reply["id"] = tokens[token]
                replies[tokens[token]] = reply
            else:
                self.duplicate_replies += 1
        return replies

    def _arm(self, deadline: float) -> None:
        """Bound the next socket operation by the exchange deadline."""
        remaining = deadline - self._clock()
        if remaining <= 0:
            raise TimeoutError(
                f"shard exchange deadline ({self.timeout_s}s) exhausted")
        assert self._sock is not None
        self._sock.settimeout(remaining)

    # ------------------------------------------------------------------ #
    def probe(self) -> bool:
        """Ping the replica on a fresh connection; drive the health machine.

        Used by the background prober to readmit recovered shards.  Runs
        under :attr:`probe_timeout_s` so probing a blackholed address can't
        wedge the prober thread for the full exchange timeout.
        """
        self.probes_sent += 1
        with self._lock:
            deadline = self._clock() + self.probe_timeout_s
            try:
                self._teardown()
                self._connect(deadline)
                replies = self._exchange_once(
                    [{"id": "probe", "verb": "ping"}], deadline)
                ok = bool(replies.get("probe", {}).get("ok"))
            except (ConnectionError, OSError, ValueError):
                ok = False
            if not ok:
                self._teardown()
                self.health.record_failure()
                return False
            self.probes_ok += 1
            self.health.record_success()
            return True

    def stats_row(self) -> dict[str, Any]:
        return {
            "address": self.address,
            "state": self.health.state,
            "consecutive_failures": self.health.consecutive_failures,
            "inflight": self.inflight,
            "routed": self.routed,
            "frames_ok": self.frames_ok,
            "exchange_failures": self.exchange_failures,
            "duplicate_replies": self.duplicate_replies,
            "probes_sent": self.probes_sent,
            "probes_ok": self.probes_ok,
            "readmissions": self.health.readmissions,
            "dwell": self.health.dwell.summary(),
        }


class _ShardGroup:
    """The replica set serving one vertex range: pick, exchange, fail over.

    Candidates are ranked healthiest-first (healthy < suspect <
    probe-due-dead) and, within a rank, least-loaded first (the link
    ``inflight`` heuristic).  When the chosen replica's exchange raises,
    the same frames are resent to the next candidate — failover *within*
    the request; queries are idempotent and per-exchange wire ids make the
    resend safe.  Only when every candidate fails (or every replica is
    dead and none is probe-due yet) does the whole group fail the batch.
    """

    def __init__(self, index: int, addresses: Sequence[str], *,
                 timeout_s: float, probe_interval_s: float,
                 probe_backoff_max_s: float,
                 clock: Callable[[], float] = monotonic):
        self.index = index
        self._clock = clock
        self.links = [
            _ShardLink(address, timeout_s=timeout_s, clock=clock,
                       health=HealthState(
                           probe_interval_s=probe_interval_s,
                           probe_backoff_max_s=probe_backoff_max_s,
                           clock=clock))
            for address in addresses]
        self.frames = 0          # frames offered to this group
        self.frames_failed = 0   # frames no replica could answer
        self.failovers = 0       # secondary replica attempts

    @property
    def addresses(self) -> list[str]:
        return [link.address for link in self.links]

    def candidates(self) -> "list[_ShardLink]":
        ranked = sorted(
            ((_HEALTH_RANK[link.health.state], link.inflight, i)
             for i, link in enumerate(self.links) if link.health.routable()))
        return [self.links[i] for _, _, i in ranked]

    def exchange(self, frames: "list[dict[str, Any]]") -> dict[Any, dict[str, Any]]:
        self.frames += len(frames)
        links = self.candidates()
        if not links:
            self.frames_failed += len(frames)
            wait = min(link.health.next_probe_at for link in self.links)
            raise ShardError(
                f"shard {self.index}: all {len(self.links)} replica(s) are "
                f"dead; next probe in {max(wait - self._clock(), 0.0):.2f}s")
        last_error: "ShardError | None" = None
        for attempt, link in enumerate(links):
            if attempt:
                self.failovers += 1
            try:
                replies = link.exchange(frames)
            except ShardError as exc:
                last_error = exc
                continue
            if any(not r.get("ok") and r.get("code") == "shutting-down"
                   for r in replies.values()):
                # A draining replica answers transport-fine but refuses the
                # work ("retry elsewhere" is the reply's own advice): mark
                # it and re-ask the next replica — queries are idempotent,
                # so resending already-answered frames is safe.
                link.health.record_failure()
                last_error = ShardError(
                    f"shard {link.address} is shutting down")
                continue
            return replies
        self.frames_failed += len(frames)
        assert last_error is not None
        raise last_error

    def close(self) -> None:
        for link in self.links:
            link.close()

    def stats_rows(self) -> dict[str, Any]:
        return {
            "range_index": self.index,
            "frames": self.frames,
            "frames_failed": self.frames_failed,
            "failovers": self.failovers,
            "replicas": [link.stats_row() for link in self.links],
        }


class ShardedBackendService:
    """``EmbeddingService``-shaped facade that answers by shard fan-out.

    Implements exactly the protocol :class:`QueryServer` requires of its
    service — ``query_batch(requests) -> responses`` and ``stats()`` — so a
    server wrapping this object *is* the shard router.  Per batch it builds
    one ranged frame list per shard range (only the ranges intersecting a
    request's allowed rows participate), pipelines them concurrently over
    the ranges' replica sets, and merges per request.  A failed request
    comes back as a :class:`ShardError` *instance* in the response list —
    the server already maps exception responses to typed ``error`` replies,
    so one bad shard fails only its own queries, never the batch.

    ``addresses`` is either a flat list of address strings — grouped into
    consecutive ``replicas``-sized replica sets — or a list of per-range
    replica lists.  A background prober thread re-pings unhealthy replicas
    on their backoff schedule (see :class:`HealthState`) so recovered
    shards readmit without any traffic having to pay for the discovery.
    """

    def __init__(self, addresses: Iterable[Any], graphs: Mapping[str, Any], *,
                 timeout_s: float = 30.0, replicas: int = 1,
                 probe_interval_s: float = 1.0,
                 probe_backoff_max_s: float = 30.0):
        if timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        grouped = self._group_addresses(list(addresses), replicas)
        self.graphs = dict(graphs)
        self._graph_names = {id(g): name for name, g in self.graphs.items()}
        self.probe_interval_s = probe_interval_s
        self.groups = [
            _ShardGroup(i, group, timeout_s=timeout_s,
                        probe_interval_s=probe_interval_s,
                        probe_backoff_max_s=probe_backoff_max_s)
            for i, group in enumerate(grouped)]
        #: Every backend address, group-major (back-compat flat view).
        self.addresses = [a for group in grouped for a in group]
        self._ranges = {name: partition_ranges(g.num_vertices, len(self.groups))
                        for name, g in self.graphs.items()}
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.groups),
            thread_name_prefix="repro-route")
        # Router-level counters (folded into the stats verb).
        self.fanouts = 0
        self.shard_queries = 0
        self.shard_errors = 0    # requests failed by shard trouble
        self.plan_errors = 0     # requests failed before any fan-out
        self.requests_ok = 0
        self.requests_failed = 0
        self._prober_stop = threading.Event()
        self._prober = threading.Thread(
            target=self._probe_loop, name="repro-route-probe", daemon=True)
        self._prober.start()

    @staticmethod
    def _group_addresses(addresses: "list[Any]", replicas: int,
                         ) -> "list[list[str]]":
        if not addresses:
            raise ValueError("need at least one shard address")
        if all(isinstance(a, str) for a in addresses):
            if replicas < 1:
                raise ValueError("replicas must be >= 1")
            if len(addresses) % replicas:
                raise ValueError(
                    f"{len(addresses)} address(es) do not divide into "
                    f"replica sets of {replicas}")
            return [addresses[i:i + replicas]
                    for i in range(0, len(addresses), replicas)]
        if replicas != 1:
            raise ValueError("pass nested replica lists OR replicas=, not both")
        grouped = [[a] if isinstance(a, str) else list(a) for a in addresses]
        for group in grouped:
            if not group or not all(isinstance(a, str) and a for a in group):
                raise ValueError("every replica set needs at least one "
                                 "non-empty address string")
        return grouped

    # ------------------------------------------------------------------ #
    # Health probing
    # ------------------------------------------------------------------ #
    def _probe_loop(self) -> None:
        """Re-ping unhealthy replicas whose backoff has elapsed."""
        period = max(0.02, min(self.probe_interval_s / 2.0, 0.25))
        while not self._prober_stop.wait(period):
            for group in self.groups:
                for link in group.links:
                    if self._prober_stop.is_set():
                        return
                    if link.health.state != HEALTH_HEALTHY and link.health.probe_due():
                        link.probe()

    def probe_now(self) -> int:
        """Probe every probe-due unhealthy replica once; returns successes.

        The deterministic entry the prober thread loops over — tests (and
        impatient operators) can call it directly instead of sleeping
        through the probe interval.
        """
        readmitted = 0
        for group in self.groups:
            for link in group.links:
                if link.health.state != HEALTH_HEALTHY and link.health.probe_due():
                    readmitted += bool(link.probe())
        return readmitted

    # ------------------------------------------------------------------ #
    # The service protocol
    # ------------------------------------------------------------------ #
    def query_batch(self, requests: Iterable[Any]) -> list[Any]:
        requests = list(requests)
        plans = [self._plan(j, request) for j, request in enumerate(requests)]
        per_shard: dict[int, list[dict[str, Any]]] = {}
        for plan in plans:
            for s, frame in plan["frames"].items():
                per_shard.setdefault(s, []).append(frame)
        self.fanouts += 1
        self.shard_queries += sum(len(v) for v in per_shard.values())
        futures = {s: self._pool.submit(self.groups[s].exchange, frames)
                   for s, frames in per_shard.items()}
        replies: dict[int, "dict[Any, dict[str, Any]] | ShardError"] = {}
        for s, future in futures.items():
            try:
                replies[s] = future.result()
            except ShardError as exc:
                replies[s] = exc
        responses = []
        for plan in plans:
            response = self._merge(plan, requests[plan["index"]], replies)
            if isinstance(response, ShardError):
                self.requests_failed += 1
            else:
                self.requests_ok += 1
            responses.append(response)
        return responses

    def stats(self) -> dict[str, Any]:
        """Router counters, per-replica health, and shard snapshots.

        Per-shard latency histograms (when the shard reports them) are
        merged bucket-wise into fleet-wide percentiles under
        ``fleet_latency`` — the aggregate a dashboard actually wants,
        impossible to recover from per-shard p99s alone.
        """
        shards: list[dict[str, Any]] = []
        fleet: dict[str, LatencyHistogram] = {}
        shards_reporting = 0
        for group in self.groups:
            for link in group.links:
                if link.health.state != HEALTH_HEALTHY:
                    # Don't pay a connect timeout (or a blackhole stall) to
                    # snapshot a replica the health machine already marked.
                    shards.append({"address": link.address,
                                   "state": link.health.state,
                                   "error": "replica is not healthy; "
                                            "snapshot skipped"})
                    continue
                try:
                    with ServeClient(link.address, timeout_s=2.0) as client:
                        shard_stats = client.stats()
                    shards.append({"address": link.address,
                                   "state": link.health.state,
                                   "server": shard_stats.get("server", {})})
                except (ConnectionError, OSError, ValueError) as exc:
                    shards.append({"address": link.address,
                                   "state": link.health.state,
                                   "error": str(exc)})
                    continue
                histograms = (shard_stats.get("latency") or {}).get("histograms")
                if isinstance(histograms, dict):
                    shards_reporting += self._merge_fleet(fleet, histograms)
        result = {
            "router": {
                "shards": len(self.groups),
                "replicas_per_shard": [len(g.links) for g in self.groups],
                "fanouts": self.fanouts,
                "shard_queries": self.shard_queries,
                "shard_errors": self.shard_errors,
                "plan_errors": self.plan_errors,
                "requests_ok": self.requests_ok,
                "requests_failed": self.requests_failed,
                "failovers": sum(g.failovers for g in self.groups),
                "probes_sent": sum(l.probes_sent for g in self.groups
                                   for l in g.links),
                "probes_ok": sum(l.probes_ok for g in self.groups
                                 for l in g.links),
                "readmissions": sum(l.health.readmissions
                                    for g in self.groups for l in g.links),
                "probe_interval_s": self.probe_interval_s,
            },
            "health": [group.stats_rows() for group in self.groups],
            "shards": shards,
        }
        if fleet:
            result["fleet_latency"] = {
                stage: hist.summary() for stage, hist in sorted(fleet.items())}
            result["fleet_latency"]["shards_reporting"] = shards_reporting
        return result

    @staticmethod
    def _merge_fleet(fleet: "dict[str, LatencyHistogram]",
                     histograms: "dict[str, Any]") -> int:
        """Fold one shard's stage histograms into the fleet aggregate.

        Returns 1 when anything merged.  Unparseable payloads (version
        skew, stub shards) are skipped — fleet latency is best-effort and
        must never fail the stats verb.
        """
        merged_any = 0
        for stage, payload in histograms.items():
            try:
                hist = LatencyHistogram.from_dict(payload)
            except (ValueError, KeyError, TypeError, IndexError):
                continue
            if stage in fleet:
                try:
                    fleet[stage].merge(hist)
                except ValueError:      # different bucket layout
                    continue
            else:
                fleet[stage] = hist
            merged_any = 1
        return merged_any

    def close(self) -> None:
        self._prober_stop.set()
        self._prober.join(timeout=5.0)
        for group in self.groups:
            group.close()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # Fan-out planning + merge
    # ------------------------------------------------------------------ #
    def _plan(self, j: int, request: Any) -> dict[str, Any]:
        """Which shard ranges serve request ``j``, and with what frames."""
        graph_name = self._graph_names.get(id(request.graph))
        if graph_name is None:
            return {"index": j, "frames": {},
                    "error": ShardError("request names a graph the router does "
                                        "not serve")}
        tool = request.tool if isinstance(request.tool, str) else request.tool.name
        num_vertices = self.graphs[graph_name].num_vertices
        lo_all, hi_all = request.vertex_range or (0, num_vertices)
        hi_all = min(hi_all, num_vertices)
        by_vertex = request.vertices is not None
        exclude = bool(request.exclude_self) and by_vertex
        # Ask one extra per shard when the self row must be dropped at
        # merge time — the engine's own k+1 idiom, lifted over the fan-out.
        shard_k = request.k + 1 if exclude else request.k
        frames: dict[int, dict[str, Any]] = {}
        for s, (lo, hi) in enumerate(self._ranges[graph_name]):
            lo, hi = max(lo, lo_all), min(hi, hi_all)
            if lo >= hi:
                continue
            frame: dict[str, Any] = {
                "id": j, "verb": "query", "tool": tool, "graph": graph_name,
                "k": min(shard_k, hi - lo), "range": [lo, hi],
            }
            if by_vertex:
                frame["vertices"] = np.atleast_1d(
                    np.asarray(request.vertices, dtype=np.int64)).tolist()
                frame["exclude_self"] = False
            else:
                frame["vectors"] = np.atleast_2d(
                    np.asarray(request.vectors, dtype=np.float32)).tolist()
            if request.metric is not None:
                frame["metric"] = request.metric
            if request.backend is not None:
                frame["backend"] = request.backend
            tctx = getattr(request, "trace", None)
            if tctx is not None:
                # Forward the trace id; the parent this hop hands down is
                # its own span when one was minted (tracing enabled here),
                # else the upstream sender's — shard spans always attach to
                # the nearest recorded ancestor.
                sender = tctx.get("span") or tctx.get("parent")
                frame["trace"] = ({"id": tctx["id"], "span": sender}
                                  if sender else {"id": tctx["id"]})
            frames[s] = frame
        plan = {"index": j, "frames": frames,
                "size": hi_all - lo_all, "exclude": exclude}
        if not frames:
            plan["error"] = ShardError(
                f"request range [{lo_all}, {hi_all}) selects no rows")
        return plan

    def _merge(self, plan: dict[str, Any], request: Any,
               replies: Mapping[int, Any]) -> Any:
        if "error" in plan:
            self.plan_errors += 1
            return plan["error"]
        parts: list[dict[str, Any]] = []
        for s in plan["frames"]:
            shard_replies = replies.get(s)
            if isinstance(shard_replies, ShardError):
                self.shard_errors += 1
                return shard_replies
            reply = (shard_replies or {}).get(plan["index"])
            if reply is None:
                self.shard_errors += 1
                return ShardError(
                    f"shard {s} returned no reply for the request")
            if not reply.get("ok"):
                self.shard_errors += 1
                return ShardError(
                    f"shard {s} failed the request: "
                    f"{reply.get('code', 'error')}: {reply.get('error', '')}")
            parts.append(reply)
        versions = {int(p["version"]) for p in parts}
        if len(versions) > 1:
            # Version skew refusal spans replicas too: whichever replica
            # served each range, merged parts must agree on the lineage.
            self.shard_errors += 1
            return ShardError(
                f"shards disagree on the store version ({sorted(versions)}); "
                f"refusing to merge across lineages")
        num_queries = len(parts[0]["ids"])
        exclude = plan["exclude"]
        size = plan["size"]
        want = min(request.k, max(size - 1, 0)) if exclude else min(request.k, size)
        out_ids = np.empty((num_queries, want), dtype=np.int64)
        out_scores = np.empty((num_queries, want), dtype=np.float32)
        vertices = (np.atleast_1d(np.asarray(request.vertices, dtype=np.int64))
                    if exclude else None)
        for row in range(num_queries):
            ids = np.concatenate([
                np.asarray(p["ids"][row], dtype=np.int64) for p in parts])
            # float32 -> JSON -> float32 is bit-exact (shortest-repr floats),
            # so merged score bits equal the shards' — and the oracle's.
            scores = np.concatenate([
                np.asarray(p["scores"][row], dtype=np.float32) for p in parts])
            if exclude:
                keep = ids != vertices[row]
                ids, scores = ids[keep], scores[keep]
            out_ids[row], out_scores[row] = topk_by_score(ids, scores, want)
        return _RoutedResponse(
            ids=out_ids, scores=out_scores,
            store_hit=all(bool(p.get("store_hit")) for p in parts),
            version=versions.pop())


class ShardRouter:
    """The deployable router: a :class:`QueryServer` whose service is a
    :class:`ShardedBackendService`, run on a :class:`ServerThread`.

    Two construction shapes:

    * ``ShardRouter(graphs, addresses)`` — route over externally managed
      shard servers (e.g. separate processes started with ``repro-gosh
      serve``).  ``replicas=R`` groups a flat address list into consecutive
      R-sized replica sets; nested lists give per-range replica sets
      directly.
    * ``ShardRouter.spawn(service_or_factory, graphs, shard_count=N,
      replicas=R)`` — spawn ``N × R`` in-process shard servers first (each
      on its own event-loop thread, port 0), then route over them;
      ``stop()`` tears them down.  Pass a zero-argument *factory* to give
      every shard its own ``EmbeddingService`` (same store directory,
      independent serving locks) so shard fan-outs genuinely run in
      parallel.
    """

    def __init__(self, graphs: Mapping[str, Any], addresses: Iterable[Any], *,
                 default_graph: "str | None" = None,
                 default_tool: "str | None" = None,
                 host: str = "127.0.0.1", port: int = 0,
                 socket_path: "str | None" = None,
                 max_inflight: int = 64, queue_depth: int = 128,
                 max_batch: int = 32,
                 max_inflight_per_tool: "int | None" = None,
                 replicas: int = 1, shard_timeout_s: float = 30.0,
                 probe_interval_s: float = 1.0,
                 probe_backoff_max_s: float = 30.0,
                 http_port: "int | None" = None, http_host: str = "127.0.0.1",
                 owned: "list[ServerThread] | None" = None):
        self.backend = ShardedBackendService(
            addresses, graphs, timeout_s=shard_timeout_s, replicas=replicas,
            probe_interval_s=probe_interval_s,
            probe_backoff_max_s=probe_backoff_max_s)
        self.server = QueryServer(
            self.backend, graphs, host=host, port=port,
            socket_path=socket_path, default_graph=default_graph,
            default_tool=default_tool, max_inflight=max_inflight,
            queue_depth=queue_depth, max_batch=max_batch,
            max_inflight_per_tool=max_inflight_per_tool)
        self.handle = ServerThread(self.server, http_port=http_port,
                                   http_host=http_host)
        self._owned = list(owned or [])
        self.address: "str | None" = None
        self.http_address: "str | None" = None

    @classmethod
    def spawn(cls, service_or_factory: Any, graphs: Mapping[str, Any], *,
              shard_count: int, replicas: int = 1,
              shard_host: str = "127.0.0.1",
              shard_max_inflight: int = 64, shard_queue_depth: int = 128,
              shard_max_batch: int = 32,
              **router_kwargs: Any) -> "ShardRouter":
        """Spawn ``shard_count × replicas`` in-process shard servers, then
        route over them (replica set ``r`` of range ``s`` is server
        ``s * replicas + r``).  ``service_or_factory`` is a service instance
        shared by every shard, or a zero-argument factory called once per
        shard server."""
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        owned: list[ServerThread] = []
        addresses: list[str] = []
        try:
            for _ in range(shard_count * replicas):
                service = (service_or_factory() if callable(service_or_factory)
                           else service_or_factory)
                shard = QueryServer(
                    service, graphs, host=shard_host, port=0,
                    max_inflight=shard_max_inflight,
                    queue_depth=shard_queue_depth, max_batch=shard_max_batch)
                handle = ServerThread(shard)
                addresses.append(handle.start())
                owned.append(handle)
        except BaseException:
            for handle in owned:
                try:
                    handle.stop()
                except Exception:
                    pass
            raise
        return cls(graphs, addresses, owned=owned, replicas=replicas,
                   **router_kwargs)

    # ------------------------------------------------------------------ #
    def start(self) -> str:
        self.address = self.handle.start()
        self.http_address = self.handle.http_address
        return self.address

    def stop(self, *, timeout_s: float = 30.0) -> None:
        try:
            self.handle.stop(timeout_s=timeout_s)
        finally:
            self.backend.close()
            for handle in self._owned:
                try:
                    handle.stop(timeout_s=timeout_s)
                except Exception:
                    pass

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
