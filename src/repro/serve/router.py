"""`ShardRouter` — horizontal scale-out for the resident serving tier.

One :class:`~repro.serve.server.QueryServer` process is the ceiling on
serving throughput; the router removes it the way the paper's multi-worker
partitioning removes the training ceiling: **partition the vertex space,
fan out, merge**.  Each graph's rows are split into N contiguous ranges
(:func:`partition_ranges`); shard *s* is an ordinary ``QueryServer`` that
answers every query with ``"range": [lo_s, hi_s)`` — the routing primitive
added to the query stack — so it only proposes candidates from the rows it
owns.  The router concatenates the shards' candidates per query row and
re-ranks with the *same* shared rule every backend uses
(:func:`repro.query.backends.topk_by_score`: descending score, ascending id
on ties).

**The merge is bit-exact.**  Ranged scoring walks the same canonical block
grid as an unranged run and only masks selection (see
``resolve_vertex_range``), so every shard candidate's float32 score bits
equal the single-server oracle's bits for that row; JSON transport is
exact for float32 (shortest-repr round-trip); and a shard returns its full
local top-k — a global top-k winner is necessarily a local top-k winner in
the shard that owns it.  The parity suite in ``tests/serve/test_router.py``
pins merged ids *and* score bits against a single-process run.

**The router is itself a ``QueryServer``.**  :class:`ShardedBackendService`
duck-types the one interface the server needs (``query_batch`` /
``stats``), so the router inherits the whole serving tier for free:
NDJSON protocol, admission control with typed ``overloaded`` rejections,
microbatching of concurrent client queries into shared fan-outs, the
``stats`` verb, graceful drain, the blocking :class:`ServerThread` facade,
and the HTTP front (``http_port``).

``exclude_self`` never reaches the shards: the router asks each shard for
``k + 1`` *including* self (self-exclusion is not range-local — the self
row lives in exactly one shard) and drops the query's own id at merge
time, reproducing the engine's ask-one-extra idiom across the cluster.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, Mapping

import numpy as np

from ..query.backends import topk_by_score
from .client import ServeClient, parse_address
from .protocol import MAX_FRAME_BYTES, decode_frame, encode_frame
from .server import QueryServer, ServerThread

__all__ = ["ShardRouter", "ShardedBackendService", "ShardError",
           "partition_ranges"]


def partition_ranges(num_vertices: int, shards: int) -> list[tuple[int, int]]:
    """Split ``[0, num_vertices)`` into ``shards`` contiguous near-even ranges.

    The first ``num_vertices % shards`` ranges get one extra row.  With more
    shards than rows the tail ranges are empty ``(x, x)`` — callers must
    skip those when fanning out (a ranged query requires ``lo < hi``).
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if num_vertices < 0:
        raise ValueError("num_vertices must be >= 0")
    base, extra = divmod(num_vertices, shards)
    ranges, lo = [], 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class ShardError(RuntimeError):
    """A shard failed a fanned-out request (error reply, version skew, or
    connection failure).  Carried per-request so one shard's trouble fails
    only the queries that needed it."""


class _RoutedEntry:
    """The ``entry`` facet of a routed response: just the store version the
    shards agreed on (the router holds no store of its own)."""

    __slots__ = ("version",)

    def __init__(self, version: int):
        self.version = version


class _RoutedResponse:
    """Duck-types the response surface ``QueryServer._finish`` reads:
    ``ids`` / ``scores`` / ``store_hit`` / ``entry.version``."""

    __slots__ = ("ids", "scores", "store_hit", "entry")

    def __init__(self, ids: np.ndarray, scores: np.ndarray, store_hit: bool,
                 version: int):
        self.ids = ids
        self.scores = scores
        self.store_hit = store_hit
        self.entry = _RoutedEntry(version)


class _ShardLink:
    """One persistent NDJSON connection to a shard, with pipelined batches.

    ``exchange`` writes every frame before reading any reply, then matches
    replies to frames by the echoed ``id`` (a server answers admission
    rejections immediately but batched queries later, so reply order is
    not request order).  One reconnect-and-resend retry absorbs a shard
    restart between batches; queries are idempotent so a double send is
    harmless.
    """

    def __init__(self, address: str, *, timeout_s: float = 30.0):
        self.address = address
        self.timeout_s = timeout_s
        self._sock: "socket.socket | None" = None
        self._file = None
        self._lock = threading.Lock()

    def _connect(self) -> None:
        kind, target = parse_address(self.address)
        if kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout_s)
            sock.connect(target)
        else:
            sock = socket.create_connection(target, timeout=self.timeout_s)
        self._sock, self._file = sock, sock.makefile("rb")

    def close(self) -> None:
        with self._lock:
            self._teardown()

    def _teardown(self) -> None:
        for obj in (self._file, self._sock):
            if obj is not None:
                try:
                    obj.close()
                except OSError:
                    pass
        self._sock = self._file = None

    def exchange(self, frames: "list[dict[str, Any]]") -> dict[Any, dict[str, Any]]:
        """Send every frame, read one reply per frame; return ``{id: reply}``."""
        if not frames:
            return {}
        with self._lock:
            for attempt in (0, 1):
                try:
                    if self._sock is None:
                        self._connect()
                    return self._exchange_once(frames)
                except (ConnectionError, OSError, ValueError) as exc:
                    self._teardown()
                    if attempt:
                        raise ShardError(
                            f"shard {self.address} unreachable: {exc}") from exc
        raise AssertionError("unreachable")

    def _exchange_once(self, frames: "list[dict[str, Any]]",
                       ) -> dict[Any, dict[str, Any]]:
        payload = b"".join(encode_frame(frame) for frame in frames)
        assert self._sock is not None and self._file is not None
        self._sock.sendall(payload)
        replies: dict[Any, dict[str, Any]] = {}
        for _ in frames:
            line = self._file.readline(MAX_FRAME_BYTES + 1)
            if not line:
                raise ConnectionError("shard closed the connection mid-batch")
            reply = decode_frame(line)
            replies[reply.get("id")] = reply
        return replies


class ShardedBackendService:
    """``EmbeddingService``-shaped facade that answers by shard fan-out.

    Implements exactly the protocol :class:`QueryServer` requires of its
    service — ``query_batch(requests) -> responses`` and ``stats()`` — so a
    server wrapping this object *is* the shard router.  Per batch it builds
    one ranged frame list per shard (only the shards whose range intersects
    a request's allowed rows participate), pipelines them concurrently over
    persistent links, and merges per request.  A failed request comes back
    as a :class:`ShardError` *instance* in the response list — the server
    already maps exception responses to typed ``error`` replies, so one bad
    shard fails only its own queries, never the batch.
    """

    def __init__(self, addresses: Iterable[str], graphs: Mapping[str, Any], *,
                 timeout_s: float = 30.0):
        self.addresses = list(addresses)
        if not self.addresses:
            raise ValueError("need at least one shard address")
        self.graphs = dict(graphs)
        self._graph_names = {id(g): name for name, g in self.graphs.items()}
        self._links = [_ShardLink(a, timeout_s=timeout_s) for a in self.addresses]
        self._ranges = {name: partition_ranges(g.num_vertices, len(self.addresses))
                        for name, g in self.graphs.items()}
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.addresses),
            thread_name_prefix="repro-route")
        # Router-level counters (folded into the stats verb).
        self.fanouts = 0
        self.shard_queries = 0
        self.shard_errors = 0

    # ------------------------------------------------------------------ #
    # The service protocol
    # ------------------------------------------------------------------ #
    def query_batch(self, requests: Iterable[Any]) -> list[Any]:
        requests = list(requests)
        plans = [self._plan(j, request) for j, request in enumerate(requests)]
        per_shard: dict[int, list[dict[str, Any]]] = {}
        for plan in plans:
            for s, frame in plan["frames"].items():
                per_shard.setdefault(s, []).append(frame)
        self.fanouts += 1
        self.shard_queries += sum(len(v) for v in per_shard.values())
        futures = {s: self._pool.submit(self._links[s].exchange, frames)
                   for s, frames in per_shard.items()}
        replies: dict[int, "dict[Any, dict[str, Any]] | ShardError"] = {}
        for s, future in futures.items():
            try:
                replies[s] = future.result()
            except ShardError as exc:
                self.shard_errors += 1
                replies[s] = exc
        return [self._merge(plan, requests[plan["index"]], replies)
                for plan in plans]

    def stats(self) -> dict[str, Any]:
        """Router counters plus a best-effort snapshot of every shard."""
        shards: list[dict[str, Any]] = []
        for address in self.addresses:
            try:
                with ServeClient(address, timeout_s=2.0) as client:
                    shard_stats = client.stats()
                shards.append({"address": address,
                               "server": shard_stats.get("server", {})})
            except (ConnectionError, OSError, ValueError) as exc:
                shards.append({"address": address, "error": str(exc)})
        return {
            "router": {
                "shards": len(self.addresses),
                "fanouts": self.fanouts,
                "shard_queries": self.shard_queries,
                "shard_errors": self.shard_errors,
            },
            "shards": shards,
        }

    def close(self) -> None:
        for link in self._links:
            link.close()
        self._pool.shutdown(wait=False)

    # ------------------------------------------------------------------ #
    # Fan-out planning + merge
    # ------------------------------------------------------------------ #
    def _plan(self, j: int, request: Any) -> dict[str, Any]:
        """Which shards serve request ``j``, and with what frames."""
        graph_name = self._graph_names.get(id(request.graph))
        if graph_name is None:
            return {"index": j, "frames": {},
                    "error": ShardError("request names a graph the router does "
                                        "not serve")}
        tool = request.tool if isinstance(request.tool, str) else request.tool.name
        num_vertices = self.graphs[graph_name].num_vertices
        lo_all, hi_all = request.vertex_range or (0, num_vertices)
        hi_all = min(hi_all, num_vertices)
        by_vertex = request.vertices is not None
        exclude = bool(request.exclude_self) and by_vertex
        # Ask one extra per shard when the self row must be dropped at
        # merge time — the engine's own k+1 idiom, lifted over the fan-out.
        shard_k = request.k + 1 if exclude else request.k
        frames: dict[int, dict[str, Any]] = {}
        for s, (lo, hi) in enumerate(self._ranges[graph_name]):
            lo, hi = max(lo, lo_all), min(hi, hi_all)
            if lo >= hi:
                continue
            frame: dict[str, Any] = {
                "id": j, "verb": "query", "tool": tool, "graph": graph_name,
                "k": min(shard_k, hi - lo), "range": [lo, hi],
            }
            if by_vertex:
                frame["vertices"] = np.atleast_1d(
                    np.asarray(request.vertices, dtype=np.int64)).tolist()
                frame["exclude_self"] = False
            else:
                frame["vectors"] = np.atleast_2d(
                    np.asarray(request.vectors, dtype=np.float32)).tolist()
            if request.metric is not None:
                frame["metric"] = request.metric
            if request.backend is not None:
                frame["backend"] = request.backend
            frames[s] = frame
        plan = {"index": j, "frames": frames,
                "size": hi_all - lo_all, "exclude": exclude}
        if not frames:
            plan["error"] = ShardError(
                f"request range [{lo_all}, {hi_all}) selects no rows")
        return plan

    def _merge(self, plan: dict[str, Any], request: Any,
               replies: Mapping[int, Any]) -> Any:
        if "error" in plan:
            return plan["error"]
        parts: list[dict[str, Any]] = []
        for s in plan["frames"]:
            shard_replies = replies.get(s)
            if isinstance(shard_replies, ShardError):
                return shard_replies
            reply = (shard_replies or {}).get(plan["index"])
            if reply is None:
                self.shard_errors += 1
                return ShardError(
                    f"shard {self.addresses[s]} returned no reply for the request")
            if not reply.get("ok"):
                self.shard_errors += 1
                return ShardError(
                    f"shard {self.addresses[s]} failed the request: "
                    f"{reply.get('code', 'error')}: {reply.get('error', '')}")
            parts.append(reply)
        versions = {int(p["version"]) for p in parts}
        if len(versions) > 1:
            self.shard_errors += 1
            return ShardError(
                f"shards disagree on the store version ({sorted(versions)}); "
                f"refusing to merge across lineages")
        num_queries = len(parts[0]["ids"])
        exclude = plan["exclude"]
        size = plan["size"]
        want = min(request.k, max(size - 1, 0)) if exclude else min(request.k, size)
        out_ids = np.empty((num_queries, want), dtype=np.int64)
        out_scores = np.empty((num_queries, want), dtype=np.float32)
        vertices = (np.atleast_1d(np.asarray(request.vertices, dtype=np.int64))
                    if exclude else None)
        for row in range(num_queries):
            ids = np.concatenate([
                np.asarray(p["ids"][row], dtype=np.int64) for p in parts])
            # float32 -> JSON -> float32 is bit-exact (shortest-repr floats),
            # so merged score bits equal the shards' — and the oracle's.
            scores = np.concatenate([
                np.asarray(p["scores"][row], dtype=np.float32) for p in parts])
            if exclude:
                keep = ids != vertices[row]
                ids, scores = ids[keep], scores[keep]
            out_ids[row], out_scores[row] = topk_by_score(ids, scores, want)
        return _RoutedResponse(
            ids=out_ids, scores=out_scores,
            store_hit=all(bool(p.get("store_hit")) for p in parts),
            version=versions.pop())


class ShardRouter:
    """The deployable router: a :class:`QueryServer` whose service is a
    :class:`ShardedBackendService`, run on a :class:`ServerThread`.

    Two construction shapes:

    * ``ShardRouter(graphs, addresses)`` — route over externally managed
      shard servers (e.g. separate processes started with ``repro-gosh
      serve``).
    * ``ShardRouter.spawn(service_or_factory, graphs, shard_count=N)`` —
      spawn N in-process shard servers first (each on its own event-loop
      thread, port 0), then route over them; ``stop()`` tears them down.
      Pass a zero-argument *factory* to give every shard its own
      ``EmbeddingService`` (same store directory, independent serving
      locks) so shard fan-outs genuinely run in parallel.
    """

    def __init__(self, graphs: Mapping[str, Any], addresses: Iterable[str], *,
                 default_graph: "str | None" = None,
                 default_tool: "str | None" = None,
                 host: str = "127.0.0.1", port: int = 0,
                 socket_path: "str | None" = None,
                 max_inflight: int = 64, queue_depth: int = 128,
                 max_batch: int = 32, shard_timeout_s: float = 30.0,
                 http_port: "int | None" = None, http_host: str = "127.0.0.1",
                 owned: "list[ServerThread] | None" = None):
        self.backend = ShardedBackendService(
            addresses, graphs, timeout_s=shard_timeout_s)
        self.server = QueryServer(
            self.backend, graphs, host=host, port=port,
            socket_path=socket_path, default_graph=default_graph,
            default_tool=default_tool, max_inflight=max_inflight,
            queue_depth=queue_depth, max_batch=max_batch)
        self.handle = ServerThread(self.server, http_port=http_port,
                                   http_host=http_host)
        self._owned = list(owned or [])
        self.address: "str | None" = None
        self.http_address: "str | None" = None

    @classmethod
    def spawn(cls, service_or_factory: Any, graphs: Mapping[str, Any], *,
              shard_count: int, shard_host: str = "127.0.0.1",
              shard_max_inflight: int = 64, shard_queue_depth: int = 128,
              shard_max_batch: int = 32,
              **router_kwargs: Any) -> "ShardRouter":
        """Spawn ``shard_count`` in-process shard servers, then route over
        them.  ``service_or_factory`` is a service instance shared by every
        shard, or a zero-argument factory called once per shard."""
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        owned: list[ServerThread] = []
        addresses: list[str] = []
        try:
            for _ in range(shard_count):
                service = (service_or_factory() if callable(service_or_factory)
                           else service_or_factory)
                shard = QueryServer(
                    service, graphs, host=shard_host, port=0,
                    max_inflight=shard_max_inflight,
                    queue_depth=shard_queue_depth, max_batch=shard_max_batch)
                handle = ServerThread(shard)
                addresses.append(handle.start())
                owned.append(handle)
        except BaseException:
            for handle in owned:
                try:
                    handle.stop()
                except Exception:
                    pass
            raise
        return cls(graphs, addresses, owned=owned, **router_kwargs)

    # ------------------------------------------------------------------ #
    def start(self) -> str:
        self.address = self.handle.start()
        self.http_address = self.handle.http_address
        return self.address

    def stop(self, *, timeout_s: float = 30.0) -> None:
        try:
            self.handle.stop(timeout_s=timeout_s)
        finally:
            self.backend.close()
            for handle in self._owned:
                try:
                    handle.stop(timeout_s=timeout_s)
                except Exception:
                    pass

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
