"""Wire protocol of the resident query server: newline-delimited JSON.

One frame per line, UTF-8 JSON objects in both directions — trivially
debuggable with ``nc``/``socat`` and language-agnostic for clients.  A
request frame names a verb plus its arguments::

    {"id": 7, "verb": "query", "vertices": [0, 12], "k": 5}
    {"id": 8, "verb": "query", "vectors": [[0.1, 0.2, ...]], "k": 3}
    {"id": 9, "verb": "query", "vertices": [3], "k": 5, "range": [0, 150]}
    {"verb": "stats"}
    {"verb": "metrics"}
    {"verb": "ping"}

A query's optional ``"range": [lo, hi)`` restricts the candidate rows — the
primitive the shard router uses to make each backend answer only for the
vertex range it owns (score bits are unchanged vs. an unranged run).

A query may also carry an optional ``"trace": {"id": ..., "span": ...}``
context (see :func:`parse_trace_context`): ``id`` is the request-scoped
trace id minted once at the client, ``span`` the *sender's* span id, which
becomes the receiver's parent.  The router forwards the context to its
shards, so one user query yields a single cross-process trace.  The
``metrics`` verb returns the stats snapshot rendered as Prometheus text
(``{"ok": true, "verb": "metrics", "text": ..., "content_type": ...}``).

and every reply echoes the request's ``id`` (when one was given) with
``"ok": true`` plus the answer, or ``"ok": false`` with a machine-readable
``code`` (see :data:`ERROR_CODES`) and a human-readable ``error``.  Query
replies additionally carry the server-side ``timing`` breakdown
(``queue_wait_s`` / ``service_s`` / ``total_s``, from monotonic stamps taken
at receive, admission into a batch, and answer) so load generators can
attribute latency to queueing vs. service without clock synchronisation,
and echo a client-supplied ``created`` stamp back untouched for the
client's own delay accounting (delay = receive − create, the WSN-testbed
idiom).

The module owns frame encode/decode plus the translation of a ``query``
frame into an :class:`repro.api.QueryRequest`; the server itself never
parses JSON fields directly.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

import numpy as np

from ..api import QueryRequest

__all__ = ["FrameError", "MAX_FRAME_BYTES", "ERROR_CODES",
           "encode_frame", "decode_frame", "parse_query_request",
           "parse_trace_context", "error_reply"]

#: Upper bound on one encoded frame (requests *and* replies).  A resident
#: server must not let one client allocate unbounded buffers; vector-query
#: frames comfortably fit (a 1024-dim float vector is ~12 kB of JSON).
MAX_FRAME_BYTES = 1 << 20

#: Machine-readable failure codes carried in ``"ok": false`` replies.
ERROR_CODES = (
    "bad-frame",       # not valid JSON / not an object / oversized
    "bad-request",     # well-formed JSON but invalid query arguments
    "unknown-verb",    # verb not one of query/stats/metrics/ping
    "overloaded",      # admission control rejected (queue/inflight full)
    "shutting-down",   # server is draining; no new work admitted
    "error",           # the service raised while answering this request
)


class FrameError(ValueError):
    """A frame the server cannot serve, tagged with its reply ``code``."""

    def __init__(self, code: str, message: str):
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code


def encode_frame(obj: Mapping[str, Any]) -> bytes:
    """One JSON object, compact separators, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a frame dict (raises :class:`FrameError`)."""
    if len(line) > MAX_FRAME_BYTES:
        raise FrameError("bad-frame", f"frame exceeds {MAX_FRAME_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError("bad-frame", f"invalid JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise FrameError("bad-frame", "frame must be a JSON object")
    return obj


def error_reply(code: str, message: str, *, request_id: Any = None,
                detail: "Mapping[str, Any] | None" = None) -> dict[str, Any]:
    """The canonical ``"ok": false`` reply frame.

    ``detail`` attaches a machine-readable payload when the ``code`` alone
    is ambiguous — e.g. an ``overloaded`` rejection carries
    ``{"tool": ..., "max_inflight_per_tool": ...}`` when it came from a
    per-tool quota rather than the global admission gate.
    """
    reply: dict[str, Any] = {"ok": False, "code": code, "error": message}
    if request_id is not None:
        reply["id"] = request_id
    if detail is not None:
        reply["detail"] = dict(detail)
    return reply


def parse_query_request(frame: Mapping[str, Any], *,
                        graphs: Mapping[str, Any],
                        default_graph: str | None,
                        default_tool: str | None) -> QueryRequest:
    """Translate a ``query`` frame into a :class:`~repro.api.QueryRequest`.

    ``graphs`` maps the names the server loaded at startup to graph objects;
    a frame may omit ``graph``/``tool`` when the server has defaults.  All
    validation failures raise :class:`FrameError` with code ``bad-request``
    so the connection handler can reply instead of dying.
    """
    tool = frame.get("tool", default_tool)
    if not isinstance(tool, str) or not tool:
        raise FrameError("bad-request",
                         "frame needs a 'tool' (server has no default tool)")
    graph_name = frame.get("graph", default_graph)
    if not isinstance(graph_name, str) or graph_name not in graphs:
        raise FrameError(
            "bad-request",
            f"unknown graph {graph_name!r}; served graphs: {', '.join(sorted(graphs))}")
    k = frame.get("k", 10)
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise FrameError("bad-request", f"'k' must be a positive integer, got {k!r}")
    vertices = frame.get("vertices")
    vectors = frame.get("vectors")
    if vectors is not None:
        try:
            vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        except (TypeError, ValueError) as exc:
            raise FrameError("bad-request", f"'vectors' is not numeric: {exc}") from exc
        if vectors.ndim != 2 or not np.isfinite(vectors).all():
            raise FrameError("bad-request",
                             "'vectors' must be a finite (Q, d) number matrix")
    if vertices is not None:
        try:
            vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        except (TypeError, ValueError, OverflowError) as exc:
            raise FrameError("bad-request", f"'vertices' is not integral: {exc}") from exc
        if vertices.ndim != 1 or vertices.size == 0:
            raise FrameError("bad-request",
                             "'vertices' must be one id or a non-empty id list")
    metric = frame.get("metric")
    backend = frame.get("backend")
    exclude_self = frame.get("exclude_self", True)
    if not isinstance(exclude_self, bool):
        raise FrameError("bad-request", "'exclude_self' must be a boolean")
    trace_ctx = parse_trace_context(frame)
    vertex_range = frame.get("range")
    if vertex_range is not None:
        ok = (isinstance(vertex_range, (list, tuple)) and len(vertex_range) == 2
              and all(isinstance(b, int) and not isinstance(b, bool)
                      for b in vertex_range)
              and 0 <= vertex_range[0] < vertex_range[1])
        if not ok:
            raise FrameError(
                "bad-request",
                f"'range' must be [lo, hi] with 0 <= lo < hi, got {vertex_range!r}")
        vertex_range = (int(vertex_range[0]), int(vertex_range[1]))
    try:
        return QueryRequest(tool=tool, graph=graphs[graph_name],
                            vertices=vertices, vectors=vectors, k=k,
                            metric=metric, backend=backend,
                            exclude_self=exclude_self,
                            vertex_range=vertex_range,
                            trace=trace_ctx)
    except ValueError as exc:   # e.g. neither/both of vertices and vectors
        raise FrameError("bad-request", str(exc)) from exc


def parse_trace_context(frame: Mapping[str, Any]) -> "dict[str, str] | None":
    """The optional ``"trace"`` field as a ``{"id", "parent"}`` context.

    The sender stamps ``{"id": <trace id>, "span": <its own span id>}``;
    on receipt the sender's span becomes this hop's ``parent``.  Soft
    validation by design: tracing must never fail a query, so anything
    that is not a well-formed context is treated as absent.
    """
    raw = frame.get("trace")
    if not isinstance(raw, Mapping):
        return None
    trace_id = raw.get("id")
    if not isinstance(trace_id, str) or not trace_id:
        return None
    ctx = {"id": trace_id}
    parent = raw.get("span")
    if isinstance(parent, str) and parent:
        ctx["parent"] = parent
    return ctx
