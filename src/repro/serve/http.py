"""Stdlib-only HTTP/1.1 front for the resident query server.

Ordinary clients (curl, browsers, any language's HTTP stack) should not
need the NDJSON socket protocol to ask for neighbours.  :class:`HttpFront`
binds a second listener on the *same* event loop as an attached
:class:`~repro.serve.server.QueryServer` and maps three routes onto the
existing frame schema:

* ``POST /query`` — body is exactly a query frame's JSON (``vertices`` /
  ``vectors``, ``k``, optional ``tool``/``graph``/``metric``/``backend``/
  ``exclude_self``/``range``); the reply body is the reply frame.
* ``GET /stats`` — the ``stats`` verb's snapshot.
* ``GET /metrics`` — the same snapshot rendered in Prometheus text
  exposition format (``repro_``-prefixed series; see the README's
  "Observability" taxonomy) — point a Prometheus scrape job here.
* ``GET /ping`` — liveness.

Nothing is re-implemented: every request funnels through
:meth:`QueryServer.submit_frame`, so HTTP clients get the *same* typed
error codes (``bad-frame``/``bad-request``/``overloaded``/…), the same
admission control, the same microbatching, and the same drain semantics as
NDJSON clients — just carried on HTTP status codes (``overloaded`` and
``shutting-down`` map to 503 with ``Retry-After``, ``bad-*`` to 400,
``unknown-verb`` to 404, ``error`` to 500).

The parser is deliberately small: HTTP/1.0-and-1.1, keep-alive,
``Content-Length`` bodies only (no chunked uploads), headers capped at 16
KiB and bodies at the frame limit — the same bounded-allocation stance as
the NDJSON listener.  It is stdlib-only by design (the container bakes no
HTTP framework), asyncio streams + hand-rolled request lines.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from .protocol import MAX_FRAME_BYTES, FrameError, decode_frame

__all__ = ["HttpFront", "STATUS_BY_CODE"]

#: Map the protocol's typed error codes onto HTTP status codes.
STATUS_BY_CODE = {
    "bad-frame": 400,
    "bad-request": 400,
    "unknown-verb": 404,
    "overloaded": 503,
    "shutting-down": 503,
    "error": 500,
}

#: Upper bound on one request's header block (request line included).
MAX_HEADER_BYTES = 16 * 1024


class _BadRequest(Exception):
    """An HTTP-level (not frame-level) parse failure: status + message."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class HttpFront:
    """HTTP/1.1 adapter in front of one :class:`QueryServer`.

    Runs on the server's event loop; start/stop from that loop (or let
    :class:`~repro.serve.server.ServerThread` manage it via ``http_port``).
    """

    def __init__(self, server, *, host: str = "127.0.0.1", port: int = 0):
        self.server = server
        self.host, self.port = host, port
        self._listener: "asyncio.base_events.Server | None" = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._handlers: set[asyncio.Task] = set()
        # Counters (surfaced under "http" in the server's stats verb).
        self.connections_total = 0
        self.requests_total = 0
        self.responses_by_status: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> str:
        if self._listener is not None:
            raise RuntimeError("HTTP front already started")
        self._listener = await asyncio.start_server(
            self._on_connect, self.host, self.port, limit=MAX_HEADER_BYTES)
        self.port = self._listener.sockets[0].getsockname()[1]
        self.server.http_front = self
        return self.address

    async def stop(self) -> None:
        """Close the listener and every open connection, then reap handlers."""
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass
        if self._handlers:
            _, stragglers = await asyncio.wait(self._handlers, timeout=5.0)
            for task in stragglers:
                task.cancel()
        if self.server.http_front is self:
            self.server.http_front = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        self.connections_total += 1
        self._writers.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    keep_alive = await self._serve_one(reader, writer)
                except _BadRequest as exc:
                    await self._respond(
                        writer, exc.status,
                        {"ok": False, "code": "bad-frame", "error": str(exc)},
                        keep_alive=False)
                    break
                except (ConnectionError, asyncio.IncompleteReadError,
                        asyncio.LimitOverrunError, ValueError):
                    break
                if not keep_alive:
                    break
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        """Parse one request, answer it; return whether to keep the
        connection alive.  Raises on connection teardown."""
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("client closed")
        try:
            method, target, version = request_line.decode("ascii").split()
        except (UnicodeDecodeError, ValueError) as exc:
            raise _BadRequest(400, f"malformed request line: {exc}") from exc
        headers: dict[str, str] = {}
        header_bytes = len(request_line)
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _BadRequest(431, "header block too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        keep_alive = (headers.get("connection", "").lower() != "close"
                      and version != "HTTP/1.0")
        body = b""
        if headers.get("content-length"):
            try:
                length = int(headers["content-length"])
            except ValueError as exc:
                raise _BadRequest(400, "bad Content-Length") from exc
            if length < 0:
                # Before this check a negative length reached readexactly(),
                # whose ValueError tore the connection down with no reply.
                raise _BadRequest(400, "bad Content-Length")
            if length > MAX_FRAME_BYTES:
                raise _BadRequest(413, f"body exceeds {MAX_FRAME_BYTES} bytes")
            body = await reader.readexactly(length)
        self.requests_total += 1

        path = target.split("?", 1)[0]
        if path == "/ping":
            if method != "GET":
                return await self._method_not_allowed(writer, "GET", keep_alive)
            reply = await self.server.submit_frame({"verb": "ping"})
        elif path == "/stats":
            if method != "GET":
                return await self._method_not_allowed(writer, "GET", keep_alive)
            reply = await self.server.submit_frame({"verb": "stats"})
        elif path == "/metrics":
            if method != "GET":
                return await self._method_not_allowed(writer, "GET", keep_alive)
            reply = await self.server.submit_frame({"verb": "metrics"})
            if reply.get("ok"):
                # Prometheus scrapers want the text exposition format, not
                # a JSON envelope around it.
                await self._respond(
                    writer, 200, None, keep_alive=keep_alive,
                    raw_body=reply["text"].encode("utf-8"),
                    content_type=reply.get("content_type", "text/plain"))
                return keep_alive
        elif path == "/query":
            if method != "POST":
                return await self._method_not_allowed(writer, "POST", keep_alive)
            try:
                frame = decode_frame(body)
            except FrameError as exc:
                # A body that does not decode means the framing cannot be
                # trusted (e.g. a Content-Length that undercut the real
                # body leaves its tail in the buffer, to be misparsed as
                # the next request line).  Close instead of keeping a
                # desynced connection alive.
                self.server.malformed_frames += 1
                await self._respond(
                    writer, STATUS_BY_CODE[exc.code],
                    {"ok": False, "code": exc.code, "error": str(exc)},
                    keep_alive=False)
                return False
            frame["verb"] = "query"   # the route names the verb
            reply = await self.server.submit_frame(frame)
        else:
            await self._respond(
                writer, 404,
                {"ok": False, "code": "unknown-verb",
                 "error": f"no route {path!r}; routes: "
                          f"POST /query, GET /stats, GET /metrics, GET /ping"},
                keep_alive=keep_alive)
            return keep_alive

        status = 200 if reply.get("ok") else STATUS_BY_CODE.get(
            reply.get("code", "error"), 500)
        await self._respond(writer, status, reply, keep_alive=keep_alive)
        return keep_alive

    async def _method_not_allowed(self, writer: asyncio.StreamWriter,
                                  allowed: str, keep_alive: bool) -> bool:
        await self._respond(
            writer, 405,
            {"ok": False, "code": "bad-request",
             "error": f"method not allowed; use {allowed}"},
            keep_alive=keep_alive, extra_headers=[("Allow", allowed)])
        return keep_alive

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       payload: "dict[str, Any] | None", *, keep_alive: bool,
                       extra_headers: "list[tuple[str, str]] | None" = None,
                       raw_body: "bytes | None" = None,
                       content_type: str = "application/json",
                       ) -> None:
        self.responses_by_status[status] = self.responses_by_status.get(status, 0) + 1
        if raw_body is not None:
            body = raw_body
        else:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  431: "Request Header Fields Too Large",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Error")
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
            ("Connection", "keep-alive" if keep_alive else "close"),
        ]
        if status == 503:
            headers.append(("Retry-After", "1"))
        headers.extend(extra_headers or [])
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                + "".join(f"{k}: {v}\r\n" for k, v in headers)
                + "\r\n").encode("ascii")
        writer.write(head + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        return {
            "address": self.address,
            "connections_total": self.connections_total,
            "connections_open": len(self._writers),
            "requests_total": self.requests_total,
            "responses_by_status": {
                str(k): v for k, v in sorted(self.responses_by_status.items())},
        }
