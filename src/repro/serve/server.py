"""`QueryServer` — the resident asyncio serving process over `EmbeddingService`.

This is the piece that turns the library into a service: graphs are loaded
and embeddings warmed **once**, then a long-lived process answers k-NN
queries over the newline-delimited-JSON protocol (:mod:`repro.serve.protocol`)
on a TCP or Unix socket.  The design goals, in order:

* **Bounded under overload.**  Admission control gates every query: at most
  ``max_inflight`` requests may be admitted-but-unanswered, and at most
  ``queue_depth`` of those may be waiting in the admission queue.  A request
  past either bound gets an immediate ``"code": "overloaded"`` reply — the
  server never buffers unboundedly and never makes a client infer overload
  from a timeout.
* **Concurrency feeds the microbatcher.**  Admitted requests carry a future
  and are drained — up to ``max_batch`` at a time — by a single batching
  loop into one :meth:`EmbeddingService.query_batch` call, so concurrent
  clients genuinely stack into shared backend scans (PR 5's microbatching)
  instead of serialising one-by-one.  The service call runs in a worker
  thread; the event loop keeps accepting and parsing frames meanwhile.
* **Every request is timestamped.**  Monotonic stamps at receive, admission
  into a batch, and answer give each reply a ``queue_wait_s`` / ``service_s``
  / ``total_s`` breakdown, and feed the server's bounded
  :class:`~repro.serve.metrics.LatencyHistogram`\\ s (surfaced by the
  ``stats`` verb alongside the admission counters and the service's own
  snapshot).
* **Graceful drain.**  :meth:`stop` closes the listener, stops admitting
  (``"shutting-down"`` replies), waits for every admitted request to be
  answered, then tears the loops down — in-flight work is never dropped.

Misbehaving clients cannot take the process down: malformed frames get
``bad-frame`` replies on a live connection, a client that disconnects
mid-request just has its reply dropped (the batch it joined still
completes), and a request the service raises on is retried individually so
one poisoned request cannot fail its batchmates.

For synchronous callers (CLI, tests, the load-generator benchmark)
:class:`ServerThread` runs the event loop on a daemon thread and exposes
blocking ``start()``/``stop()``.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from time import monotonic
from typing import TYPE_CHECKING, Any, Mapping

from ..faults import FAULTS
from ..obs import trace
from ..obs.export import METRICS_CONTENT_TYPE, render_stats_metrics
from .metrics import LatencyHistogram
from .protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    error_reply,
    parse_query_request,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api import QueryRequest

__all__ = ["QueryServer", "ServerThread"]


@dataclass
class _Pending:
    """One admitted query: the parsed request, its stamps, and its future."""

    request: "QueryRequest"
    request_id: Any
    created: float | None            # client's own stamp, echoed back opaque
    received: float                  # server monotonic at frame receipt
    future: "asyncio.Future[dict[str, Any]]"
    tool: str = ""                   # tool name, for per-tool quota retirement
    admitted: float = 0.0            # server monotonic at batch admission


@dataclass
class _Deferred:
    """An accepted non-query verb answered off the loop thread.

    The ``stats``/``metrics`` verbs look synchronous but must not be:
    :meth:`EmbeddingService.stats` takes the serving lock, which an
    executor-side ``query_batch`` (or an embed-on-miss) can hold for
    minutes — answering on the loop thread would freeze *every*
    connection exactly when observability matters most.  Like
    :class:`_Pending`, the reply arrives via ``future``.
    """

    future: "asyncio.Future[dict[str, Any]]"


@dataclass(eq=False)       # identity semantics: connections live in a set
class _Connection:
    """Per-connection state: serialized writes + liveness for reply drops."""

    writer: asyncio.StreamWriter
    out: "asyncio.Queue[bytes | None]" = field(default_factory=asyncio.Queue)
    writer_task: "asyncio.Task | None" = None
    closed: bool = False


class QueryServer:
    """Resident NDJSON k-NN server over an :class:`EmbeddingService`.

    ``service`` needs only ``query_batch(requests)`` and ``stats()`` — the
    production object is :class:`repro.api.EmbeddingService`, tests inject
    stubs.  ``graphs`` maps request-visible names to loaded graphs;
    ``default_graph``/``default_tool`` fill in omitted frame fields (the
    single-graph, single-tool deployment needs no per-request naming).
    """

    def __init__(self, service, graphs: Mapping[str, Any], *,
                 host: str = "127.0.0.1", port: int = 0,
                 socket_path: "str | None" = None,
                 default_graph: "str | None" = None,
                 default_tool: "str | None" = None,
                 max_inflight: int = 64, queue_depth: int = 128,
                 max_batch: int = 32,
                 max_inflight_per_tool: "int | None" = None,
                 stats_timeout_s: float = 2.0):
        if not graphs:
            raise ValueError("serve at least one graph")
        if max_inflight < 1 or queue_depth < 1 or max_batch < 1:
            raise ValueError("max_inflight, queue_depth and max_batch must be >= 1")
        if max_inflight_per_tool is not None and max_inflight_per_tool < 1:
            raise ValueError("max_inflight_per_tool must be >= 1 (or None)")
        if default_graph is None and len(graphs) == 1:
            default_graph = next(iter(graphs))
        if default_graph is not None and default_graph not in graphs:
            raise ValueError(f"default_graph {default_graph!r} is not a served graph")
        self.service = service
        self.graphs = dict(graphs)
        self.host, self.port, self.socket_path = host, port, socket_path
        self.default_graph, self.default_tool = default_graph, default_tool
        self.max_inflight, self.queue_depth, self.max_batch = (
            max_inflight, queue_depth, max_batch)
        self.max_inflight_per_tool = max_inflight_per_tool
        self._inflight_by_tool: dict[str, int] = {}
        if stats_timeout_s <= 0:
            raise ValueError("stats_timeout_s must be > 0")
        self.stats_timeout_s = stats_timeout_s
        # Last good EmbeddingService.stats() snapshot, served (marked
        # "stale": true) when a fresh one cannot be taken in time.
        self._service_stats_cache: "dict[str, Any] | None" = None
        self._service_stats_task: "asyncio.Task | None" = None

        # Admission + lifecycle state (all touched only on the event loop).
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue()
        self._inflight = 0
        self._stopping = False
        self._server: "asyncio.base_events.Server | None" = None
        self._batch_task: "asyncio.Task | None" = None
        self._drained: "asyncio.Event | None" = None
        self._connections: set[_Connection] = set()
        # Set by an attached repro.serve.http.HttpFront; surfaced in stats.
        self.http_front = None

        # Serving counters (read by the stats verb).
        self.connections_total = 0
        self.frames_received = 0
        self.queries_admitted = 0
        self.queries_answered = 0
        self.query_errors = 0
        self.rejected_overload = 0
        self.rejected_tool_quota = 0
        self.rejected_shutdown = 0
        self.malformed_frames = 0
        self.batch_failures = 0
        self.batch_length_mismatches = 0
        self.replies_dropped = 0
        self.microbatches = 0
        self.max_batch_seen = 0
        self.stats_stale_served = 0
        self.queue_wait = LatencyHistogram()
        self.service_time = LatencyHistogram()
        self.total_time = LatencyHistogram()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> str:
        """Connectable address string: ``host:port`` or ``unix:<path>``."""
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"{self.host}:{self.port}"

    async def start(self) -> str:
        """Bind, spawn the batching loop, and return the bound address."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._drained = asyncio.Event()
        self._drained.set()
        self._batch_task = asyncio.get_running_loop().create_task(self._batch_loop())
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=self.socket_path, limit=MAX_FRAME_BYTES)
        else:
            self._server = await asyncio.start_server(
                self._on_connect, self.host, self.port, limit=MAX_FRAME_BYTES)
            self.port = self._server.sockets[0].getsockname()[1]
        return self.address

    async def stop(self) -> None:
        """Graceful drain: stop admitting, answer everything admitted, close.

        Safe to call more than once; later calls just wait for the first
        drain to finish.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._drained is not None:
            await self._drained.wait()            # every admitted query answered
        if self._batch_task is not None:
            self._batch_task.cancel()
            try:
                await self._batch_task
            except asyncio.CancelledError:
                pass
            self._batch_task = None
        for conn in list(self._connections):
            await self._close_connection(conn)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _on_connect(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer=writer)
        self._connections.add(conn)
        self.connections_total += 1
        conn.writer_task = asyncio.get_running_loop().create_task(self._write_loop(conn))
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, ValueError, asyncio.LimitOverrunError,
                        asyncio.IncompleteReadError):
                    # Reset, or a line past the frame limit: drop the client.
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                self.frames_received += 1
                await self._handle_frame(line, conn)
        finally:
            await self._close_connection(conn)

    async def _write_loop(self, conn: _Connection) -> None:
        """Single writer per connection: replies come from the reader task
        (immediate verbs) *and* from batch-completion forwarders, so all
        writes funnel through one queue to keep frames unmangled."""
        while True:
            payload = await conn.out.get()
            if payload is None:
                break
            try:
                conn.writer.write(payload)
                await conn.writer.drain()
            except (ConnectionError, RuntimeError):
                conn.closed = True
                break

    async def _close_connection(self, conn: _Connection) -> None:
        self._connections.discard(conn)
        # Mark the connection dead *before* enqueueing the writer sentinel:
        # a _send racing this close must see closed=True and count the reply
        # as dropped — a payload queued after the sentinel would vanish
        # without ever incrementing replies_dropped.
        conn.closed = True
        if conn.writer_task is not None:
            # Flush replies already queued (drain-on-shutdown must not race
            # the final writes), then stop the writer.
            conn.out.put_nowait(None)
            await conn.writer_task
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    def _send(self, conn: _Connection, reply: Mapping[str, Any]) -> None:
        if conn.closed:
            self.replies_dropped += 1
            return
        conn.out.put_nowait(encode_frame(reply))

    # ------------------------------------------------------------------ #
    # Frame dispatch + admission control
    # ------------------------------------------------------------------ #
    async def _handle_frame(self, line: bytes, conn: _Connection) -> None:
        try:
            frame = decode_frame(line)
        except FrameError as exc:
            self.malformed_frames += 1
            self._send(conn, error_reply(exc.code, str(exc)))
            return
        outcome = self.dispatch_frame(frame)
        if isinstance(outcome, (_Pending, _Deferred)):
            asyncio.get_running_loop().create_task(self._forward_reply(outcome, conn))
        else:
            self._send(conn, outcome)

    def dispatch_frame(self, frame: Mapping[str, Any],
                       ) -> "dict[str, Any] | _Pending | _Deferred":
        """Serve one decoded frame, transport-independently.

        Returns an immediate reply dict (ping, errors, admission
        rejections), an admitted :class:`_Pending` whose future resolves to
        the reply once its batch is answered, or a :class:`_Deferred` for
        the observability verbs (answered off-loop; see
        :meth:`_answer_observability`).  Both the NDJSON connection handler
        and the HTTP front go through here, so every transport shares the
        same verbs, error codes, and admission gate.  Must run on the
        event loop.
        """
        request_id = frame.get("id")
        verb = frame.get("verb", "query")
        if verb == "ping":
            return {"ok": True, "verb": "ping", "id": request_id}
        if verb in ("stats", "metrics"):
            # Observability must work *especially* under overload, so these
            # bypass admission and the batch queue entirely — and never
            # touch the serving lock on the loop thread (the service
            # snapshot runs in an executor with a stale-cache fallback).
            deferred = _Deferred(
                future=asyncio.get_running_loop().create_future())
            asyncio.get_running_loop().create_task(
                self._answer_observability(verb, request_id, deferred.future))
            return deferred
        if verb != "query":
            return error_reply(
                "unknown-verb",
                f"unknown verb {verb!r}; expected query/stats/metrics/ping",
                request_id=request_id)
        try:
            request = parse_query_request(
                frame, graphs=self.graphs, default_graph=self.default_graph,
                default_tool=self.default_tool)
        except FrameError as exc:
            self.malformed_frames += 1
            return error_reply(exc.code, str(exc), request_id=request_id)
        # --- admission gate -------------------------------------------- #
        if self._stopping:
            self.rejected_shutdown += 1
            return error_reply(
                "shutting-down", "server is draining; retry elsewhere",
                request_id=request_id)
        if self._inflight >= self.max_inflight or self._queue.qsize() >= self.queue_depth:
            self.rejected_overload += 1
            return error_reply(
                "overloaded",
                f"admission rejected: {self._inflight} in flight "
                f"(max {self.max_inflight}), {self._queue.qsize()} queued "
                f"(depth {self.queue_depth})",
                request_id=request_id)
        tool = (request.tool if isinstance(request.tool, str)
                else request.tool.name)
        if (self.max_inflight_per_tool is not None
                and self._inflight_by_tool.get(tool, 0) >= self.max_inflight_per_tool):
            # One hot tool saturating its quota must not read as global
            # overload to everyone else — same code, typed detail.
            self.rejected_tool_quota += 1
            return error_reply(
                "overloaded",
                f"tool {tool!r} is at its admission quota "
                f"({self.max_inflight_per_tool} in flight); other tools "
                f"are still admitted",
                request_id=request_id,
                detail={"tool": tool,
                        "max_inflight_per_tool": self.max_inflight_per_tool})
        if trace.enabled and request.trace is not None:
            # This hop's own span id: recorded on the request's server span
            # and forwarded to downstream shards as their parent.
            request.trace["span"] = trace.new_span_id()
        pending = _Pending(request=request, request_id=request_id,
                           created=frame.get("created"), received=monotonic(),
                           future=asyncio.get_running_loop().create_future(),
                           tool=tool)
        self._admit(pending)
        return pending

    async def submit_frame(self, frame: Mapping[str, Any]) -> dict[str, Any]:
        """Answer one decoded frame end-to-end (the HTTP front's entry).

        Counts the frame, dispatches it, and — when it was admitted or
        deferred — awaits the answer.  Returns the reply dict.
        """
        self.frames_received += 1
        outcome = self.dispatch_frame(frame)
        if isinstance(outcome, (_Pending, _Deferred)):
            return await outcome.future
        return outcome

    def _admit(self, pending: _Pending) -> None:
        self._inflight += 1
        self._inflight_by_tool[pending.tool] = (
            self._inflight_by_tool.get(pending.tool, 0) + 1)
        self.queries_admitted += 1
        assert self._drained is not None
        self._drained.clear()
        self._queue.put_nowait(pending)

    def _retire(self, batch: "list[_Pending]") -> None:
        self._inflight -= len(batch)
        for p in batch:
            remaining = self._inflight_by_tool.get(p.tool, 0) - 1
            if remaining > 0:
                self._inflight_by_tool[p.tool] = remaining
            else:
                self._inflight_by_tool.pop(p.tool, None)
        if self._inflight == 0:
            assert self._drained is not None
            self._drained.set()

    async def _forward_reply(self, pending: "_Pending | _Deferred",
                             conn: _Connection) -> None:
        reply = await pending.future
        self._send(conn, reply)

    # ------------------------------------------------------------------ #
    # The batching loop: admission queue -> EmbeddingService.query_batch
    # ------------------------------------------------------------------ #
    async def _batch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._serve_batch(batch)

    async def _serve_batch(self, batch: list[_Pending]) -> None:
        loop = asyncio.get_running_loop()
        now = monotonic()
        for p in batch:
            p.admitted = now
        self.microbatches += 1
        self.max_batch_seen = max(self.max_batch_seen, len(batch))
        requests = [p.request for p in batch]
        try:
            responses: list[Any] = list(await loop.run_in_executor(
                None, self.service.query_batch, requests))
        except Exception:
            # One poisoned request must not fail its batchmates: fall back
            # to per-request isolation and report the failure individually.
            self.batch_failures += 1
            responses = []
            for request in requests:
                try:
                    responses.append((await loop.run_in_executor(
                        None, self.service.query_batch, [request]))[0])
                except Exception as exc:
                    responses.append(exc)
        if len(responses) != len(batch):
            # A misbehaving service must not strand futures: zip would
            # silently drop the unmatched pendings, their _forward_reply
            # tasks would hang forever, and _retire(len(batch)) would drift
            # _inflight.  Fail every position past the shorter list instead.
            self.batch_length_mismatches += 1
            exc = RuntimeError(
                f"service returned {len(responses)} responses for "
                f"{len(batch)} requests")
            responses = responses[:len(batch)]
            responses.extend([exc] * (len(batch) - len(responses)))
        answered = monotonic()
        for p, response in zip(batch, responses):
            self._finish(p, response, answered)
        self._retire(batch)

    def _finish(self, p: _Pending, response: Any, answered: float) -> None:
        queue_wait = p.admitted - p.received
        service_s = answered - p.admitted
        total = answered - p.received
        self.queue_wait.observe(queue_wait)
        self.service_time.observe(service_s)
        self.total_time.observe(total)
        timing = {"queue_wait_s": round(queue_wait, 6),
                  "service_s": round(service_s, 6),
                  "total_s": round(total, 6)}
        if isinstance(response, Exception):
            self.query_errors += 1
            reply = error_reply("error", f"{type(response).__name__}: {response}",
                                request_id=p.request_id)
            reply["timing"] = timing
        else:
            self.queries_answered += 1
            reply = {
                "ok": True, "verb": "query", "id": p.request_id,
                "ids": response.ids.tolist(),
                "scores": response.scores.tolist(),
                "store_hit": bool(response.store_hit),
                "version": int(response.entry.version),
                "timing": timing,
            }
        if p.created is not None:
            reply["created"] = p.created
        if trace.enabled:
            # Back-date from the stamps already taken — the server span
            # costs nothing on the untraced fast path.
            args: dict[str, Any] = {
                "address": self.address, "tool": p.tool,
                "queue_wait_s": timing["queue_wait_s"],
                "service_s": timing["service_s"],
                "ok": not isinstance(response, Exception),
            }
            tctx = getattr(p.request, "trace", None)
            if tctx:
                # Context keys are id/parent/span; exported span args use
                # "trace" for the id so every hop's events key the same way.
                args.update({("trace" if k == "id" else k): v
                             for k, v in tctx.items() if v})
            trace.add_complete("server.query", total, **args)
        p.future.set_result(reply)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """One coherent snapshot: admission, latency, and service counters.

        Blocking form (takes the service's serving lock); the wire verbs go
        through :meth:`_answer_observability` instead, which fetches the
        service part off-loop with a stale-snapshot fallback.
        """
        return self._assemble_stats(self.service.stats())

    def metrics_text(self) -> str:
        """The stats snapshot rendered in Prometheus text format."""
        return render_stats_metrics(self.stats())

    async def _answer_observability(self, verb: str, request_id: Any,
                                    future: "asyncio.Future[dict[str, Any]]",
                                    ) -> None:
        """Answer a ``stats``/``metrics`` frame without blocking the loop.

        The server-side counters are read synchronously (loop-owned, always
        fresh); only the service snapshot — the part that takes the serving
        lock — runs in the executor, bounded by ``stats_timeout_s``.  On
        timeout the last good snapshot is served with ``"stale": true`` so
        observability keeps answering while the service is wedged (the
        satellite bug this replaces: a stats poll during a minutes-long
        ``query_batch`` froze every connection).
        """
        service_stats = await self._service_stats_snapshot()
        stats = self._assemble_stats(service_stats)
        if verb == "stats":
            reply = {"ok": True, "verb": "stats", "id": request_id,
                     "stats": stats}
        else:
            reply = {"ok": True, "verb": "metrics", "id": request_id,
                     "content_type": METRICS_CONTENT_TYPE,
                     "text": render_stats_metrics(stats)}
        if not future.done():
            future.set_result(reply)

    async def _service_stats_snapshot(self) -> dict[str, Any]:
        """``service.stats()`` in the executor, single-flight + bounded.

        Concurrent polls share one in-flight snapshot (shield + await); a
        poll the deadline expires on falls back to the cached snapshot
        marked ``"stale": true`` — the underlying task keeps running and
        refreshes the cache for the next poll when the lock frees up.
        """
        task = self._service_stats_task
        if task is None or task.done():
            task = asyncio.get_running_loop().create_task(
                self._fetch_service_stats())
            # Retrieve a late failure so an abandoned (timed-out) fetch
            # never logs "exception was never retrieved".
            task.add_done_callback(
                lambda t: t.exception() if not t.cancelled() else None)
            self._service_stats_task = task
        try:
            return await asyncio.wait_for(asyncio.shield(task),
                                          self.stats_timeout_s)
        except asyncio.TimeoutError:
            self.stats_stale_served += 1
            stale: dict[str, Any] = dict(self._service_stats_cache or {})
            stale["stale"] = True
            return stale
        except Exception as exc:   # a misbehaving service must not kill stats
            return {"error": f"{type(exc).__name__}: {exc}"}

    async def _fetch_service_stats(self) -> dict[str, Any]:
        snapshot = await asyncio.get_running_loop().run_in_executor(
            None, self.service.stats)
        self._service_stats_cache = snapshot
        return snapshot

    def _assemble_stats(self, service_stats: Any) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "server": {
                "address": self.address,
                "graphs": sorted(self.graphs),
                "default_graph": self.default_graph,
                "default_tool": self.default_tool,
                "max_inflight": self.max_inflight,
                "queue_depth": self.queue_depth,
                "max_batch": self.max_batch,
                "max_inflight_per_tool": self.max_inflight_per_tool,
                "inflight": self._inflight,
                "inflight_by_tool": dict(self._inflight_by_tool),
                "queued": self._queue.qsize(),
                "connections_total": self.connections_total,
                "connections_open": len(self._connections),
                "frames_received": self.frames_received,
                "queries_admitted": self.queries_admitted,
                "queries_answered": self.queries_answered,
                "query_errors": self.query_errors,
                "rejected_overload": self.rejected_overload,
                "rejected_tool_quota": self.rejected_tool_quota,
                "rejected_shutdown": self.rejected_shutdown,
                "malformed_frames": self.malformed_frames,
                "batch_failures": self.batch_failures,
                "batch_length_mismatches": self.batch_length_mismatches,
                "replies_dropped": self.replies_dropped,
                "microbatches": self.microbatches,
                "max_batch_seen": self.max_batch_seen,
                "stats_stale_served": self.stats_stale_served,
            },
            "latency": {
                "queue_wait": self.queue_wait.summary(),
                "service": self.service_time.summary(),
                "total": self.total_time.summary(),
                # Full bucket payloads: the router merges these across
                # shards into fleet-wide percentiles, and the Prometheus
                # renderer re-expands them into _bucket series.
                "histograms": {
                    "queue_wait": self.queue_wait.to_dict(),
                    "service": self.service_time.to_dict(),
                    "total": self.total_time.to_dict(),
                },
            },
            "service": service_stats,
            "faults": FAULTS.snapshot(),
        }
        if self.http_front is not None:
            stats["http"] = self.http_front.stats()
        return stats


class ServerThread:
    """Run a :class:`QueryServer` on a daemon event-loop thread.

    The blocking facade for synchronous callers::

        with ServerThread(server) as address:
            client = ServeClient(address)
            ...

    ``http_port`` additionally binds a :class:`repro.serve.http.HttpFront`
    to the same server on the same loop (``http_address`` after start).

    ``stop()`` performs the server's graceful drain before the loop exits.
    A drain that outlives ``timeout_s`` raises :class:`TimeoutError` — but
    still stops the event loop and joins the thread, so a wedged drain
    cannot leak the daemon loop thread.
    """

    def __init__(self, server: QueryServer, *, start_timeout_s: float = 30.0,
                 http_port: "int | None" = None, http_host: str = "127.0.0.1"):
        self.server = server
        self.start_timeout_s = start_timeout_s
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self.address: "str | None" = None
        self.http_address: "str | None" = None
        self._http = None
        if http_port is not None:
            from .http import HttpFront
            self._http = HttpFront(server, host=http_host, port=http_port)

    def start(self) -> str:
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._loop = loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _run() -> None:
            # Bind the loop locally: stop() nulls self._loop before joining.
            asyncio.set_event_loop(loop)
            ready.set()
            loop.run_forever()
            # Drain loop-internal cleanup after run_forever is stopped.
            loop.close()

        self._thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
        self._thread.start()
        ready.wait(self.start_timeout_s)
        future = asyncio.run_coroutine_threadsafe(self.server.start(), self._loop)
        self.address = future.result(self.start_timeout_s)
        if self._http is not None:
            future = asyncio.run_coroutine_threadsafe(self._http.start(), self._loop)
            self.http_address = future.result(self.start_timeout_s)
        return self.address

    async def _shutdown(self) -> None:
        await self.server.stop()
        if self._http is not None:
            await self._http.stop()

    def stop(self, *, timeout_s: float = 30.0) -> None:
        if self._loop is None or self._thread is None:
            return
        loop, thread = self._loop, self._thread
        self._loop, self._thread = None, None
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
        try:
            future.result(timeout_s)
        except FutureTimeoutError:
            # The drain is wedged (e.g. the service is stuck in a worker
            # thread).  Don't leak the daemon loop thread on top of that:
            # abandon the drain, stop the loop, and surface the timeout.
            future.cancel()
            raise TimeoutError(
                f"server drain did not finish within {timeout_s}s; event "
                f"loop stopped, in-flight replies abandoned") from None
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout_s)

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
