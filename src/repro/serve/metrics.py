"""Bounded-memory latency accounting for resident serving processes.

A server that is meant to stay up under "millions of users" cannot keep a
raw sample per request the way a benchmark harness can; it needs a
fixed-size summary that still answers the questions the load harness asks
(p50/p95/p99, mean, max).  :class:`LatencyHistogram` is the standard
log-bucketed answer: geometric bucket edges from ``min_s`` to ``max_s``
(default 1 µs → 60 s at 1.25× growth — ~84 buckets, <1 kB), O(1) observe,
percentiles read off the cumulative counts.

Quantiles are resolved to a bucket's upper edge, i.e. conservatively
rounded *up* by at most the growth factor (25%); the exact observed
``max`` clamps the top so a histogram never reports a percentile beyond
what it actually saw.  The load generator, which holds every sample
anyway, reports exact percentiles — the histogram is the server-side view.
"""

from __future__ import annotations

import math
from time import monotonic
from typing import Callable

import numpy as np

__all__ = ["LatencyHistogram", "StateClock"]

#: Dict round-trip format tag (bumped if the bucket layout ever changes).
_HIST_FORMAT = "latency-histogram/1"


class StateClock:
    """Track which state a component is in, for how long, and how often.

    The router's shard-health machinery needs more than a current-state
    enum: recovery time (how long was a shard dead before readmission?) and
    availability (what share of wall-clock was it healthy?) are the numbers
    a failure post-mortem actually asks for.  ``StateClock`` accumulates
    seconds-per-state across transitions with O(states) memory; the clock
    is injectable so state machines can be unit-tested deterministically.
    """

    def __init__(self, initial: str, *, clock: Callable[[], float] = monotonic):
        self._clock = clock
        self.state = initial
        self.since = clock()
        self.transitions = 0
        self.seconds: dict[str, float] = {initial: 0.0}

    def transition(self, state: str) -> float:
        """Enter ``state``; returns the seconds spent in the previous one."""
        now = self._clock()
        dwell = now - self.since
        self.seconds[self.state] = self.seconds.get(self.state, 0.0) + dwell
        self.state = state
        self.since = now
        self.transitions += 1
        return dwell

    def seconds_in(self, state: str) -> float:
        """Cumulative seconds spent in ``state``, current dwell included."""
        total = self.seconds.get(state, 0.0)
        if state == self.state:
            total += self._clock() - self.since
        return total

    def summary(self) -> dict[str, object]:
        return {
            "state": self.state,
            "transitions": self.transitions,
            "in_state_s": round(self._clock() - self.since, 6),
            "seconds": {name: round(self.seconds_in(name), 6)
                        for name in self.seconds},
        }

    @staticmethod
    def summary_samples(summary: "dict[str, object]", name: str,
                        help_text: str, labels: "dict[str, object]",
                        ) -> "list[object]":
        """Adapt a :meth:`summary` dict into registry samples.

        This is how dwell clocks become registry citizens without growing a
        registry dependency themselves: the exposition layer feeds any
        already-snapshotted summary (local or from a remote stats reply)
        through here and gets one cumulative seconds-counter per state.
        """
        from ..obs.metrics import counter_sample

        seconds = summary.get("seconds")
        if not isinstance(seconds, dict):
            return []
        return [
            counter_sample(name, help_text, float(secs),
                           {**labels, "state": str(state)})
            for state, secs in sorted(seconds.items())
        ]


class LatencyHistogram:
    """Log-bucketed histogram of non-negative durations (seconds)."""

    def __init__(self, *, min_s: float = 1e-6, max_s: float = 60.0,
                 growth: float = 1.25):
        if not (0 < min_s < max_s):
            raise ValueError("need 0 < min_s < max_s")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        num = int(math.ceil(math.log(max_s / min_s) / math.log(growth)))
        self.min_s, self.max_s, self.growth = min_s, max_s, growth
        # Upper edges of the finite buckets; one extra overflow bucket on top.
        self.edges = min_s * growth ** np.arange(1, num + 1)
        self.counts = np.zeros(num + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        s = max(float(seconds), 0.0)
        # First bucket whose upper edge covers s; past the last edge this
        # returns len(edges), the overflow bucket.
        self.counts[int(np.searchsorted(self.edges, s, side="left"))] += 1
        self.count += 1
        self.total += s
        self.min = min(self.min, s)
        self.max = max(self.max, s)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100), resolved to a bucket upper edge."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * q / 100.0) or 1
        bucket = int(np.searchsorted(np.cumsum(self.counts), target, side="left"))
        upper = self.edges[bucket] if bucket < len(self.edges) else self.max
        # Never report beyond (or below) what was actually observed.
        return float(min(max(upper, self.min), self.max))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------ #
    # Aggregation + wire round-trip (fleet-wide percentiles)
    # ------------------------------------------------------------------ #
    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other``'s observations into this histogram (in place).

        Bucket layouts must match — merging is element-wise addition of
        counts, which is exactly why the router can aggregate per-shard
        histograms into fleet-wide p50/p95/p99 without shipping samples.
        """
        if (len(other.edges) != len(self.edges)
                or not np.allclose(other.edges, self.edges)):
            raise ValueError(
                "cannot merge histograms with different bucket layouts "
                f"({other.min_s}/{other.max_s}/{other.growth} vs "
                f"{self.min_s}/{self.max_s}/{self.growth})")
        self.counts += other.counts
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def to_dict(self) -> dict[str, object]:
        """A JSON-safe snapshot that :meth:`from_dict` rebuilds exactly.

        Zero buckets are run-length-elided by storing ``(index, count)``
        pairs — the common sparse case (a few active buckets out of ~84)
        stays small on the stats wire.
        """
        return {
            "format": _HIST_FORMAT,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "growth": self.growth,
            "counts": [[int(i), int(c)] for i, c in enumerate(self.counts) if c],
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, payload: "dict[str, object]") -> "LatencyHistogram":
        if payload.get("format") != _HIST_FORMAT:
            raise ValueError(f"unknown histogram payload {payload.get('format')!r}")
        hist = cls(min_s=float(payload["min_s"]), max_s=float(payload["max_s"]),
                   growth=float(payload["growth"]))
        for i, c in payload.get("counts", []):     # type: ignore[union-attr]
            hist.counts[int(i)] = int(c)
        hist.count = int(payload.get("count", 0))
        hist.total = float(payload.get("total", 0.0))
        raw_min = payload.get("min")
        hist.min = math.inf if raw_min is None else float(raw_min)
        hist.max = float(payload.get("max", 0.0))
        return hist

    def metric_sample(self, name: str, help_text: str = "",
                      labels: "dict[str, object] | None" = None):
        """This histogram as a registry :class:`~repro.obs.metrics.Sample`.

        The registry-citizen hook: the bucket layout is preserved (finite
        upper edges, cumulative counts), so a Prometheus scrape sees the
        very same resolution the ``stats`` verb summarises.
        """
        from ..obs.metrics import histogram_sample

        cum = np.cumsum(self.counts[:-1])
        return histogram_sample(
            name, help_text,
            buckets=[(float(e), int(c)) for e, c in zip(self.edges, cum)],
            sum_value=self.total, count=self.count,
            labels=labels or {})

    def summary(self) -> dict[str, float | int]:
        """The serving-dashboard view, in milliseconds."""
        ms = 1e3
        return {
            "count": self.count,
            "mean_ms": round(self.mean * ms, 3),
            "p50_ms": round(self.percentile(50) * ms, 3),
            "p95_ms": round(self.percentile(95) * ms, 3),
            "p99_ms": round(self.percentile(99) * ms, 3),
            "max_ms": round((self.max if self.count else 0.0) * ms, 3),
        }
