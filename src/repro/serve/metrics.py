"""Bounded-memory latency accounting for resident serving processes.

A server that is meant to stay up under "millions of users" cannot keep a
raw sample per request the way a benchmark harness can; it needs a
fixed-size summary that still answers the questions the load harness asks
(p50/p95/p99, mean, max).  :class:`LatencyHistogram` is the standard
log-bucketed answer: geometric bucket edges from ``min_s`` to ``max_s``
(default 1 µs → 60 s at 1.25× growth — ~84 buckets, <1 kB), O(1) observe,
percentiles read off the cumulative counts.

Quantiles are resolved to a bucket's upper edge, i.e. conservatively
rounded *up* by at most the growth factor (25%); the exact observed
``max`` clamps the top so a histogram never reports a percentile beyond
what it actually saw.  The load generator, which holds every sample
anyway, reports exact percentiles — the histogram is the server-side view.
"""

from __future__ import annotations

import math
from time import monotonic
from typing import Callable

import numpy as np

__all__ = ["LatencyHistogram", "StateClock"]


class StateClock:
    """Track which state a component is in, for how long, and how often.

    The router's shard-health machinery needs more than a current-state
    enum: recovery time (how long was a shard dead before readmission?) and
    availability (what share of wall-clock was it healthy?) are the numbers
    a failure post-mortem actually asks for.  ``StateClock`` accumulates
    seconds-per-state across transitions with O(states) memory; the clock
    is injectable so state machines can be unit-tested deterministically.
    """

    def __init__(self, initial: str, *, clock: Callable[[], float] = monotonic):
        self._clock = clock
        self.state = initial
        self.since = clock()
        self.transitions = 0
        self.seconds: dict[str, float] = {initial: 0.0}

    def transition(self, state: str) -> float:
        """Enter ``state``; returns the seconds spent in the previous one."""
        now = self._clock()
        dwell = now - self.since
        self.seconds[self.state] = self.seconds.get(self.state, 0.0) + dwell
        self.state = state
        self.since = now
        self.transitions += 1
        return dwell

    def seconds_in(self, state: str) -> float:
        """Cumulative seconds spent in ``state``, current dwell included."""
        total = self.seconds.get(state, 0.0)
        if state == self.state:
            total += self._clock() - self.since
        return total

    def summary(self) -> dict[str, object]:
        return {
            "state": self.state,
            "transitions": self.transitions,
            "in_state_s": round(self._clock() - self.since, 6),
            "seconds": {name: round(self.seconds_in(name), 6)
                        for name in self.seconds},
        }


class LatencyHistogram:
    """Log-bucketed histogram of non-negative durations (seconds)."""

    def __init__(self, *, min_s: float = 1e-6, max_s: float = 60.0,
                 growth: float = 1.25):
        if not (0 < min_s < max_s):
            raise ValueError("need 0 < min_s < max_s")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        num = int(math.ceil(math.log(max_s / min_s) / math.log(growth)))
        # Upper edges of the finite buckets; one extra overflow bucket on top.
        self.edges = min_s * growth ** np.arange(1, num + 1)
        self.counts = np.zeros(num + 1, dtype=np.int64)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        s = max(float(seconds), 0.0)
        # First bucket whose upper edge covers s; past the last edge this
        # returns len(edges), the overflow bucket.
        self.counts[int(np.searchsorted(self.edges, s, side="left"))] += 1
        self.count += 1
        self.total += s
        self.min = min(self.min, s)
        self.max = max(self.max, s)

    def percentile(self, q: float) -> float:
        """The q-th percentile (0..100), resolved to a bucket upper edge."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * q / 100.0) or 1
        bucket = int(np.searchsorted(np.cumsum(self.counts), target, side="left"))
        upper = self.edges[bucket] if bucket < len(self.edges) else self.max
        # Never report beyond (or below) what was actually observed.
        return float(min(max(upper, self.min), self.max))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float | int]:
        """The serving-dashboard view, in milliseconds."""
        ms = 1e3
        return {
            "count": self.count,
            "mean_ms": round(self.mean * ms, 3),
            "p50_ms": round(self.percentile(50) * ms, 3),
            "p95_ms": round(self.percentile(95) * ms, 3),
            "p99_ms": round(self.percentile(99) * ms, 3),
            "max_ms": round((self.max if self.count else 0.0) * ms, 3),
        }
