"""Minimal blocking client for the NDJSON query server.

The synchronous counterpart of :class:`~repro.serve.server.QueryServer`
for scripts, tests, and the CLI: one socket, one request in flight,
line-framed JSON both ways.  The load generator keeps many requests in
flight and does its own asyncio I/O — this client is deliberately simple.
"""

from __future__ import annotations

import socket
from time import monotonic
from typing import Any

from ..obs import trace
from .protocol import MAX_FRAME_BYTES, decode_frame, encode_frame

__all__ = ["ServeClient", "parse_address"]


def parse_address(address: str) -> "tuple[str, Any]":
    """``host:port`` -> ("tcp", (host, port)); ``unix:<path>`` -> ("unix", path).

    IPv6 hosts use the standard bracket form ``[::1]:8080`` (the brackets
    are stripped before connecting — ``socket.create_connection`` wants the
    bare address).  A bracketless multi-colon string like ``::1`` is
    rejected rather than mis-split into host ``:`` + port ``1``.
    """
    if address.startswith("unix:"):
        return "unix", address[len("unix:"):]
    if address.startswith("["):
        # Bracketed IPv6: [host]:port
        host, sep, rest = address[1:].partition("]")
        if not sep or not rest.startswith(":") or not rest[1:].isdigit():
            raise ValueError(
                f"bad server address {address!r}; expected [ipv6-host]:port")
        return "tcp", (host, int(rest[1:]))
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad server address {address!r}; expected host:port, "
            f"[ipv6-host]:port, or unix:<path>")
    if ":" in host:
        raise ValueError(
            f"bad server address {address!r}; IPv6 hosts need brackets "
            f"and an explicit port, e.g. [::1]:8080")
    return "tcp", (host or "127.0.0.1", int(port))


class ServeClient:
    """Blocking request/reply client over one server connection.

    ``timeout_s`` is a per-request **wall-clock deadline**, not merely a
    per-socket-operation timeout: every send and read inside one
    :meth:`request` shares the deadline, so a server that accepts the
    connection and then blackholes (reads nothing, replies nothing) fails
    the request with :class:`TimeoutError` within ``timeout_s`` instead of
    resetting the clock on every partial write.
    """

    def __init__(self, address: str, *, timeout_s: float = 30.0):
        if timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        self.address = address
        self.timeout_s = timeout_s
        kind, target = parse_address(address)
        if kind == "unix":
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(target)
        else:
            self._sock = socket.create_connection(target, timeout=timeout_s)
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------------ #
    def _arm(self, deadline: float) -> None:
        """Bound the next socket operation by this request's deadline."""
        remaining = deadline - monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"request to {self.address} exceeded the {self.timeout_s}s "
                f"deadline")
        self._sock.settimeout(remaining)

    def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Send one frame and block for its reply line (deadline-bounded)."""
        deadline = monotonic() + self.timeout_s
        try:
            self._arm(deadline)
            self._sock.sendall(encode_frame(frame))
            self._arm(deadline)
            line = self._file.readline(MAX_FRAME_BYTES + 1)
        except socket.timeout as exc:
            # socket.timeout is TimeoutError since 3.10, but normalise the
            # message so callers see the deadline, not a bare "timed out".
            raise TimeoutError(
                f"request to {self.address} exceeded the {self.timeout_s}s "
                f"deadline") from exc
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    def query(self, *, vertices: "list[int] | int | None" = None,
              vectors: "list[list[float]] | None" = None, k: int = 10,
              tool: "str | None" = None, graph: "str | None" = None,
              metric: "str | None" = None, backend: "str | None" = None,
              exclude_self: "bool | None" = None,
              vertex_range: "tuple[int, int] | None" = None,
              request_id: Any = None,
              trace_id: "str | None" = None) -> dict[str, Any]:
        frame: dict[str, Any] = {"verb": "query", "k": k, "created": monotonic()}
        if vertex_range is not None:
            frame["range"] = [int(vertex_range[0]), int(vertex_range[1])]
        for key, value in (("id", request_id), ("vertices", vertices),
                           ("vectors", vectors), ("tool", tool),
                           ("graph", graph), ("metric", metric),
                           ("backend", backend), ("exclude_self", exclude_self)):
            if value is not None:
                frame[key] = value
        if trace_id is None and trace.enabled:
            # Mint the request-scoped trace id here — the client is where a
            # user query is born, so this is the one id every downstream
            # hop (router, shards) shares.
            trace_id = trace.new_trace_id()
        if trace_id is not None:
            span_id = trace.new_span_id() if trace.enabled else None
            frame["trace"] = ({"id": trace_id, "span": span_id}
                              if span_id else {"id": trace_id})
            with trace.span("client.query", trace=trace_id,
                            span=span_id or "", address=self.address):
                return self.request(frame)
        return self.request(frame)

    def stats(self) -> dict[str, Any]:
        reply = self.request({"verb": "stats"})
        return reply["stats"]

    def metrics(self) -> str:
        """The server's stats snapshot as Prometheus text (``metrics`` verb).

        Raises :class:`ValueError` on servers predating the verb — callers
        (the ``stats --metrics`` CLI) can fall back to rendering the
        ``stats`` snapshot locally.
        """
        reply = self.request({"verb": "metrics"})
        if not reply.get("ok"):
            raise ValueError(reply.get("error", "metrics verb failed"))
        return reply["text"]

    def ping(self) -> bool:
        return bool(self.request({"verb": "ping"}).get("ok"))

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
