"""Resident serving subsystem: the long-lived process around the library.

``repro.serve`` turns :class:`~repro.api.EmbeddingService` into a network
service: a resident asyncio :class:`QueryServer` speaks newline-delimited
JSON over TCP or a Unix socket, admission-controls every query (bounded
queue + in-flight cap, explicit ``overloaded`` replies), timestamps each
request (queue-wait vs. service-time breakdown in every reply), and drains
the admission queue through :meth:`EmbeddingService.query_batch` so
concurrent clients stack into shared microbatches.  ``stats`` frames read
the admission counters, bounded latency histograms, and the service
snapshot in one verb; :meth:`QueryServer.stop` drains in-flight work before
exiting.

:class:`ServerThread` runs the server on a daemon event-loop thread for
synchronous callers; :class:`ServeClient` is the matching blocking client.
The traffic-scale measurement side lives in :mod:`repro.loadgen`.
"""

from .client import ServeClient, parse_address
from .metrics import LatencyHistogram
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    error_reply,
    parse_query_request,
)
from .server import QueryServer, ServerThread

__all__ = [
    "QueryServer", "ServerThread", "ServeClient", "parse_address",
    "LatencyHistogram", "FrameError", "ERROR_CODES", "MAX_FRAME_BYTES",
    "encode_frame", "decode_frame", "error_reply", "parse_query_request",
]
