"""Resident serving subsystem: the long-lived process around the library.

``repro.serve`` turns :class:`~repro.api.EmbeddingService` into a network
service: a resident asyncio :class:`QueryServer` speaks newline-delimited
JSON over TCP or a Unix socket, admission-controls every query (bounded
queue + in-flight cap, explicit ``overloaded`` replies), timestamps each
request (queue-wait vs. service-time breakdown in every reply), and drains
the admission queue through :meth:`EmbeddingService.query_batch` so
concurrent clients stack into shared microbatches.  ``stats`` frames read
the admission counters, bounded latency histograms, and the service
snapshot in one verb — assembled off the event loop under a deadline, so a
stats poll answers (possibly from a stale snapshot) even while a
minutes-long embed holds the serving lock; ``metrics`` frames render the
same snapshot as Prometheus text (see :mod:`repro.obs`), which
:class:`HttpFront` also serves on ``GET /metrics``.  :meth:`QueryServer.stop`
drains in-flight work before exiting.

:class:`ServerThread` runs the server on a daemon event-loop thread for
synchronous callers; :class:`ServeClient` is the matching blocking client.

Scale-out lives here too: :class:`HttpFront` (:mod:`repro.serve.http`) is a
stdlib-only HTTP/1.1 adapter mapping ``POST /query`` / ``GET /stats`` /
``GET /metrics`` / ``GET /ping`` onto the same frame schema and admission
gate, and
:class:`ShardRouter` (:mod:`repro.serve.router`) partitions each graph's
vertex ranges across replica sets of shard servers and merges their top-k
bit-exactly (it *is* a ``QueryServer`` whose service fans out).  Each
replica carries a ``healthy → suspect → dead`` :class:`HealthState`
machine with background re-probing, so crashed shards readmit on recovery
and hung shards fail their batches within a deadline.  The traffic-scale
measurement side lives in :mod:`repro.loadgen`.
"""

from .client import ServeClient, parse_address
from .http import HttpFront
from .metrics import LatencyHistogram, StateClock
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    FrameError,
    decode_frame,
    encode_frame,
    error_reply,
    parse_query_request,
)
from .router import (
    HEALTH_DEAD,
    HEALTH_HEALTHY,
    HEALTH_SUSPECT,
    HealthState,
    ShardedBackendService,
    ShardError,
    ShardRouter,
    partition_ranges,
)
from .server import QueryServer, ServerThread

__all__ = [
    "QueryServer", "ServerThread", "ServeClient", "parse_address",
    "LatencyHistogram", "StateClock", "FrameError", "ERROR_CODES",
    "MAX_FRAME_BYTES", "encode_frame", "decode_frame", "error_reply",
    "parse_query_request", "HttpFront", "ShardRouter",
    "ShardedBackendService", "ShardError", "HealthState", "partition_ranges",
    "HEALTH_HEALTHY", "HEALTH_SUSPECT", "HEALTH_DEAD",
]
