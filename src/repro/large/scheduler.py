"""LargeGraphGPU — the out-of-memory training engine (Algorithm 5, Section 3.3).

When a level's embedding matrix does not fit on the (simulated) device, the
vertex set is partitioned into ``K`` parts and training proceeds in
*rotations*: during one rotation every part pair ``(V^a, V^b)`` is processed
once, with ``B`` positive samples per vertex (drawn on the host by the
:class:`~repro.large.sample_pool.SamplePoolManager`) and ``B * ns`` negative
samples per vertex drawn from the partner part on the device.  One rotation
is therefore (almost) equivalent to ``B * K`` epochs, so the engine runs
``ceil(e_i / (B * K))`` rotations to honour the level's epoch budget.

The number of parts ``K`` is derived from the device-memory budget so that
``P_GPU`` sub-matrices plus the sample-pool buffers fit; sub-matrix residency
is managed by :class:`~repro.large.gpu_state.GPUState` (allocation failures
on the simulated device are real errors, not warnings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.partition import compute_num_parts, contiguous_partition
from ..gpu.backends import get_backend
from ..gpu.device import SimulatedDevice
from ..gpu.streams import StreamTimeline
from ..gpu.warp import WarpConfig
from .gpu_state import GPUState
from .rotation import inside_out_order
from .sample_pool import SamplePoolManager

__all__ = ["LargeGraphConfig", "LargeGraphStats", "LargeGraphTrainer", "train_large_graph"]


@dataclass(frozen=True)
class LargeGraphConfig:
    """Section 3.3 knobs with the paper's defaults."""

    positive_batch_per_vertex: int = 5   # B
    resident_submatrices: int = 3        # P_GPU
    resident_sample_pools: int = 4       # S_GPU
    negative_samples: int = 3            # ns
    learning_rate: float = 0.035
    lr_decay_floor: float = 1e-4
    small_dim_mode: bool = True
    kernel_backend: str = "vectorized"   # pair-kernel layer (see repro.gpu.backends)
    sampler_backend: str = "vectorized"  # host sampler layer (see repro.graph.sampler_backends)
    seed: int = 0
    min_parts: int | None = None         # force K >= min_parts (tests / figure 3)


@dataclass
class LargeGraphStats:
    """Execution record of one large-graph training call."""

    num_parts: int = 0
    rotations: int = 0
    kernels: int = 0
    positive_samples: int = 0
    submatrix_switches: int = 0
    seconds: float = 0.0
    timeline: StreamTimeline = field(default_factory=StreamTimeline)


class LargeGraphTrainer:
    """Runs Algorithm 5 for one level against a simulated device."""

    def __init__(self, device: SimulatedDevice, config: LargeGraphConfig | None = None):
        self.device = device
        self.config = config or LargeGraphConfig()

    def train(self, graph: CSRGraph, embedding: np.ndarray, epochs: int, *,
              base_lr: float | None = None) -> LargeGraphStats:
        """Train ``embedding`` in place for (approximately) ``epochs`` epochs."""
        cfg = self.config
        n, dim = embedding.shape
        if n != graph.num_vertices:
            raise ValueError("embedding and graph disagree on |V|")
        rng = np.random.default_rng(cfg.seed)
        lr0 = cfg.learning_rate if base_lr is None else base_lr

        # --- Line 1: GetEmbeddingPartInfo -------------------------------- #
        k = compute_num_parts(
            n, dim, embedding.dtype.itemsize, self.device.spec.memory_bytes,
            resident_parts=cfg.resident_submatrices,
        )
        if cfg.min_parts is not None:
            k = max(k, cfg.min_parts)
        partition = contiguous_partition(n, k)
        k = partition.num_parts

        B = cfg.positive_batch_per_vertex
        rotations = max(1, int(np.ceil(epochs / (B * k))))

        pools = SamplePoolManager(
            graph=graph, partition=partition,
            batch_per_vertex=B, max_resident_pools=cfg.resident_sample_pools,
            seed=cfg.seed, sampler_backend=cfg.sampler_backend,
        )
        state = GPUState(embedding=embedding, parts=partition.parts,
                         device=self.device, num_bins=cfg.resident_submatrices)
        warp_config = WarpConfig(dim=dim, small_dim_mode=cfg.small_dim_mode)
        stats = LargeGraphStats(num_parts=k, rotations=rotations)
        backend = get_backend(cfg.kernel_backend)
        # One partition-wide global→local lookup array, built once and cached
        # on the partition, replaces the per-kernel-call dict index maps.
        g2l = partition.global_to_local()

        order = inside_out_order(k)
        t0 = perf_counter()
        total_kernels = rotations * len(order)
        kernel_index = 0
        for rotation in range(rotations):
            # Learning rate decays across rotations the way it decays across
            # epochs in the in-memory trainer.
            lr = lr0 * max(1.0 - rotation / rotations, cfg.lr_decay_floor)
            for pair_pos, (a, b) in enumerate(order):
                upcoming = order[pair_pos + 1:]
                # Prefetch pools for the next few pairs (PoolManager role).
                pools.prefetch(upcoming[: cfg.resident_sample_pools])
                state.ensure_pair(a, b, upcoming=upcoming)
                pool = pools.acquire(a, b)

                sub_a = state.submatrix(a)
                sub_b = state.submatrix(b) if b != a else sub_a
                # Split the pool by direction: sources in part a vs part b.
                in_a = partition.part_of[pool.src] == a
                t_kernel = perf_counter()
                if np.any(in_a):
                    backend.train_pair(
                        partition.parts[a], partition.parts[b], sub_a, sub_b,
                        pool.src[in_a], pool.dst[in_a], cfg.negative_samples, lr, rng,
                        device=self.device, warp_config=warp_config,
                        index_a=g2l, index_b=g2l,
                    )
                if a != b and np.any(~in_a):
                    backend.train_pair(
                        partition.parts[b], partition.parts[a], sub_b, sub_a,
                        pool.src[~in_a], pool.dst[~in_a], cfg.negative_samples, lr, rng,
                        device=self.device, warp_config=warp_config,
                        index_a=g2l, index_b=g2l,
                    )
                kernel_seconds = perf_counter() - t_kernel
                stats.timeline.record_kernel(kernel_seconds, label=f"pair({a},{b})",
                                             wait_for_copies=(pair_pos == 0))
                stats.kernels += 1
                stats.positive_samples += pool.num_samples
                kernel_index += 1
        _ = total_kernels, kernel_index
        state.flush()
        stats.submatrix_switches = state.switches
        stats.seconds = perf_counter() - t0
        return stats


def train_large_graph(graph: CSRGraph, embedding: np.ndarray, epochs: int,
                      device: SimulatedDevice, *,
                      config: LargeGraphConfig | None = None,
                      base_lr: float | None = None) -> LargeGraphStats:
    """Functional wrapper over :class:`LargeGraphTrainer`."""
    return LargeGraphTrainer(device, config).train(graph, embedding, epochs, base_lr=base_lr)
