"""LargeGraphGPU — the out-of-memory training engine (Algorithm 5, Section 3.3).

When a level's embedding matrix does not fit on the (simulated) device, the
vertex set is partitioned into ``K`` parts and training proceeds in
*rotations*: during one rotation every part pair ``(V^a, V^b)`` is processed
once, with ``B`` positive samples per vertex (drawn on the host by the
:class:`~repro.large.sample_pool.SamplePoolManager`) and ``B * ns`` negative
samples per vertex drawn from the partner part on the device.  One rotation
is therefore (almost) equivalent to ``B * K`` epochs, so the engine runs
``ceil(e_i / (B * K))`` rotations to honour the level's epoch budget.

The number of parts ``K`` is derived from the device-memory budget so that
``P_GPU`` sub-matrices plus the sample-pool buffers fit; sub-matrix residency
is managed by :class:`~repro.large.gpu_state.GPUState` (allocation failures
on the simulated device are real errors, not warnings).

Pool production runs through a pluggable execution mode (see
:mod:`repro.large.pipeline`): ``"pipelined"`` (default) produces and
prepares pools on a background thread behind a bounded ``S_GPU`` queue —
the paper's SampleManager/PoolManager threads, for real — while
``"sequential"`` is the single-threaded oracle.  Both are bit-identical
because every random draw is keyed by (rotation, pair), never by execution
order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

import numpy as np

from ..faults import FAULTS
from ..graph.csr import CSRGraph
from ..obs import trace
from ..graph.partition import compute_num_parts, contiguous_partition
from ..gpu.backends import get_backend
from ..gpu.device import DeviceMemoryError, SimulatedDevice
from ..gpu.streams import StreamTimeline
from ..gpu.warp import WarpConfig
from .gpu_state import GPUState
from .pipeline import (
    DEFAULT_EXECUTION_MODE,
    PipelineStats,
    PoolPreparer,
    build_schedule,
    create_executor,
    normalize_execution_mode,
)
from .rotation import inside_out_order
from .sample_pool import SamplePoolManager

__all__ = ["LargeGraphConfig", "LargeGraphStats", "LargeGraphTrainer", "train_large_graph"]


@dataclass(frozen=True)
class LargeGraphConfig:
    """Section 3.3 knobs with the paper's defaults."""

    positive_batch_per_vertex: int = 5   # B
    resident_submatrices: int = 3        # P_GPU
    resident_sample_pools: int = 4       # S_GPU
    negative_samples: int = 3            # ns
    learning_rate: float = 0.035
    lr_decay_floor: float = 1e-4
    small_dim_mode: bool = True
    kernel_backend: str = "vectorized"   # pair-kernel layer (see repro.gpu.backends)
    sampler_backend: str = "vectorized"  # host sampler layer (see repro.graph.sampler_backends)
    execution_mode: str = DEFAULT_EXECUTION_MODE  # pool production (see repro.large.pipeline)
    seed: int = 0
    min_parts: int | None = None         # force K >= min_parts (tests / figure 3)
    # Graceful degradation under DeviceMemoryError: halve the resident
    # footprint (P_GPU bins, S_GPU queue slots) and retry with bounded
    # exponential backoff instead of dying.  The *partition* (K) is always
    # computed from the configured P_GPU, so a degraded run walks the same
    # schedule and draws the same streams — degradation is bit-neutral.
    max_oom_retries: int = 8
    oom_backoff_base_s: float = 0.05
    oom_backoff_max_s: float = 2.0


@dataclass
class LargeGraphStats:
    """Execution record of one large-graph training call."""

    num_parts: int = 0
    rotations: int = 0
    kernels: int = 0
    positive_samples: int = 0
    submatrix_switches: int = 0
    seconds: float = 0.0
    execution_mode: str = DEFAULT_EXECUTION_MODE
    pool_stall_seconds: float = 0.0   # kernel time lost waiting on pools
    pool_produce_seconds: float = 0.0  # build + prepare time (producer side)
    max_ready_pools: int = 0           # peak ready-queue depth observed
    timeline: StreamTimeline = field(default_factory=StreamTimeline)
    pipeline: PipelineStats | None = None  # per-pool produce/consume events
    start_rotation: int = 0            # first rotation executed (resume cursor)
    oom_retries: int = 0               # attempts lost to DeviceMemoryError
    # One record per degradation step: the error, the halved footprint the
    # retry ran with, and the backoff it waited (see LargeGraphConfig).
    degradations: list[dict] = field(default_factory=list)


class LargeGraphTrainer:
    """Runs Algorithm 5 for one level against a simulated device."""

    def __init__(self, device: SimulatedDevice, config: LargeGraphConfig | None = None):
        self.device = device
        self.config = config or LargeGraphConfig()

    def train(self, graph: CSRGraph, embedding: np.ndarray, epochs: int, *,
              base_lr: float | None = None, level: int = 0,
              start_rotation: int = 0,
              on_rotation: Callable[[int], None] | None = None) -> LargeGraphStats:
        """Train ``embedding`` in place for (approximately) ``epochs`` epochs.

        ``start_rotation`` skips rotations already completed by a checkpointed
        run: the schedule entries keep their true rotation numbers, so every
        content-keyed draw and the LR decay match the uninterrupted run
        bit-for-bit.  ``on_rotation(completed)`` fires after each rotation
        with the host matrix synced (see :meth:`GPUState.sync_to_host`) — the
        checkpoint hook.  ``level`` only labels fault-injection crossings.
        """
        cfg = self.config
        n, dim = embedding.shape
        if n != graph.num_vertices:
            raise ValueError("embedding and graph disagree on |V|")
        lr0 = cfg.learning_rate if base_lr is None else base_lr

        # --- Line 1: GetEmbeddingPartInfo -------------------------------- #
        # K is ALWAYS computed from the configured P_GPU, never a degraded
        # one: changing K would change the partition, the schedule, and every
        # keyed draw — breaking bit-exact resume.  Degradation only shrinks
        # the resident footprint below.
        k = compute_num_parts(
            n, dim, embedding.dtype.itemsize, self.device.spec.memory_bytes,
            resident_parts=cfg.resident_submatrices,
        )
        if cfg.min_parts is not None:
            k = max(k, cfg.min_parts)
        partition = contiguous_partition(n, k)
        k = partition.num_parts

        B = cfg.positive_batch_per_vertex
        rotations = max(1, int(np.ceil(epochs / (B * k))))
        if not 0 <= start_rotation <= rotations:
            raise ValueError(
                f"start_rotation={start_rotation} outside [0, {rotations}]")

        order = inside_out_order(k)
        schedule = [e for e in build_schedule(rotations, order)
                    if e.rotation >= start_rotation]

        # Snapshot the matrix at entry: a failed (OOM) attempt may have
        # flushed partial updates nowhere, but the host rows of evicted parts
        # can already differ — restore before every retry.
        entry_state = embedding.copy()
        p_gpu = cfg.resident_submatrices
        s_gpu = cfg.resident_sample_pools
        degradations: list[dict] = []
        attempt = 0
        while True:
            stats = LargeGraphStats(
                num_parts=k, rotations=rotations, start_rotation=start_rotation,
                execution_mode=normalize_execution_mode(cfg.execution_mode))
            t0 = perf_counter()
            try:
                self._run(graph, embedding, partition, schedule, order,
                          rotations, lr0, p_gpu, s_gpu, stats,
                          level=level, on_rotation=on_rotation)
            except DeviceMemoryError as exc:
                new_p = max(2, p_gpu // 2)
                new_s = max(1, s_gpu // 2)
                if (new_p, new_s) == (p_gpu, s_gpu) or attempt >= cfg.max_oom_retries:
                    raise
                delay = min(cfg.oom_backoff_base_s * (2 ** attempt),
                            cfg.oom_backoff_max_s)
                degradations.append({
                    "attempt": attempt,
                    "error": str(exc),
                    "resident_submatrices": new_p,
                    "resident_sample_pools": new_s,
                    "backoff_s": delay,
                })
                p_gpu, s_gpu = new_p, new_s
                embedding[...] = entry_state
                attempt += 1
                time.sleep(delay)
                continue
            stats.oom_retries = attempt
            stats.degradations = degradations
            stats.seconds = perf_counter() - t0
            return stats

    def _run(self, graph: CSRGraph, embedding: np.ndarray, partition,
             schedule, order, rotations: int, lr0: float,
             p_gpu: int, s_gpu: int, stats: LargeGraphStats, *,
             level: int, on_rotation: Callable[[int], None] | None) -> None:
        """One attempt over ``schedule`` with the given resident footprint."""
        cfg = self.config
        dim = embedding.shape[1]
        pools = SamplePoolManager(
            graph=graph, partition=partition,
            batch_per_vertex=cfg.positive_batch_per_vertex,
            max_resident_pools=s_gpu,
            seed=cfg.seed, sampler_backend=cfg.sampler_backend,
        )
        state = GPUState(embedding=embedding, parts=partition.parts,
                         device=self.device, num_bins=p_gpu)
        warp_config = WarpConfig(dim=dim, small_dim_mode=cfg.small_dim_mode)
        backend = get_backend(cfg.kernel_backend)
        # One partition-wide global→local lookup array, built once and cached
        # on the partition, replaces the per-kernel-call dict index maps.
        g2l = partition.global_to_local()
        preparer = PoolPreparer(partition, backend, g2l,
                                cfg.negative_samples, cfg.seed)
        pcie_bytes_per_second = self.device.spec.pcie_gbps * 1e9
        last_index = len(order) - 1
        executor = create_executor(cfg.execution_mode, pools, preparer,
                                   schedule, s_gpu)
        rotation_start = perf_counter()
        try:
            with executor:
                for entry in schedule:
                    # Learning rate decays across rotations the way it decays
                    # across epochs in the in-memory trainer.
                    lr = lr0 * max(1.0 - entry.rotation / rotations, cfg.lr_decay_floor)
                    a, b = entry.pair
                    upcoming = order[entry.pair_index + 1:]
                    state.ensure_pair(a, b, upcoming=upcoming)
                    ready = executor.next_ready()
                    pool = ready.pool

                    # Ship the pool: an H2D copy on the simulated timeline, so
                    # serial_makespan prices transfers, not just kernels.
                    h2d_seconds = pool.nbytes() / pcie_bytes_per_second
                    stats.timeline.record_copy(h2d_seconds,
                                               label=f"pool({a},{b})", direction="h2d")
                    if trace.enabled:
                        # Simulated transfer: a zero-duration marker keeps
                        # the real-time profile honest; the priced duration
                        # rides along in args.
                        trace.add_instant("h2d", level=level,
                                          rotation=entry.rotation, pair=[a, b],
                                          simulated_s=round(h2d_seconds, 9),
                                          nbytes=pool.nbytes())

                    sub = {a: state.submatrix(a)}
                    sub[b] = state.submatrix(b) if b != a else sub[a]
                    t_kernel = perf_counter()
                    for direction in ready.directions:
                        extra = {} if direction.plan is None else {"plan": direction.plan}
                        backend.train_pair(
                            partition.parts[direction.from_part],
                            partition.parts[direction.to_part],
                            sub[direction.from_part], sub[direction.to_part],
                            direction.src, direction.dst,
                            cfg.negative_samples, lr, ready.rng,
                            device=self.device, warp_config=warp_config,
                            index_a=g2l, index_b=g2l, **extra,
                        )
                    kernel_seconds = perf_counter() - t_kernel
                    stats.timeline.record_kernel(kernel_seconds, label=f"pair({a},{b})",
                                                 wait_for_copies=(entry.pair_index == 0))
                    if trace.enabled:
                        # Absorb the measurement the timeline already took —
                        # same number, no second perf_counter pair.
                        trace.add_complete("kernel", kernel_seconds,
                                           level=level, rotation=entry.rotation,
                                           pair=[a, b],
                                           samples=pool.num_samples)
                    stats.kernels += 1
                    stats.positive_samples += pool.num_samples
                    if entry.pair_index == last_index:
                        completed = entry.rotation + 1
                        if trace.enabled:
                            trace.add_complete(
                                "rotation", perf_counter() - rotation_start,
                                level=level, rotation=completed)
                            rotation_start = perf_counter()
                        if on_rotation is not None:
                            state.sync_to_host()
                            on_rotation(completed)
                        FAULTS.crossing("rotation-boundary",
                                        level=level, rotation=completed)
            state.flush()
        except BaseException:
            # Free device memory without write-back: the caller restores the
            # host matrix from its entry snapshot before any retry.
            state.release()
            raise
        stats.submatrix_switches = state.switches
        stats.pipeline = executor.stats
        stats.pool_stall_seconds = executor.stats.stall_seconds
        stats.pool_produce_seconds = executor.stats.produce_seconds
        stats.max_ready_pools = executor.stats.max_queue_depth


def train_large_graph(graph: CSRGraph, embedding: np.ndarray, epochs: int,
                      device: SimulatedDevice, *,
                      config: LargeGraphConfig | None = None,
                      base_lr: float | None = None, level: int = 0,
                      start_rotation: int = 0,
                      on_rotation: Callable[[int], None] | None = None) -> LargeGraphStats:
    """Functional wrapper over :class:`LargeGraphTrainer`."""
    return LargeGraphTrainer(device, config).train(
        graph, embedding, epochs, base_lr=base_lr, level=level,
        start_rotation=start_rotation, on_rotation=on_rotation)
