"""Inside-out rotation order over sub-matrix pairs (Section 3.3.1).

During one *rotation* every unordered pair of parts (including each part with
itself) must be co-resident on the device exactly once.  The order matters
because it determines how many sub-matrix swaps are needed: the paper follows
the "inside-out" order of PyTorch-BigGraph, which keeps one part anchored
while the partner advances, so consecutive kernels share one resident
sub-matrix and only the other needs to be switched.

The recurrence from the paper, with ``(a_0, b_0) = (0, 0)``:

* if ``a_{j-1} > b_{j-1}``: ``(a_j, b_j) = (a_{j-1}, b_{j-1} + 1)``
* if ``a_{j-1} = b_{j-1}``: ``(a_j, b_j) = (a_{j-1} + 1, 0)``

which enumerates (0,0), (1,0), (1,1), (2,0), (2,1), (2,2), ... — all
``K(K+1)/2`` pairs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["inside_out_order", "naive_order", "count_switches"]


def inside_out_order(num_parts: int) -> list[tuple[int, int]]:
    """All part pairs (a, b) with a >= b in the paper's inside-out order."""
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    pairs: list[tuple[int, int]] = [(0, 0)]
    a, b = 0, 0
    total = num_parts * (num_parts + 1) // 2
    while len(pairs) < total:
        if a > b:
            b += 1
        else:  # a == b
            a += 1
            b = 0
        pairs.append((a, b))
    return pairs


def naive_order(num_parts: int) -> list[tuple[int, int]]:
    """Row-major pair order (the baseline the inside-out order improves on)."""
    return [(a, b) for a in range(num_parts) for b in range(a + 1)]


def count_switches(order: list[tuple[int, int]], resident_slots: int) -> int:
    """Number of sub-matrix switches an order needs with ``resident_slots`` bins.

    A simple LRU occupancy simulation: processing pair (a, b) requires both
    parts resident; each miss costs one switch.  This is the quantity the
    P_GPU = 3 setting is chosen to hide (Section 3.3.2).
    """
    if resident_slots < 2:
        raise ValueError("need at least two resident slots")
    resident: list[int] = []
    switches = 0
    for a, b in order:
        for part in (a, b):
            if part in resident:
                resident.remove(part)
                resident.append(part)       # refresh LRU position
                continue
            if len(resident) >= resident_slots:
                resident.pop(0)             # evict least recently used
            resident.append(part)
            switches += 1
    return switches


def validate_rotation_cover(order: list[tuple[int, int]], num_parts: int) -> bool:
    """True iff every unordered pair (including self pairs) appears exactly once."""
    seen = set()
    for a, b in order:
        key = (max(a, b), min(a, b))
        if key in seen:
            return False
        seen.add(key)
    expected = {(a, b) for a in range(num_parts) for b in range(a + 1)}
    return seen == expected
