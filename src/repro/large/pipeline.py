"""Pipelined pool production for the large-graph engine (Section 3.3).

The paper's engine is three concurrent agents: a SampleManager producing
sample pools, a PoolManager shipping them to the device, and the training
loop consuming them.  Earlier revisions *simulated* that concurrency —
pools were built inline, immediately before the kernel that needed them.
This module makes it real:

* :class:`PipelinedExecutor` (``execution_mode="pipelined"``, the default)
  runs pool production on a background thread: pools are built, split by
  direction, and *prepared* (global→local resolution, scatter-sort plans,
  pre-drawn negative rounds — see
  :meth:`~repro.gpu.backends.vectorized.VectorizedBackend.prepare_pair`)
  ahead of the consumer, then handed over through a bounded ready-pool
  queue of capacity ``S_GPU`` — the producer blocks (backpressure) when the
  consumer falls behind, exactly like the paper's ``S_GPU`` buffer bound.
  Production is pure NumPy index work that releases the GIL, so it overlaps
  the consumer's kernel arithmetic on a second core.
* :class:`SequentialExecutor` (``execution_mode="sequential"``) is the
  single-threaded oracle: the same prefetch-buffer/acquire dance the
  scheduler used to run inline, plus the same preparation step, on the
  consumer thread.

**Determinism.**  Both executors draw every pool from a stream keyed by
``(seed, rotation, pair)`` (:func:`~repro.large.sample_pool.pool_rng`) and
every kernel's negatives from a stream keyed the same way
(:func:`kernel_rng`), so no draw depends on *when* production happened.
Consumption order is fixed by the schedule and kernels only ever run on the
consumer thread, which makes pipelined and sequential execution
**bit-identical** — pinned by ``tests/large/test_pipeline.py``.

Every handover is timed: :class:`PoolEvent` records produce/consume
timestamps, the ready-queue depth, and how long the consumer stalled
waiting — the numbers behind ``benchmarks/test_pipeline_perf.py``.
"""

from __future__ import annotations

import queue
import threading
import warnings
from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..faults import FAULTS
from ..graph.partition import VertexPartition
from ..obs import trace
from .sample_pool import SamplePool, SamplePoolManager

__all__ = [
    "EXECUTION_MODES",
    "DEFAULT_EXECUTION_MODE",
    "KERNEL_STREAM",
    "normalize_execution_mode",
    "kernel_rng",
    "ScheduleEntry",
    "build_schedule",
    "DirectionBatch",
    "ReadyPool",
    "PoolEvent",
    "PipelineStats",
    "PoolPreparer",
    "SequentialExecutor",
    "PipelinedExecutor",
    "create_executor",
    "UnknownExecutionModeError",
]

#: Stream tag separating kernel-side negative draws from the pool streams
#: (see :data:`repro.large.sample_pool.POOL_STREAM`).
KERNEL_STREAM = 2

#: Supported execution modes, default first.
EXECUTION_MODES = ("pipelined", "sequential")
DEFAULT_EXECUTION_MODE = "pipelined"


class UnknownExecutionModeError(ValueError):
    """Raised when an execution-mode name is not one of :data:`EXECUTION_MODES`."""

    def __init__(self, mode: str):
        super().__init__(
            f"unknown execution mode {mode!r}; options: {', '.join(EXECUTION_MODES)}")
        self.mode = mode


def normalize_execution_mode(mode: str | None) -> str:
    """Canonical lower-case mode name, or raise :class:`UnknownExecutionModeError`.

    The single place that knows how mode names are normalised — config
    validation, the tool registry's typo guard, and executor construction
    all call it, so the accepted spellings cannot drift apart.
    """
    key = (mode or DEFAULT_EXECUTION_MODE).strip().lower()
    if key not in EXECUTION_MODES:
        raise UnknownExecutionModeError(mode if mode is not None else key)
    return key


def kernel_rng(seed: int, rotation: int, part_a: int, part_b: int) -> np.random.Generator:
    """The generator owning one (rotation, pair) kernel's negative draws.

    Keyed like the pool streams so the draws are independent of where they
    happen: the producer pre-drawing negatives into a
    :class:`~repro.gpu.backends.vectorized.PairPlan` consumes exactly the
    stream an inline kernel launch would have consumed.
    """
    return np.random.default_rng((seed, KERNEL_STREAM, rotation, part_a, part_b))


@dataclass(frozen=True)
class ScheduleEntry:
    """One kernel slot of the training run, in consumption order."""

    rotation: int
    pair_index: int          # position within the rotation's inside-out order
    pair: tuple[int, int]


def build_schedule(rotations: int, order: list[tuple[int, int]]) -> list[ScheduleEntry]:
    """The full (rotation × inside-out pair) consumption schedule."""
    return [ScheduleEntry(rotation=r, pair_index=i, pair=pair)
            for r in range(rotations) for i, pair in enumerate(order)]


@dataclass
class DirectionBatch:
    """One direction of a pool, ready for a single ``train_pair`` launch.

    ``plan`` is the backend's prepared :class:`~repro.gpu.backends.vectorized.PairPlan`
    when the kernel backend supports preparation, else ``None`` (the kernel
    then resolves indices and draws negatives inline from the ready pool's
    keyed generator).
    """

    from_part: int
    to_part: int
    src: np.ndarray
    dst: np.ndarray
    plan: object | None = None


@dataclass
class ReadyPool:
    """A produced, direction-split, kernel-prepared pool awaiting its slot."""

    entry: ScheduleEntry
    pool: SamplePool
    directions: list[DirectionBatch]
    rng: np.random.Generator     # keyed kernel stream (unconsumed iff no plans)
    produced_at: float = 0.0


@dataclass(frozen=True)
class PoolEvent:
    """Timing record of one pool's trip through the pipeline."""

    rotation: int
    pair: tuple[int, int]
    produced_at: float       # seconds since executor start, production finished
    consumed_at: float       # seconds since executor start, handed to the kernel
    wait_seconds: float      # consumer stall attributable to this pool
    queue_depth: int         # ready pools buffered right after this handover


@dataclass
class PipelineStats:
    """Aggregate pipeline behaviour of one training run."""

    mode: str
    capacity: int
    events: list[PoolEvent] = field(default_factory=list)
    stall_seconds: float = 0.0      # total consumer time spent waiting on pools
    produce_seconds: float = 0.0    # total build + prepare time (producer side)
    max_queue_depth: int = 0

    def record(self, event: PoolEvent) -> None:
        self.events.append(event)
        self.stall_seconds += event.wait_seconds
        self.max_queue_depth = max(self.max_queue_depth, event.queue_depth)


class PoolPreparer:
    """Turns raw sample pools into device-ready :class:`ReadyPool` objects.

    Owns everything production needs beyond the pool itself: the partition
    (direction split), the partition-wide global→local lookup, the negative
    count, and the kernel backend's optional ``prepare_pair`` hook.  Reads
    no embedding or device state, so it is safe on the producer thread.
    """

    def __init__(self, partition: VertexPartition, backend,
                 global_to_local: np.ndarray, negative_samples: int, seed: int):
        self.partition = partition
        self.backend = backend
        self.g2l = global_to_local
        self.ns = negative_samples
        self.seed = seed
        self._prepare = getattr(backend, "prepare_pair", None)

    def ready(self, entry: ScheduleEntry, pool: SamplePool) -> ReadyPool:
        a, b = entry.pair
        rng = kernel_rng(self.seed, entry.rotation, a, b)
        in_a = self.partition.part_of[pool.src] == a
        specs = [(a, b, in_a)]
        if a != b:
            specs.append((b, a, ~in_a))
        directions: list[DirectionBatch] = []
        for from_part, to_part, mask in specs:
            src, dst = pool.src[mask], pool.dst[mask]
            if src.size == 0:
                continue   # no launch for this direction -> no negative draws
            plan = None
            if self._prepare is not None:
                plan = self._prepare(
                    self.partition.parts[from_part], self.partition.parts[to_part],
                    src, dst, self.ns, rng, index_a=self.g2l, index_b=self.g2l)
            directions.append(DirectionBatch(from_part=from_part, to_part=to_part,
                                             src=src, dst=dst, plan=plan))
        return ReadyPool(entry=entry, pool=pool, directions=directions, rng=rng)


class SequentialExecutor:
    """Single-threaded oracle: produce each pool inline, right before use.

    Runs the exact prefetch-buffer/acquire dance the scheduler historically
    ran (PoolManager role, bounded by ``S_GPU``) plus the kernel-preparation
    step, all on the consumer thread.  Every second spent here is recorded
    as stall — this is precisely the time the pipelined executor hides.
    """

    mode = "sequential"

    def __init__(self, manager: SamplePoolManager, preparer: PoolPreparer,
                 schedule: list[ScheduleEntry], capacity: int):
        self.manager = manager
        self.preparer = preparer
        self.schedule = schedule
        self.stats = PipelineStats(mode=self.mode, capacity=capacity)
        self._capacity = capacity
        self._cursor = 0
        self._t0 = perf_counter()

    def __enter__(self) -> "SequentialExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        pass

    def next_ready(self) -> ReadyPool:
        entry = self.schedule[self._cursor]
        self._cursor += 1
        t0 = perf_counter()
        # Prefetch pools for the next few pairs of this rotation (PoolManager
        # role, S_GPU deep), then consume the current pair's pool.  The
        # schedule is rotation-major, so the same-rotation tail is contiguous.
        upcoming = []
        for e in self.schedule[self._cursor: self._cursor + self._capacity]:
            if e.rotation != entry.rotation:
                break
            upcoming.append(e.pair)
        FAULTS.crossing("pool-producer", rotation=entry.rotation, pair=entry.pair)
        self.manager.prefetch(upcoming, rotation=entry.rotation)
        pool = self.manager.acquire(*entry.pair, rotation=entry.rotation)
        ready = self.preparer.ready(entry, pool)
        now = perf_counter()
        elapsed = now - t0
        self.stats.produce_seconds += elapsed
        if trace.enabled:
            trace.add_complete("pool-produce", elapsed,
                               rotation=entry.rotation, pair=list(entry.pair),
                               mode=self.mode)
        ready.produced_at = now - self._t0
        self.stats.record(PoolEvent(
            rotation=entry.rotation, pair=entry.pair,
            produced_at=ready.produced_at, consumed_at=now - self._t0,
            wait_seconds=elapsed, queue_depth=self.manager.resident_pools))
        return ready


class PipelinedExecutor:
    """Producer-thread execution: pools are built ahead, behind a bounded queue.

    The producer walks the schedule, builds + prepares each pool, and blocks
    when ``capacity`` (the paper's ``S_GPU``) ready pools are already
    waiting.  The consumer pops pools in schedule order; any time it spends
    blocked in :meth:`next_ready` is recorded as stall.  Errors raised on
    the producer (bad sampler, index corruption, …) are re-raised at the
    consumer's next pop; :meth:`close` always unblocks and joins the
    producer, so a consumer-side failure cannot leave it wedged on a full
    queue.
    """

    mode = "pipelined"

    _POLL_SECONDS = 0.05

    def __init__(self, manager: SamplePoolManager, preparer: PoolPreparer,
                 schedule: list[ScheduleEntry], capacity: int):
        self.manager = manager
        self.preparer = preparer
        self.schedule = schedule
        self.stats = PipelineStats(mode=self.mode, capacity=capacity)
        self._queue: "queue.Queue[ReadyPool | _ProducerFailure]" = queue.Queue(
            maxsize=max(1, capacity))
        self._stop = threading.Event()
        self._t0 = perf_counter()
        self._thread = threading.Thread(target=self._produce,
                                        name="gosh-pool-producer", daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def _produce(self) -> None:
        try:
            for entry in self.schedule:
                if self._stop.is_set():
                    return
                t0 = perf_counter()
                # Crosses on the producer thread; an injected fault travels
                # the _ProducerFailure envelope and re-raises at the
                # consumer's next pop — exactly how a real producer-side
                # crash (bad sampler, index corruption) would surface.
                FAULTS.crossing("pool-producer", rotation=entry.rotation,
                                pair=entry.pair)
                pool = self.manager.build_pool(*entry.pair, rotation=entry.rotation)
                ready = self.preparer.ready(entry, pool)
                now = perf_counter()
                self.stats.produce_seconds += now - t0
                if trace.enabled:
                    # Runs on the producer thread — the exported trace shows
                    # production genuinely overlapping the consumer's kernels.
                    trace.add_complete("pool-produce", now - t0,
                                       rotation=entry.rotation,
                                       pair=list(entry.pair), mode=self.mode)
                ready.produced_at = now - self._t0
                if not self._put(ready):
                    return
        except BaseException as exc:  # surface on the consumer thread
            self._put(_ProducerFailure(exc))

    def _put(self, item) -> bool:
        """Blocking put with backpressure that stays interruptible."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=self._POLL_SECONDS)
                # Benign race with the consumer's maximum: both sides only
                # ever raise it, and it is a diagnostic, not a correctness
                # quantity.
                self.stats.max_queue_depth = max(self.stats.max_queue_depth,
                                                 self._queue.qsize())
                return True
            except queue.Full:
                continue
        return False

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "PipelinedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def next_ready(self) -> ReadyPool:
        t0 = perf_counter()
        while True:
            try:
                item = self._queue.get(timeout=self._POLL_SECONDS)
                break
            except queue.Empty:
                if not self._thread.is_alive():
                    # The producer may have delivered its final item between
                    # our timeout and the liveness check — take one last look
                    # before declaring it gone.
                    try:
                        item = self._queue.get_nowait()
                        break
                    except queue.Empty:
                        raise RuntimeError(
                            "pool producer exited without delivering the next "
                            "pool") from None
        wait = perf_counter() - t0
        if isinstance(item, _ProducerFailure):
            raise item.error
        now = perf_counter() - self._t0
        self.stats.record(PoolEvent(
            rotation=item.entry.rotation, pair=item.entry.pair,
            produced_at=item.produced_at, consumed_at=now,
            wait_seconds=wait, queue_depth=self._queue.qsize()))
        self.manager.note_consumed()
        return item

    def close(self) -> None:
        """Stop the producer, drain the queue, and join the thread."""
        self._stop.set()
        while True:
            try:
                self._queue.get_nowait()
            except queue.Empty:
                break
        self._thread.join(timeout=10.0)
        if self._thread.is_alive():  # pragma: no cover - requires a wedged build
            warnings.warn(
                "pool-producer thread did not stop within 10s; it is a daemon "
                "and will not block exit, but SamplePoolManager counters may "
                "still advance until its current build finishes",
                RuntimeWarning, stacklevel=2)


@dataclass
class _ProducerFailure:
    """Envelope carrying a producer-thread exception to the consumer."""

    error: BaseException


def create_executor(mode: str, manager: SamplePoolManager, preparer: PoolPreparer,
                    schedule: list[ScheduleEntry], capacity: int):
    """Build the executor for ``mode`` (``"pipelined"`` or ``"sequential"``)."""
    key = normalize_execution_mode(mode)
    if key == "pipelined":
        return PipelinedExecutor(manager, preparer, schedule, capacity)
    return SequentialExecutor(manager, preparer, schedule, capacity)
