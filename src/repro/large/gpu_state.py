"""GPUState bookkeeping for the large-graph engine.

Algorithm 5 keeps an array ``GPUState`` of size ``P_GPU``: ``GPUState[j] = k``
means device bin ``j`` currently holds sub-matrix ``M^k``; ``-1`` means the
bin is empty.  ``SwitchSubMatrices(j, k)`` copies ``M^j`` out (write-back),
copies ``M^k`` in, and updates the state.  ``NextSubMatrix`` picks which part
to prefetch given the upcoming pairs.

This module implements that bookkeeping against the simulated device: bins
are :class:`DeviceBuffer` allocations, so over-subscription raises the same
``DeviceMemoryError`` a real card would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.device import DeviceBuffer, SimulatedDevice

__all__ = ["GPUState"]


@dataclass
class GPUState:
    """Resident sub-matrix manager (the paper's ``GPUState`` array).

    Parameters
    ----------
    embedding:
        The full host-side embedding matrix; sub-matrices are row slices
        defined by ``parts`` (lists of global vertex ids).
    parts:
        Vertex-id array per part.
    device:
        The simulated device that hosts the resident copies.
    num_bins:
        The paper's ``P_GPU``.
    """

    embedding: np.ndarray
    parts: list[np.ndarray]
    device: SimulatedDevice
    num_bins: int = 3
    bins: list[int] = field(default_factory=list)          # part id per bin, -1 = empty
    buffers: list[DeviceBuffer | None] = field(default_factory=list)
    switches: int = 0

    def __post_init__(self) -> None:
        if self.num_bins < 2:
            raise ValueError("P_GPU must be at least 2 (a pair must fit)")
        self.bins = [-1] * self.num_bins
        self.buffers = [None] * self.num_bins

    # ------------------------------------------------------------------ #
    @property
    def resident_parts(self) -> list[int]:
        return [b for b in self.bins if b >= 0]

    def is_resident(self, part: int) -> bool:
        return part in self.bins

    def bin_of(self, part: int) -> int:
        return self.bins.index(part)

    def submatrix(self, part: int) -> np.ndarray:
        """The resident (device) array for a part; raises if not resident."""
        buf = self.buffers[self.bin_of(part)]
        assert buf is not None
        return buf.array

    # ------------------------------------------------------------------ #
    def load(self, part: int, *, bin_index: int | None = None) -> None:
        """``SwitchSubMatrices(old, part)``: evict the chosen bin and load ``part``."""
        if self.is_resident(part):
            return
        if bin_index is None:
            # Prefer an empty bin; otherwise evict the least-recently-loaded
            # part that is not needed right now (caller controls order).
            if -1 in self.bins:
                bin_index = self.bins.index(-1)
            else:
                bin_index = 0
        self._evict_bin(bin_index)
        sub = self.embedding[self.parts[part]]
        buf = self.device.upload(sub, name=f"submatrix[{part}]")
        self.bins[bin_index] = part
        self.buffers[bin_index] = buf
        self.switches += 1

    def _evict_bin(self, bin_index: int) -> None:
        """Write the bin's sub-matrix back to the host and free the device copy."""
        part = self.bins[bin_index]
        buf = self.buffers[bin_index]
        if part >= 0 and buf is not None:
            self.embedding[self.parts[part]] = self.device.download(buf)
            buf.free()
        self.bins[bin_index] = -1
        self.buffers[bin_index] = None

    def evict_part(self, part: int) -> None:
        if self.is_resident(part):
            self._evict_bin(self.bin_of(part))

    def ensure_pair(self, part_a: int, part_b: int,
                    upcoming: list[tuple[int, int]] | None = None) -> None:
        """Make both parts of a pair resident, evicting parts not needed soon.

        ``upcoming`` (the remaining rotation order) drives the
        ``NextSubMatrix`` choice: a resident part that appears soonest in the
        upcoming pairs is kept, the one needed furthest in the future (or
        never) is evicted first — a Belady-style policy that maximises the
        overlap P_GPU = 3 buys.
        """
        for part in dict.fromkeys((part_a, part_b)):  # preserve order, dedupe
            if self.is_resident(part):
                continue
            if -1 in self.bins:
                self.load(part, bin_index=self.bins.index(-1))
                continue
            victim_bin = self._choose_victim((part_a, part_b), upcoming or [])
            self.load(part, bin_index=victim_bin)

    def _choose_victim(self, needed_now: tuple[int, int], upcoming: list[tuple[int, int]]) -> int:
        next_use: dict[int, int] = {}
        for distance, (a, b) in enumerate(upcoming):
            for p in (a, b):
                next_use.setdefault(p, distance)
        best_bin, best_score = 0, -1
        for bin_index, part in enumerate(self.bins):
            if part in needed_now:
                continue
            score = next_use.get(part, len(upcoming) + 1)
            if score > best_score:
                best_bin, best_score = bin_index, score
        return best_bin

    def sync_to_host(self) -> None:
        """Write every resident sub-matrix back without evicting it.

        The checkpoint path: at a rotation boundary the host matrix must
        reflect all device-side updates before it is snapshotted, but the
        resident parts stay resident (the device copies remain authoritative
        and simply overwrite the same host rows again on eviction), so a
        checkpointed run stays bit-identical to an uncheckpointed one.
        """
        for part, buf in zip(self.bins, self.buffers):
            if part >= 0 and buf is not None:
                self.embedding[self.parts[part]] = self.device.download(buf)

    def release(self) -> None:
        """Free every resident buffer *without* write-back (failed attempt).

        The degradation path: after a ``DeviceMemoryError`` the trainer
        restores the host matrix from its entry snapshot and retries with a
        smaller footprint — writing half-trained sub-matrices back first
        would corrupt that restore point, so this drops them.
        """
        for bin_index in range(self.num_bins):
            buf = self.buffers[bin_index]
            if buf is not None:
                buf.free()
            self.bins[bin_index] = -1
            self.buffers[bin_index] = None

    def flush(self) -> None:
        """Write every resident sub-matrix back to the host (end of training)."""
        for bin_index in range(self.num_bins):
            self._evict_bin(bin_index)
