"""Large-graph (out-of-device-memory) training engine — Section 3.3 of the paper."""

from .gpu_state import GPUState
from .pipeline import (
    DEFAULT_EXECUTION_MODE,
    EXECUTION_MODES,
    PipelinedExecutor,
    PipelineStats,
    PoolEvent,
    PoolPreparer,
    ReadyPool,
    ScheduleEntry,
    SequentialExecutor,
    UnknownExecutionModeError,
    build_schedule,
    create_executor,
    kernel_rng,
)
from .rotation import count_switches, inside_out_order, naive_order, validate_rotation_cover
from .sample_pool import SamplePool, SamplePoolManager, pool_rng
from .scheduler import (
    LargeGraphConfig,
    LargeGraphStats,
    LargeGraphTrainer,
    train_large_graph,
)

__all__ = [
    "GPUState",
    "count_switches",
    "inside_out_order",
    "naive_order",
    "validate_rotation_cover",
    "SamplePool",
    "SamplePoolManager",
    "pool_rng",
    "kernel_rng",
    "DEFAULT_EXECUTION_MODE",
    "EXECUTION_MODES",
    "PipelinedExecutor",
    "SequentialExecutor",
    "PipelineStats",
    "PoolEvent",
    "PoolPreparer",
    "ReadyPool",
    "ScheduleEntry",
    "UnknownExecutionModeError",
    "build_schedule",
    "create_executor",
    "LargeGraphConfig",
    "LargeGraphStats",
    "LargeGraphTrainer",
    "train_large_graph",
]
