"""Large-graph (out-of-device-memory) training engine — Section 3.3 of the paper."""

from .gpu_state import GPUState
from .rotation import count_switches, inside_out_order, naive_order, validate_rotation_cover
from .sample_pool import SamplePool, SamplePoolManager
from .scheduler import (
    LargeGraphConfig,
    LargeGraphStats,
    LargeGraphTrainer,
    train_large_graph,
)

__all__ = [
    "GPUState",
    "count_switches",
    "inside_out_order",
    "naive_order",
    "validate_rotation_cover",
    "SamplePool",
    "SamplePoolManager",
    "LargeGraphConfig",
    "LargeGraphStats",
    "LargeGraphTrainer",
    "train_large_graph",
]
