"""Host-side positive sampling for the large-graph engine (SampleManager / PoolManager).

When a graph is too large to keep on the device, GOSH draws the positive
samples on the host: for the kernel that processes the part pair
``(V^j, V^k)``, a *sample pool* ``S^{j,k}`` holds, for every vertex of
``V^j``, up to ``B`` positive neighbours that fall inside ``V^k`` (and
symmetrically for ``V^k`` vs ``V^j``).  Pools are produced ahead of time by
the SampleManager thread, buffered, and shipped to the device by the
PoolManager; at most ``S_GPU`` pools are resident.

Two properties make the manager safe to drive from a real producer thread
(see :mod:`repro.large.pipeline`):

* **Order-independent randomness.**  Every pool is drawn from its own seeded
  stream keyed by ``(seed, POOL_STREAM, rotation, a, b)``, so the pool for a
  given (rotation, pair) has identical contents whether it was built eagerly
  by a background producer, prefetched, or built on an ``acquire`` miss —
  the property the pipelined/sequential golden-parity tests pin.
* **Locked shared state.**  The bounded FIFO buffer, the
  produced/consumed/sample counters, and the filtered-adjacency cache are
  all lock-protected; the sampling itself (pure NumPy) runs outside the
  lock, so concurrent builders do not serialise on the hot path.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.partition import VertexPartition
from ..graph.sampler_backends import (
    DEFAULT_SAMPLER_BACKEND,
    FilteredAdjacencyCache,
    SamplerBackend,
    get_sampler_backend,
)

__all__ = ["SamplePool", "SamplePoolManager", "POOL_STREAM", "pool_rng"]

#: Stream tag separating pool draws from the kernel-side negative streams
#: (see :data:`repro.large.pipeline.KERNEL_STREAM`).
POOL_STREAM = 1


def pool_rng(seed: int, rotation: int, part_a: int, part_b: int) -> np.random.Generator:
    """The seeded generator owning one (rotation, pair) pool's randomness.

    Keying the stream by content rather than draw order is what makes pool
    contents independent of *production* order — the producer thread, an
    inline prefetch, and an acquire-miss rebuild all draw identical pools.
    """
    return np.random.default_rng((seed, POOL_STREAM, rotation, part_a, part_b))


@dataclass
class SamplePool:
    """Positive samples for one (part_a, part_b) kernel.

    ``src``/``dst`` are global vertex ids; every ``src`` belongs to
    ``part_a`` and every ``dst`` to ``part_b`` (or vice versa — the pool
    stores both directions so the kernel can update both parts).
    """

    part_a: int
    part_b: int
    src: np.ndarray
    dst: np.ndarray

    @property
    def num_samples(self) -> int:
        return int(self.src.shape[0])

    def nbytes(self) -> int:
        return int(self.src.nbytes + self.dst.nbytes)


@dataclass
class SamplePoolManager:
    """Builds and buffers sample pools for a partitioned training run.

    Parameters
    ----------
    graph:
        The level's graph (kept on the host — never copied to the device).
    partition:
        The K-way vertex partition.
    batch_per_vertex:
        The paper's ``B`` — positive samples per vertex per pool.
    max_resident_pools:
        The paper's ``S_GPU`` — maximum number of pools buffered "on the
        device" at once.
    sampler_backend:
        The part-pair sampling engine (``"reference"`` loop oracle,
        ``"vectorized"`` batched default, ``"degree_biased"`` hub-weighted,
        or any registered backend — see :mod:`repro.graph.sampler_backends`).
        The two uniform built-ins draw identical pairs from the same seed.
    """

    graph: CSRGraph
    partition: VertexPartition
    batch_per_vertex: int = 5
    max_resident_pools: int = 4
    seed: int = 0
    sampler_backend: "str | SamplerBackend" = DEFAULT_SAMPLER_BACKEND
    pools_produced: int = 0
    pools_consumed: int = 0
    samples_produced: int = 0
    #: Buffered pools keyed by ``(rotation, max(pair), min(pair))`` — the
    #: rotation is part of the key because pool contents are keyed streams:
    #: a pool prefetched for rotation 7 must never satisfy an acquire for
    #: rotation 2.
    _buffer: "OrderedDict[tuple[int, int, int], SamplePool]" = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        #: Keys a concurrent ``prefetch`` has claimed but not yet delivered;
        #: they count against ``max_resident_pools`` so two threads filling
        #: the buffer at once cannot overshoot it.
        self._pending: set[tuple[int, int, int]] = set()
        self._sampler = get_sampler_backend(self.sampler_backend)
        # Filtered sub-CSRs (edges landing in the partner part) are built once
        # per (part, partner-part) direction and reused across rotations.
        self._filtered = FilteredAdjacencyCache(self.graph, self.partition)
        # Pre-compute part membership masks once (shared with the filtered
        # cache); pools are built lazily.
        self._masks = [self._filtered.mask(k) for k in range(self.partition.num_parts)]

    # ------------------------------------------------------------------ #
    # Production (SampleManager role)
    # ------------------------------------------------------------------ #
    def _sample_direction(self, from_part: int, to_part: int,
                          rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """For every vertex of ``from_part``, draw B neighbours inside ``to_part``."""
        # Only build (and hold) the filtered sub-CSR for backends that read
        # it — the reference oracle walks the graph itself.  Third-party
        # backends that do not declare the flag get the cache by default.
        filtered = (self._filtered.get(from_part, to_part)
                    if getattr(self._sampler, "uses_filtered_adjacency", True)
                    else None)
        return self._sampler.sample_pairs(
            self.graph, self.partition.parts[from_part], self._masks[to_part],
            self.batch_per_vertex, rng, filtered=filtered)

    def _build(self, part_a: int, part_b: int, rotation: int) -> SamplePool:
        """Draw one pool from its keyed stream (no counters, no buffering)."""
        rng = pool_rng(self.seed, rotation, part_a, part_b)
        src_ab, dst_ab = self._sample_direction(part_a, part_b, rng)
        if part_a != part_b:
            src_ba, dst_ba = self._sample_direction(part_b, part_a, rng)
            src = np.concatenate([src_ab, src_ba])
            dst = np.concatenate([dst_ab, dst_ba])
        else:
            src, dst = src_ab, dst_ab
        return SamplePool(part_a=part_a, part_b=part_b, src=src, dst=dst)

    def build_pool(self, part_a: int, part_b: int, *, rotation: int = 0) -> SamplePool:
        """Build the pool for one part pair (both sampling directions)."""
        from ..obs import trace  # lazy: keep the sampling hot path import-free

        t0 = time.perf_counter()
        pool = self._build(part_a, part_b, rotation)
        if trace.enabled:
            trace.add_complete("pool-build", time.perf_counter() - t0,
                               rotation=rotation, pair=[part_a, part_b],
                               samples=pool.num_samples)
        with self._lock:
            self.pools_produced += 1
            self.samples_produced += pool.num_samples
        return pool

    def prefetch(self, upcoming_pairs: list[tuple[int, int]], *,
                 rotation: int = 0) -> None:
        """Fill the buffer with pools for the next pairs (PoolManager role).

        Safe to call concurrently with ``acquire``/``prefetch`` from other
        threads: a key is *claimed* under the lock before its (unlocked)
        build, so the buffer plus in-flight claims never exceed
        ``max_resident_pools`` and no pair is built twice.
        """
        for pair in upcoming_pairs:
            key = (rotation, max(pair), min(pair))
            with self._lock:
                if len(self._buffer) + len(self._pending) >= self.max_resident_pools:
                    break
                if key in self._buffer or key in self._pending:
                    continue
                self._pending.add(key)
            try:
                pool = self._build(key[1], key[2], rotation)
            except BaseException:
                with self._lock:
                    self._pending.discard(key)
                raise
            with self._lock:
                self._pending.discard(key)
                self._buffer[key] = pool
                self.pools_produced += 1
                self.samples_produced += pool.num_samples

    # ------------------------------------------------------------------ #
    # Consumption (device side of Algorithm 5, line 10)
    # ------------------------------------------------------------------ #
    def acquire(self, part_a: int, part_b: int, *, rotation: int = 0) -> SamplePool:
        """Get (building if necessary) and consume the pool for a pair.

        Only a pool buffered for the *same rotation* is served; a buffer
        miss (including a racing prefetch that has claimed but not yet
        delivered the key) builds from the keyed stream, so the returned
        contents are identical either way.
        """
        key = (rotation, max(part_a, part_b), min(part_a, part_b))
        with self._lock:
            pool = self._buffer.pop(key, None)
            if pool is not None:
                self.pools_consumed += 1
                return pool
        pool = self.build_pool(key[1], key[2], rotation=rotation)
        with self._lock:
            self.pools_consumed += 1
        return pool

    def note_consumed(self) -> None:
        """Count a pool consumed outside the buffer path.

        The pipelined executor hands pools over through its own bounded
        queue rather than the prefetch buffer; it reports each handover here
        so ``pools_consumed`` stays comparable across execution modes.
        """
        with self._lock:
            self.pools_consumed += 1

    @property
    def resident_pools(self) -> int:
        with self._lock:
            return len(self._buffer)

    @property
    def resident_pool_keys(self) -> list[tuple[int, int]]:
        """Buffered pool pairs, oldest first (bounded-FIFO production order)."""
        with self._lock:
            return [(a, b) for _, a, b in self._buffer]

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "pools_produced": self.pools_produced,
                "pools_consumed": self.pools_consumed,
                "samples_produced": self.samples_produced,
                "resident_pools": len(self._buffer),
                "sampler_backend": self._sampler.name,
                "filtered_cache": self._filtered.stats(),
            }
