"""Host-side positive sampling for the large-graph engine (SampleManager / PoolManager).

When a graph is too large to keep on the device, GOSH draws the positive
samples on the host: for the kernel that processes the part pair
``(V^j, V^k)``, a *sample pool* ``S^{j,k}`` holds, for every vertex of
``V^j``, up to ``B`` positive neighbours that fall inside ``V^k`` (and
symmetrically for ``V^k`` vs ``V^j``).  Pools are produced ahead of time by
the SampleManager thread, buffered, and shipped to the device by the
PoolManager; at most ``S_GPU`` pools are resident.

Here the producer/consumer threads become an explicit pipeline object with
the same buffering semantics (bounded queue of ready pools, refill on
consumption); the benchmark harness uses the recorded production/consumption
counters to show the overlap behaviour, and the scheduler in
:mod:`repro.large.scheduler` consumes pools exactly as Algorithm 5 does.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.partition import VertexPartition
from ..graph.sampler_backends import (
    DEFAULT_SAMPLER_BACKEND,
    FilteredAdjacencyCache,
    SamplerBackend,
    get_sampler_backend,
)

__all__ = ["SamplePool", "SamplePoolManager"]


@dataclass
class SamplePool:
    """Positive samples for one (part_a, part_b) kernel.

    ``src``/``dst`` are global vertex ids; every ``src`` belongs to
    ``part_a`` and every ``dst`` to ``part_b`` (or vice versa — the pool
    stores both directions so the kernel can update both parts).
    """

    part_a: int
    part_b: int
    src: np.ndarray
    dst: np.ndarray

    @property
    def num_samples(self) -> int:
        return int(self.src.shape[0])

    def nbytes(self) -> int:
        return int(self.src.nbytes + self.dst.nbytes)


@dataclass
class SamplePoolManager:
    """Builds and buffers sample pools for a partitioned training run.

    Parameters
    ----------
    graph:
        The level's graph (kept on the host — never copied to the device).
    partition:
        The K-way vertex partition.
    batch_per_vertex:
        The paper's ``B`` — positive samples per vertex per pool.
    max_resident_pools:
        The paper's ``S_GPU`` — maximum number of pools buffered "on the
        device" at once.
    sampler_backend:
        The part-pair sampling engine (``"reference"`` loop oracle,
        ``"vectorized"`` batched default, or any registered backend — see
        :mod:`repro.graph.sampler_backends`).  Both built-ins draw identical
        pairs from the same seed.
    """

    graph: CSRGraph
    partition: VertexPartition
    batch_per_vertex: int = 5
    max_resident_pools: int = 4
    seed: int = 0
    sampler_backend: "str | SamplerBackend" = DEFAULT_SAMPLER_BACKEND
    pools_produced: int = 0
    pools_consumed: int = 0
    samples_produced: int = 0
    _buffer: "OrderedDict[tuple[int, int], SamplePool]" = field(default_factory=OrderedDict)
    _rng: np.random.Generator = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._sampler = get_sampler_backend(self.sampler_backend)
        # Filtered sub-CSRs (edges landing in the partner part) are built once
        # per (part, partner-part) direction and reused across rotations.
        self._filtered = FilteredAdjacencyCache(self.graph, self.partition)
        # Pre-compute part membership masks once (shared with the filtered
        # cache); pools are built lazily.
        self._masks = [self._filtered.mask(k) for k in range(self.partition.num_parts)]

    # ------------------------------------------------------------------ #
    # Production (SampleManager role)
    # ------------------------------------------------------------------ #
    def _sample_direction(self, from_part: int, to_part: int) -> tuple[np.ndarray, np.ndarray]:
        """For every vertex of ``from_part``, draw B neighbours inside ``to_part``."""
        # Only build (and hold) the filtered sub-CSR for backends that read
        # it — the reference oracle walks the graph itself.  Third-party
        # backends that do not declare the flag get the cache by default.
        filtered = (self._filtered.get(from_part, to_part)
                    if getattr(self._sampler, "uses_filtered_adjacency", True)
                    else None)
        return self._sampler.sample_pairs(
            self.graph, self.partition.parts[from_part], self._masks[to_part],
            self.batch_per_vertex, self._rng, filtered=filtered)

    def build_pool(self, part_a: int, part_b: int) -> SamplePool:
        """Build the pool for one part pair (both sampling directions)."""
        src_ab, dst_ab = self._sample_direction(part_a, part_b)
        if part_a != part_b:
            src_ba, dst_ba = self._sample_direction(part_b, part_a)
            src = np.concatenate([src_ab, src_ba])
            dst = np.concatenate([dst_ab, dst_ba])
        else:
            src, dst = src_ab, dst_ab
        pool = SamplePool(part_a=part_a, part_b=part_b, src=src, dst=dst)
        self.pools_produced += 1
        self.samples_produced += pool.num_samples
        return pool

    def prefetch(self, upcoming_pairs: list[tuple[int, int]]) -> None:
        """Fill the buffer with pools for the next pairs (PoolManager role)."""
        for pair in upcoming_pairs:
            if len(self._buffer) >= self.max_resident_pools:
                break
            key = (max(pair), min(pair))
            if key not in self._buffer:
                self._buffer[key] = self.build_pool(*key)

    # ------------------------------------------------------------------ #
    # Consumption (device side of Algorithm 5, line 10)
    # ------------------------------------------------------------------ #
    def acquire(self, part_a: int, part_b: int) -> SamplePool:
        """Get (building if necessary) and consume the pool for a pair."""
        key = (max(part_a, part_b), min(part_a, part_b))
        pool = self._buffer.pop(key, None)
        if pool is None:
            pool = self.build_pool(*key)
        self.pools_consumed += 1
        return pool

    @property
    def resident_pools(self) -> int:
        return len(self._buffer)

    @property
    def resident_pool_keys(self) -> list[tuple[int, int]]:
        """Buffered pool keys, oldest first (bounded-FIFO production order)."""
        return list(self._buffer)

    def stats(self) -> dict[str, object]:
        return {
            "pools_produced": self.pools_produced,
            "pools_consumed": self.pools_consumed,
            "samples_produced": self.samples_produced,
            "resident_pools": self.resident_pools,
            "sampler_backend": self._sampler.name,
            "filtered_cache": self._filtered.stats(),
        }
