"""repro.store — the durable, versioned embedding store.

Training produces :class:`~repro.api.result.EmbeddingResult` objects that,
until this subsystem, lived only in memory.  The store is the consumption
side's source of truth:

* :class:`EmbeddingStore` — save/load embeddings as memory-mappable ``.npy``
  shards plus a JSON manifest, keyed by
  ``(graph fingerprint, config hash, tool, version)``.
* :class:`StoreEntry` — one saved version (manifest + shard paths).
* :func:`config_hash` — the canonical hash of a result's configuration echo,
  so two runs with identical settings share a version lineage.

Quickstart::

    from repro.store import EmbeddingStore

    store = EmbeddingStore(tmp_path / "embeddings")
    entry = store.save(result, graph=graph)
    same = store.load(graph.fingerprint(), result.tool, mmap=True)
    assert (same.embedding == result.embedding).all()   # zero-copy view
"""

from .store import EmbeddingStore, StoreEntry, StoreError, config_hash

__all__ = ["EmbeddingStore", "StoreEntry", "StoreError", "config_hash"]
