"""The versioned, on-disk embedding store.

Layout
------
One directory per *lineage* — a ``(graph fingerprint, config hash, tool)``
triple — holding one subdirectory per saved version::

    <root>/
      <fingerprint>-<config-hash>-<tool>/
        v0001/
          manifest.json
          embedding-00000.npy        # row shards, memory-mappable
        v0002/
          ...

Shards are plain ``.npy`` files written with :func:`numpy.save`, so any NumPy
(or non-Python) consumer can read them; ``load(..., mmap=True)`` maps a
single-shard entry straight off disk without copying the matrix (multi-shard
entries map every shard but must concatenate, which copies — the default is
one shard).  The manifest carries the full key plus the result envelope's
``timings``/``stats``/``metadata``, so a loaded
:class:`~repro.api.result.EmbeddingResult` round-trips everything except the
backend-native ``raw`` object.

Writes are atomic at the version level: shards and manifest land in a
``.tmp-*`` staging directory that is renamed into place last, so a crashed
``save`` never leaves a version that :meth:`EmbeddingStore.list` would serve.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from ..faults import FAULTS, InjectedFault
from ..obs import trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.result import EmbeddingResult
    from ..graph.csr import CSRGraph

__all__ = ["EmbeddingStore", "StoreEntry", "StoreError", "config_hash"]

#: Bump when the manifest schema changes incompatibly.
MANIFEST_FORMAT = 1

#: Metadata keys that describe provenance rather than configuration; they are
#: excluded from the config hash so saving a loaded result (whose metadata
#: carries store bookkeeping) hashes the same as saving the original.
#: ``checkpoint`` is the resume cursor (level, rotation) stamped by the
#: checkpoint layer — provenance of one save, not configuration, so every
#: checkpoint of a run shares a lineage whose hash matches the final result's.
_NON_CONFIG_KEYS = frozenset({"graph_fingerprint", "store", "checkpoint"})

#: How old a ``.tmp-*`` staging dir (or a manifest-less version dir) must be
#: before :meth:`EmbeddingStore.gc` sweeps it as crash debris.  Generous by
#: default: a *live* writer's staging dir looks identical to a leaked one,
#: and no legitimate save stages for an hour.
DEFAULT_STAGING_GRACE_S = 3600.0


class StoreError(KeyError):
    """Raised when a requested store entry does not exist."""

    def __str__(self) -> str:
        # KeyError.__str__ wraps the message in repr quotes; undo that so the
        # CLI can print the message verbatim.
        return self.args[0]


def config_hash(metadata: dict[str, object]) -> str:
    """Canonical hash of a result's configuration echo.

    Two runs of the same tool with identical settings (dim, epochs, seed, …)
    share a hash — and therefore a version lineage in the store — regardless
    of dict ordering.  Provenance keys the store itself adds are excluded.
    """
    payload = {k: v for k, v in metadata.items() if k not in _NON_CONFIG_KEYS}
    # Canonicalise exactly like the manifest serialisation (_jsonable), so a
    # result whose metadata holds numpy scalars hashes the same before and
    # after a store round-trip.
    canonical = json.dumps(_jsonable(payload), sort_keys=True, default=repr)
    return hashlib.blake2b(canonical.encode(), digest_size=8).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One saved version: its key, location, and manifest."""

    fingerprint: str
    config_hash: str
    tool: str
    version: int
    path: Path
    manifest: dict[str, object]

    @property
    def key(self) -> tuple[str, str, str]:
        """The lineage this version belongs to."""
        return (self.fingerprint, self.config_hash, self.tool)

    @property
    def shape(self) -> tuple[int, int]:
        rows, dim = self.manifest["shape"]
        return (int(rows), int(dim))

    @property
    def dtype(self) -> str:
        return str(self.manifest["dtype"])

    @property
    def graph(self) -> str:
        return str(self.manifest.get("graph", "graph"))

    @property
    def created_at(self) -> float:
        return float(self.manifest.get("created_at", 0.0))

    @property
    def nbytes(self) -> int:
        return sum(int(s["nbytes"]) for s in self.manifest["shards"])

    def as_row(self) -> dict[str, object]:
        """A flat row for table printing (``repro-gosh export --list``)."""
        rows, dim = self.shape
        return {
            "graph": self.graph,
            "tool": self.tool,
            "version": f"v{self.version:04d}",
            "shape": f"{rows}x{dim}",
            "dtype": self.dtype,
            "config": self.config_hash,
            "fingerprint": self.fingerprint[:12],
            "MB": round(self.nbytes / (1024 * 1024), 2),
        }


def _version_dirname(version: int) -> str:
    return f"v{version:04d}"


class EmbeddingStore:
    """Versioned on-disk store for :class:`~repro.api.result.EmbeddingResult`.

    Parameters
    ----------
    root:
        Directory holding every lineage; created on first save.
    shard_rows:
        Rows per ``.npy`` shard.  ``None`` (default) writes one shard, which
        is what keeps ``load(mmap=True)`` zero-copy; set it to bound the size
        of individual files for very large matrices.
    staging_grace_s:
        Minimum age before :meth:`gc` sweeps leaked ``.tmp-*`` staging dirs
        and manifest-less version dirs (a writer killed mid-save leaves
        both).  The default is deliberately long — see
        :data:`DEFAULT_STAGING_GRACE_S`; crash-recovery tests pass ``0``.
    """

    def __init__(self, root: str | os.PathLike, *, shard_rows: int | None = None,
                 staging_grace_s: float = DEFAULT_STAGING_GRACE_S):
        if shard_rows is not None and shard_rows < 1:
            raise ValueError("shard_rows must be >= 1 (or None for a single shard)")
        if staging_grace_s < 0:
            raise ValueError("staging_grace_s must be >= 0")
        self.root = Path(root)
        self.shard_rows = shard_rows
        self.staging_grace_s = staging_grace_s
        self.saves = 0
        self.loads = 0
        self.gc_removed = 0
        self.staging_swept = 0

    # ------------------------------------------------------------------ #
    # Saving
    # ------------------------------------------------------------------ #
    def save(self, result: "EmbeddingResult", *,
             graph: "CSRGraph | None" = None,
             fingerprint: str | None = None) -> StoreEntry:
        """Persist ``result`` as the next version of its lineage.

        The graph identity comes from ``graph.fingerprint()``, an explicit
        ``fingerprint``, or — for results that already went through the
        service layer — ``result.metadata["graph_fingerprint"]``.
        """
        if fingerprint is None and graph is not None:
            fingerprint = graph.fingerprint()
        if fingerprint is None:
            fingerprint = result.metadata.get("graph_fingerprint")  # type: ignore[assignment]
        if not fingerprint:
            raise ValueError(
                "cannot key the store entry: pass graph= or fingerprint=, or embed "
                "through EmbeddingService (which stamps metadata['graph_fingerprint'])")
        cfg_hash = config_hash(result.metadata)
        t_save = time.perf_counter()
        matrix = np.ascontiguousarray(result.embedding)
        if matrix.ndim != 2:
            raise ValueError(f"embedding must be a 2-D matrix, got shape {matrix.shape}")

        lineage = self._lineage_dir(fingerprint, cfg_hash, result.tool)
        lineage.mkdir(parents=True, exist_ok=True)
        staging = lineage / f".tmp-{os.getpid()}-{os.urandom(4).hex()}"
        staging.mkdir()
        try:
            shards = []
            for i, (start, stop) in enumerate(self._shard_bounds(matrix.shape[0])):
                shard_name = f"embedding-{i:05d}.npy"
                np.save(staging / shard_name, matrix[start:stop])
                shards.append({"file": shard_name, "rows": int(stop - start),
                               "nbytes": int(matrix[start:stop].nbytes)})
            # The rename is the atomic commit point; when two writers race to
            # the same lineage, the loser's rename fails on the existing
            # version dir and retries as the next version (only the manifest
            # mentions the version, so the shards are written once).
            FAULTS.crossing("store-commit", lineage=lineage.name)
            for _ in range(50):
                version = self._next_version(lineage)
                manifest = {
                    "format": MANIFEST_FORMAT,
                    "fingerprint": fingerprint,
                    "config_hash": cfg_hash,
                    "tool": result.tool,
                    "version": version,
                    "graph": result.graph,
                    "shape": [int(matrix.shape[0]), int(matrix.shape[1])],
                    "dtype": str(matrix.dtype),
                    "shards": shards,
                    "seconds": result.seconds,
                    "timings": result.timings,
                    "stats": _jsonable(result.stats),
                    "metadata": _jsonable(result.metadata),
                    "created_at": time.time(),
                }
                with open(staging / "manifest.json", "w") as fh:
                    json.dump(manifest, fh, indent=2, default=repr)
                final = lineage / _version_dirname(version)
                try:
                    os.rename(staging, final)
                    break
                except OSError:
                    if not final.is_dir():      # not a version collision
                        raise
            else:
                raise RuntimeError(
                    f"could not claim a version under {lineage} after 50 attempts")
        except BaseException as exc:
            # An injected store-commit fault models a writer SIGKILLed at the
            # commit point — no cleanup runs, the staging dir leaks, and gc()
            # must sweep it (tests/store/test_crash_recovery.py).
            if not (isinstance(exc, InjectedFault) and exc.leaves_partial_state):
                shutil.rmtree(staging, ignore_errors=True)
            raise
        self.saves += 1
        if trace.enabled:
            trace.add_complete("store.save", time.perf_counter() - t_save,
                               tool=result.tool, version=version,
                               rows=int(matrix.shape[0]),
                               nbytes=int(matrix.nbytes))
        return StoreEntry(fingerprint=fingerprint, config_hash=cfg_hash,
                          tool=result.tool, version=version, path=final,
                          manifest=manifest)

    def _shard_bounds(self, rows: int) -> Iterable[tuple[int, int]]:
        step = rows if self.shard_rows is None else self.shard_rows
        if rows == 0:
            yield (0, 0)
            return
        for start in range(0, rows, max(1, step)):
            yield (start, min(rows, start + max(1, step)))

    def _lineage_dir(self, fingerprint: str, cfg_hash: str, tool: str) -> Path:
        return self.root / f"{fingerprint}-{cfg_hash}-{tool}"

    @staticmethod
    def _next_version(lineage: Path) -> int:
        versions = [int(p.name[1:]) for p in lineage.glob("v*")
                    if p.is_dir() and p.name[1:].isdigit()]
        return max(versions, default=0) + 1

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load(self, fingerprint: str, tool: str, *,
             config_hash: str | None = None, version: int | None = None,
             mmap: bool = False) -> "EmbeddingResult":
        """Load an entry back into an :class:`EmbeddingResult`.

        ``version=None`` picks the newest version (of the newest lineage when
        ``config_hash`` is not pinned).  ``mmap=True`` memory-maps the shards
        read-only: a single-shard entry (the default layout) comes back
        without copying the matrix.
        """
        entry = self._require(fingerprint, tool, config_hash=config_hash,
                              version=version)
        return self.load_entry(entry, mmap=mmap)

    def load_entry(self, entry: StoreEntry, *, mmap: bool = False) -> "EmbeddingResult":
        """Materialise a listed entry (see :meth:`load` for ``mmap``)."""
        from ..api.result import EmbeddingResult

        t_load = time.perf_counter()
        mode = "r" if mmap else None
        parts = [np.load(entry.path / shard["file"], mmap_mode=mode)
                 for shard in entry.manifest["shards"]]
        matrix = parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)
        manifest = entry.manifest
        metadata = dict(manifest.get("metadata", {}))
        metadata["graph_fingerprint"] = entry.fingerprint
        metadata["store"] = {
            "config_hash": entry.config_hash,
            "version": entry.version,
            "path": str(entry.path),
            "mmap": bool(mmap),
        }
        self.loads += 1
        if trace.enabled:
            trace.add_complete("store.load", time.perf_counter() - t_load,
                               tool=entry.tool, version=entry.version,
                               mmap=bool(mmap))
        return EmbeddingResult(
            embedding=matrix,
            tool=entry.tool,
            graph=entry.graph,
            seconds=float(manifest.get("seconds", 0.0)),
            timings=dict(manifest.get("timings", {})),
            stats=dict(manifest.get("stats", {})),
            metadata=metadata,
        )

    # ------------------------------------------------------------------ #
    # Version management
    # ------------------------------------------------------------------ #
    def list(self, fingerprint: str | None = None, tool: str | None = None,
             ) -> list[StoreEntry]:
        """Every stored entry (optionally filtered), newest versions last."""
        entries: list[StoreEntry] = []
        if not self.root.is_dir():
            return entries
        for lineage in sorted(self.root.iterdir()):
            if not lineage.is_dir() or lineage.name.startswith("."):
                continue
            # Lineage dirnames are "<fingerprint>-<hash>-<tool>" (see
            # _lineage_dir), so filtered lookups — every serving request
            # resolves latest(fingerprint, tool) — skip foreign lineages
            # without opening their manifests.  The manifest check below
            # stays authoritative.
            if fingerprint is not None and not lineage.name.startswith(f"{fingerprint}-"):
                continue
            if tool is not None and not lineage.name.endswith(f"-{tool}"):
                continue
            for vdir in sorted(lineage.glob("v*")):
                manifest_path = vdir / "manifest.json"
                if not manifest_path.is_file():
                    continue
                with open(manifest_path) as fh:
                    manifest = json.load(fh)
                entry = StoreEntry(
                    fingerprint=str(manifest["fingerprint"]),
                    config_hash=str(manifest["config_hash"]),
                    tool=str(manifest["tool"]),
                    version=int(manifest["version"]),
                    path=vdir,
                    manifest=manifest,
                )
                if fingerprint is not None and entry.fingerprint != fingerprint:
                    continue
                if tool is not None and entry.tool != tool:
                    continue
                entries.append(entry)
        entries.sort(key=lambda e: (e.key, e.version))
        return entries

    def latest(self, fingerprint: str, tool: str, *,
               config_hash: str | None = None,
               where: "Callable[[StoreEntry], bool] | None" = None,
               ) -> StoreEntry | None:
        """Newest version for the graph/tool pair, or ``None``.

        Without a pinned ``config_hash`` the newest entry across every
        configuration lineage wins (by save time, then version).  ``where``
        filters candidates *before* picking the newest, so a caller that can
        only serve certain entries (e.g. a fixed embedding dimension) finds
        the newest servable one instead of being masked by a newer entry
        from an incompatible lineage.
        """
        candidates = [e for e in self.list(fingerprint, tool)
                      if (config_hash is None or e.config_hash == config_hash)
                      and (where is None or where(e))]
        if not candidates:
            return None
        return max(candidates, key=lambda e: (e.created_at, e.version))

    def _require(self, fingerprint: str, tool: str, *,
                 config_hash: str | None, version: int | None) -> StoreEntry:
        if version is None:
            entry = self.latest(fingerprint, tool, config_hash=config_hash)
            if entry is None:
                raise StoreError(
                    f"no stored embedding for fingerprint {fingerprint[:12]}… "
                    f"and tool {tool!r} under {self.root}")
            return entry
        # Version numbers are per lineage; without a config pin the same
        # number can exist in several lineages, so break the tie the same way
        # latest() does — by save time — instead of by lineage sort order.
        candidates = [e for e in self.list(fingerprint, tool)
                      if e.version == version and (
                          config_hash is None or e.config_hash == config_hash)]
        if candidates:
            return max(candidates, key=lambda e: e.created_at)
        raise StoreError(
            f"no version {version} for fingerprint {fingerprint[:12]}… "
            f"and tool {tool!r} under {self.root}")

    def gc(self, keep_n: int, *, fingerprint: str | None = None,
           tool: str | None = None) -> list[StoreEntry]:
        """Keep the newest ``keep_n`` versions of every matching lineage.

        ``fingerprint``/``tool`` scope the collection (unscoped gc walks the
        whole store).  Also sweeps crash debris — ``.tmp-*`` staging dirs and
        half-written (manifest-less) version dirs older than the store's
        ``staging_grace_s`` — from the matching lineages; a writer SIGKILLed
        mid-save no longer leaks its staging dir forever.  Returns the
        removed entries (for logging); ``keep_n=0`` empties the matching
        lineages.
        """
        if keep_n < 0:
            raise ValueError("keep_n must be >= 0")
        self.sweep_staging(fingerprint=fingerprint, tool=tool)
        by_lineage: dict[tuple[str, str, str], list[StoreEntry]] = {}
        for entry in self.list(fingerprint, tool):
            by_lineage.setdefault(entry.key, []).append(entry)
        removed: list[StoreEntry] = []
        for versions in by_lineage.values():
            versions.sort(key=lambda e: e.version)
            for entry in versions[:max(0, len(versions) - keep_n)]:
                shutil.rmtree(entry.path)
                removed.append(entry)
            lineage_dir = versions[0].path.parent
            if not any(lineage_dir.iterdir()):
                lineage_dir.rmdir()
        self.gc_removed += len(removed)
        return removed

    def _matching_lineage_dirs(self, fingerprint: str | None,
                               tool: str | None) -> "Iterable[Path]":
        """Lineage dirs matching the gc scope, manifests not required."""
        if not self.root.is_dir():
            return
        for lineage in sorted(self.root.iterdir()):
            if not lineage.is_dir() or lineage.name.startswith("."):
                continue
            if fingerprint is not None and not lineage.name.startswith(f"{fingerprint}-"):
                continue
            if tool is not None and not lineage.name.endswith(f"-{tool}"):
                continue
            yield lineage

    @staticmethod
    def _staging_debris(lineage: Path) -> "Iterable[Path]":
        """Crash leftovers in one lineage: staging dirs, half-written versions."""
        for child in lineage.iterdir():
            if not child.is_dir():
                continue
            if child.name.startswith(".tmp-"):
                yield child
            elif (child.name.startswith("v") and child.name[1:].isdigit()
                  and not (child / "manifest.json").is_file()):
                yield child

    def sweep_staging(self, *, fingerprint: str | None = None,
                      tool: str | None = None,
                      grace_s: float | None = None) -> list[Path]:
        """Remove crash debris older than the grace period; return the paths.

        Debris is a ``.tmp-*`` staging dir (writer died before its rename)
        or a version dir without a manifest (half-written by a pre-staging
        writer or an interrupted copy).  ``load``/``latest``/``list`` already
        ignore both; this reclaims the bytes.  Lineage dirs emptied by the
        sweep are removed too.
        """
        cutoff = time.time() - (self.staging_grace_s if grace_s is None else grace_s)
        swept: list[Path] = []
        for lineage in self._matching_lineage_dirs(fingerprint, tool):
            for debris in list(self._staging_debris(lineage)):
                try:
                    if debris.stat().st_mtime > cutoff:
                        continue
                except OSError:       # raced with another sweeper
                    continue
                shutil.rmtree(debris, ignore_errors=True)
                swept.append(debris)
            if swept and lineage.is_dir() and not any(lineage.iterdir()):
                lineage.rmdir()
        self.staging_swept += len(swept)
        return swept

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, object]:
        """Aggregate counters, via a manifest-free walk.

        ``stats()`` runs after every serving command (and on every
        ``EmbeddingService.stats()`` poll), so it only stats directory names
        and shard sizes instead of JSON-parsing each version's manifest like
        :meth:`list` does.
        """
        entries = lineages = nbytes = 0
        staging = stale_staging = 0
        cutoff = time.time() - self.staging_grace_s
        if self.root.is_dir():
            for lineage in self.root.iterdir():
                if not lineage.is_dir() or lineage.name.startswith("."):
                    continue
                had_version = False
                for vdir in lineage.glob("v*"):
                    if not (vdir / "manifest.json").is_file():
                        continue
                    had_version = True
                    entries += 1
                    nbytes += sum(f.stat().st_size
                                  for f in vdir.glob("embedding-*.npy"))
                lineages += had_version
                for debris in self._staging_debris(lineage):
                    staging += 1
                    try:
                        stale_staging += debris.stat().st_mtime <= cutoff
                    except OSError:
                        pass
        return {
            "root": str(self.root),
            "entries": entries,
            "lineages": lineages,
            "bytes": nbytes,
            "saves": self.saves,
            "loads": self.loads,
            "gc_removed": self.gc_removed,
            "staging_dirs": staging,
            "stale_staging_dirs": stale_staging,
            "staging_swept": self.staging_swept,
        }


def _jsonable(obj: object) -> object:
    """Deep-convert numpy scalars/arrays so the manifest stays valid JSON."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return obj
