"""Simulated GPU substrate: device memory model, warp model, kernels, streams."""

from .device import (
    TITAN_X,
    DeviceBuffer,
    DeviceMemoryError,
    DeviceSpec,
    SimulatedDevice,
    embedding_fits_on_device,
)
from .kernels import (
    SigmoidTable,
    sigmoid,
    train_epoch_naive,
    train_epoch_optimized,
    train_pair_kernel,
    update_embedding_pair,
)
from .streams import StreamEvent, StreamTimeline
from .warp import WarpConfig, WarpSchedule, vertices_per_warp, warp_lane_efficiency

__all__ = [
    "TITAN_X",
    "DeviceBuffer",
    "DeviceMemoryError",
    "DeviceSpec",
    "SimulatedDevice",
    "embedding_fits_on_device",
    "SigmoidTable",
    "sigmoid",
    "train_epoch_naive",
    "train_epoch_optimized",
    "train_pair_kernel",
    "update_embedding_pair",
    "StreamEvent",
    "StreamTimeline",
    "WarpConfig",
    "WarpSchedule",
    "vertices_per_warp",
    "warp_lane_efficiency",
]
