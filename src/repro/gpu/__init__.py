"""Simulated GPU substrate: device memory model, warp model, kernels, backends, streams."""

from .backends import (
    KernelBackend,
    ReferenceBackend,
    UnknownBackendError,
    VectorizedBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .device import (
    TITAN_X,
    DeviceBuffer,
    DeviceMemoryError,
    DeviceSpec,
    SimulatedDevice,
    embedding_fits_on_device,
)
from .kernels import (
    SigmoidTable,
    build_index_lookup,
    sigmoid,
    train_epoch_naive,
    train_epoch_optimized,
    train_pair_kernel,
    update_embedding_pair,
)
from .streams import StreamEvent, StreamTimeline
from .warp import WarpConfig, WarpSchedule, vertices_per_warp, warp_lane_efficiency

__all__ = [
    "KernelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "register_backend",
    "build_index_lookup",
    "TITAN_X",
    "DeviceBuffer",
    "DeviceMemoryError",
    "DeviceSpec",
    "SimulatedDevice",
    "embedding_fits_on_device",
    "SigmoidTable",
    "sigmoid",
    "train_epoch_naive",
    "train_epoch_optimized",
    "train_pair_kernel",
    "update_embedding_pair",
    "StreamEvent",
    "StreamTimeline",
    "WarpConfig",
    "WarpSchedule",
    "vertices_per_warp",
    "warp_lane_efficiency",
]
