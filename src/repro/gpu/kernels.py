"""Embedding kernels (Algorithm 1 + the per-epoch body of Algorithm 3).

The CUDA kernels of the original implementation are replaced by vectorised
NumPy batch operations with the *same update semantics*:

* **Epoch synchronisation** — one call processes one epoch; no two epochs
  overlap (the paper's main race-reduction measure).
* **Source staging** — every source vertex appears exactly once per epoch, so
  its vector is "staged" (gathered once), updated through the positive and
  ``ns`` negative samples, and written back once — the shared-memory
  optimisation of Section 3.1.
* **Benign sample races** — sampled vertices are updated with
  ``np.add.at`` scatter-adds, so two warps sampling the same vertex in the
  same round accumulate both updates, mirroring the accepted race on the GPU.

Two kernel variants are provided because Figure 4 distinguishes them:

* :func:`train_epoch_naive` — gathers the source vector from "global memory"
  for every sample and scatters it back each time (no staging, no
  coalescing); this is the paper's *naive GPU* data point.
* :func:`train_epoch_optimized` — the staged, batched version described
  above; this is the *optimized GPU* data point and the kernel GOSH uses.
"""

from __future__ import annotations

import numpy as np

from .device import SimulatedDevice
from .warp import WarpConfig

__all__ = [
    "sigmoid",
    "SigmoidTable",
    "update_embedding_pair",
    "train_epoch_optimized",
    "train_epoch_naive",
    "train_pair_kernel",
    "build_index_lookup",
]


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically-stable logistic function."""
    return 0.5 * (1.0 + np.tanh(0.5 * np.asarray(x, dtype=np.float64)))


class SigmoidTable:
    """Pre-computed sigmoid lookup table.

    GPU embedding implementations (GraphVite, word2vec lineage) replace the
    transcendental with a small table; we keep the same trick because it also
    speeds up NumPy slightly and documents the bounded-input behaviour
    (inputs are clipped to ``[-bound, bound]``).
    """

    def __init__(self, bound: float = 6.0, size: int = 1024, dtype=np.float64):
        if bound <= 0 or size < 2:
            raise ValueError("bound must be positive and size >= 2")
        self.bound = float(bound)
        self.size = int(size)
        xs = np.linspace(-bound, bound, size)
        self.table = np.asarray(sigmoid(xs), dtype=dtype)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        clipped = np.clip(x, -self.bound, self.bound)
        idx = ((clipped + self.bound) * (self.size - 1) / (2 * self.bound)).astype(np.int64)
        return self.table[idx]


def update_embedding_pair(vec_v: np.ndarray, vec_s: np.ndarray, positive: bool,
                          lr: float) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm 1 on a single (source, sample) pair — reference implementation.

    Returns the updated copies ``(M[v], M[sample])``.  The batched kernels
    below are the production path; this function is the oracle the property
    tests compare them against.
    """
    b = 1.0 if positive else 0.0
    score = (b - sigmoid(float(np.dot(vec_v, vec_s)))) * lr
    new_v = vec_v + vec_s * score
    new_s = vec_s + new_v * score
    return new_v, new_s


def _apply_sample_round(staged: np.ndarray, embedding: np.ndarray,
                        samples: np.ndarray, b: float, lr: float,
                        sig) -> None:
    """One sample round for all sources at once (staged source vectors).

    ``staged`` is the (num_sources, d) array of in-shared-memory source
    vectors, modified in place; ``embedding`` is global memory, scatter-added
    in place.
    """
    sample_vecs = embedding[samples]
    scores = (b - sig(np.einsum("ij,ij->i", staged, sample_vecs))) * lr
    staged += sample_vecs * scores[:, None]
    # The sample update uses the *updated* source vector (line 3 of Alg. 1).
    np.add.at(embedding, samples, staged * scores[:, None])


def train_epoch_optimized(embedding: np.ndarray, sources: np.ndarray,
                          positives: np.ndarray, negatives: np.ndarray,
                          lr: float, *, device: SimulatedDevice | None = None,
                          warp_config: WarpConfig | None = None,
                          chunk_size: int = 2048,
                          sig=sigmoid) -> None:
    """One synchronised epoch with source staging (the GOSH kernel).

    Sources are processed in chunks of ``chunk_size`` warps; within a chunk
    the source vectors live in "shared memory" (a staged copy), while the
    sampled vectors are scatter-updated in global memory.  At write-back the
    staged source update is *merged* with any updates the same rows received
    as samples during the chunk, mirroring the GPU behaviour where warps
    interleave in time and only truly concurrent accesses race.

    Parameters
    ----------
    embedding:
        ``(|V|, d)`` matrix updated in place ("global memory").
    sources:
        Source vertices for this epoch; must not contain duplicates (each
        vertex is the source of at most one warp per epoch).
    positives:
        One positive sample per source (entries < 0 mean "no positive
        neighbour"; those sources skip the positive round).
    negatives:
        ``(num_sources, ns)`` negative samples.
    """
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size == 0:
        return
    if np.unique(sources).shape[0] != sources.shape[0]:
        raise ValueError("sources must be unique within an epoch")
    ns = negatives.shape[1] if negatives.ndim == 2 else 0
    num_sources = sources.shape[0]
    for start in range(0, num_sources, chunk_size):
        stop = min(start + chunk_size, num_sources)
        chunk = sources[start:stop]
        chunk_pos = positives[start:stop]
        chunk_neg = negatives[start:stop] if ns else negatives

        original = embedding[chunk].copy()
        staged = original.copy()                 # shared-memory staging
        valid_pos = chunk_pos >= 0
        if np.any(valid_pos):
            # Positive round only for sources that have a positive sample.
            sub = staged[valid_pos]
            _apply_sample_round(sub, embedding, chunk_pos[valid_pos], 1.0, lr, sig)
            staged[valid_pos] = sub
        for k in range(ns):
            _apply_sample_round(staged, embedding, chunk_neg[:, k], 0.0, lr, sig)
        # Write back: keep the source-side updates (staged - original) plus
        # whatever the rows received as samples meanwhile.
        received = embedding[chunk] - original
        embedding[chunk] = staged + received

    record_epoch_cost(device, "optimized", num_sources, ns, embedding.shape[1],
                      warp_config=warp_config)


def train_epoch_naive(embedding: np.ndarray, sources: np.ndarray,
                      positives: np.ndarray, negatives: np.ndarray,
                      lr: float, *, device: SimulatedDevice | None = None,
                      sig=sigmoid) -> None:
    """The un-optimised kernel: re-read and re-write the source per sample.

    Functionally equivalent to a per-sample sequence of Algorithm 1 updates
    against global memory (no staging), which costs (1 + ns) gathers and
    2 x (1 + ns) scatters of the source vector per epoch instead of one of
    each.  Used as the Figure 4 "Naive GPU" reference point.
    """
    sources = np.asarray(sources, dtype=np.int64)
    if sources.size == 0:
        return
    ns = negatives.shape[1] if negatives.ndim == 2 else 0
    rounds: list[tuple[np.ndarray, float, np.ndarray]] = []
    valid_pos = positives >= 0
    rounds.append((sources[valid_pos], 1.0, positives[valid_pos]))
    for k in range(ns):
        rounds.append((sources, 0.0, negatives[:, k]))
    for srcs, b, samples in rounds:
        if srcs.size == 0:
            continue
        src_vecs = embedding[srcs]                       # global read every round
        sample_vecs = embedding[samples]
        scores = (b - sig(np.einsum("ij,ij->i", src_vecs, sample_vecs))) * lr
        new_src = src_vecs + sample_vecs * scores[:, None]
        embedding[srcs] = new_src                        # global write every round
        np.add.at(embedding, samples, new_src * scores[:, None])

    record_epoch_cost(device, "naive", sources.shape[0], ns, embedding.shape[1])


def build_index_lookup(part: np.ndarray, size: int | None = None) -> np.ndarray:
    """Global-id → local-row lookup array for a sub-matrix part.

    ``lookup[g] == i`` iff ``part[i] == g``; ids outside ``part`` map to
    ``-1``.  This replaces the per-call Python ``dict`` index maps the pair
    kernel used to build: the array is built once per partition (the
    large-graph scheduler caches one global-sized array per
    :class:`~repro.graph.partition.VertexPartition`) and reused by every
    kernel launch of a rotation.
    """
    part = np.asarray(part, dtype=np.int64)
    if size is None:
        size = int(part.max()) + 1 if part.size else 0
    lookup = np.full(size, -1, dtype=np.int64)
    lookup[part] = np.arange(part.shape[0], dtype=np.int64)
    return lookup


def resolve_pair_locals(pos_src: np.ndarray, pos_dst: np.ndarray,
                        part_a: np.ndarray, part_b: np.ndarray,
                        index_a: np.ndarray | None,
                        index_b: np.ndarray | None) -> tuple[np.ndarray, np.ndarray]:
    """Map global positive-pair ids to local sub-matrix rows (both backends).

    Ids outside the parts raise ``KeyError`` — the contract the per-call
    ``dict`` maps used to enforce.  The check is a round-trip
    (``part[local] == global``) rather than a ``>= 0`` test because the
    scheduler passes one *partition-wide* lookup array, in which an id from
    the wrong part still resolves to a non-negative row — of the wrong
    sub-matrix — and would otherwise corrupt it silently.
    """
    if index_a is None:
        index_a = build_index_lookup(part_a)
    if index_b is None:
        index_b = index_a if part_b is part_a else build_index_lookup(part_b)
    for glob, lookup, name in ((pos_src, index_a, "pos_src"), (pos_dst, index_b, "pos_dst")):
        if glob.size and (int(glob.min()) < 0 or int(glob.max()) >= lookup.shape[0]):
            raise KeyError(f"{name}: positive-pair ids outside the lookup range")
    local_src = index_a[pos_src].astype(np.int64, copy=False)
    local_dst = index_b[pos_dst].astype(np.int64, copy=False)
    for local, glob, part, name in ((local_src, pos_src, part_a, "pos_src/part_a"),
                                    (local_dst, pos_dst, part_b, "pos_dst/part_b")):
        if local.size and (
                (local < 0).any() or int(local.max()) >= part.shape[0]
                or not np.array_equal(part[local], glob)):
            raise KeyError(f"{name}: positive-pair ids outside the resident part")
    return local_src, local_dst


def record_epoch_cost(device: SimulatedDevice | None, kernel: str,
                      num_sources: int, ns: int, dim: int, *,
                      warp_config: WarpConfig | None = None) -> None:
    """Simulated-device accounting for one epoch-kernel launch.

    Shared by every backend: the device prices the *paper's* GPU, so the
    modelled work must not depend on which host implementation ran.
    """
    if device is None:
        return
    if kernel == "optimized":
        cfg = warp_config or WarpConfig(dim=dim)
        device.record_kernel(num_sources * (1 + ns) * dim, efficiency=cfg.lane_efficiency)
    else:
        # Naive kernel: uncoalesced global traffic modelled as ~3x the work at
        # the efficiency of one lane per element.
        device.record_kernel(num_sources * (1 + ns) * dim * 3,
                             efficiency=min(1.0, dim / 32) * 0.5)


def record_pair_cost(device: SimulatedDevice | None, num_positives: int,
                     num_sources: int, ns: int, dim: int, *,
                     warp_config: WarpConfig | None = None) -> None:
    """Simulated-device accounting for one pair-kernel launch (all backends)."""
    if device is None:
        return
    cfg = warp_config or WarpConfig(dim=dim)
    device.record_kernel((num_positives + num_sources * ns) * dim,
                         efficiency=cfg.lane_efficiency)


def train_pair_kernel(part_a: np.ndarray, part_b: np.ndarray,
                      sub_a: np.ndarray, sub_b: np.ndarray,
                      pos_src: np.ndarray, pos_dst: np.ndarray,
                      ns: int, lr: float, rng: np.random.Generator, *,
                      device: SimulatedDevice | None = None,
                      warp_config: WarpConfig | None = None,
                      index_a: np.ndarray | None = None,
                      index_b: np.ndarray | None = None,
                      sig=sigmoid) -> None:
    """The large-graph kernel for one (V^a, V^b) sub-matrix pair (Section 3.3).

    ``sub_a``/``sub_b`` are the two resident sub-matrices (updated in place);
    ``part_a``/``part_b`` are the global vertex ids they contain.  Positive
    pairs ``(pos_src, pos_dst)`` are given in *global* ids (drawn on the host
    by the SampleManager); negative samples are drawn here, "on the device",
    uniformly from the partner part — exactly the split the paper uses.

    ``index_a``/``index_b`` are optional pre-built global→local lookup arrays
    (see :func:`build_index_lookup`); passing them skips the per-call lookup
    construction.  A single partition-wide array may serve as both.
    """
    if pos_src.shape[0] != pos_dst.shape[0]:
        raise ValueError("pos_src and pos_dst must have equal length")
    # Map global ids to positions inside the resident sub-matrices.
    local_src, local_dst = resolve_pair_locals(pos_src, pos_dst, part_a, part_b,
                                               index_a, index_b)
    same_part = sub_a is sub_b

    # Positive updates.
    if local_src.size:
        src_vecs = sub_a[local_src]
        dst_vecs = sub_b[local_dst]
        scores = (1.0 - sig(np.einsum("ij,ij->i", src_vecs, dst_vecs))) * lr
        new_src = src_vecs + dst_vecs * scores[:, None]
        np.add.at(sub_a, local_src, dst_vecs * scores[:, None])
        np.add.at(sub_b, local_dst, new_src * scores[:, None])

    # Negative updates: for each source vertex in part A, ns negatives from
    # part B (and the caller invokes this kernel symmetrically for B vs A).
    if ns > 0 and part_a.shape[0] and part_b.shape[0]:
        neg_sources = np.arange(part_a.shape[0], dtype=np.int64)
        for _ in range(ns):
            neg_targets = rng.integers(0, part_b.shape[0], size=neg_sources.shape[0])
            src_vecs = sub_a[neg_sources]
            dst_vecs = sub_b[neg_targets]
            scores = (0.0 - sig(np.einsum("ij,ij->i", src_vecs, dst_vecs))) * lr
            new_src = src_vecs + dst_vecs * scores[:, None]
            np.add.at(sub_a, neg_sources, dst_vecs * scores[:, None])
            np.add.at(sub_b, neg_targets, new_src * scores[:, None])

    record_pair_cost(device, local_src.shape[0], part_a.shape[0], ns, sub_a.shape[1],
                     warp_config=warp_config)
    _ = same_part  # same-part pairs need no special casing beyond shared storage
