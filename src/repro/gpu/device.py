"""Simulated GPU device.

The paper's central constraint is *device memory*: a Titan X with 12 GB
cannot hold a 128-dimensional embedding of a 100M+ vertex graph, which is
what forces the partitioned large-graph engine of Section 3.3.  This module
models that constraint explicitly:

* a :class:`DeviceSpec` describes the simulated hardware (memory capacity,
  number of streaming multiprocessors, warp size, PCIe bandwidth),
* a :class:`SimulatedDevice` tracks every allocation and transfer against
  that capacity, raising :class:`DeviceMemoryError` on oversubscription and
  accumulating a transfer/compute cost model that the benchmarks report.

The "kernels" themselves (see :mod:`repro.gpu.kernels`) run as vectorised
NumPy on the host, but always through buffers allocated on a
:class:`SimulatedDevice`, so the memory-budget logic of GOSH is exercised for
real: if the scheduler tries to keep too many sub-matrices resident, the
allocation fails exactly as it would on the card.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..faults import FAULTS

__all__ = ["DeviceSpec", "DeviceMemoryError", "DeviceBuffer", "SimulatedDevice", "TITAN_X"]


class DeviceMemoryError(RuntimeError):
    """Raised when an allocation would exceed the simulated device memory."""


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    ``pcie_gbps`` and ``compute_throughput`` feed the cost model used for the
    simulated timing breakdowns; they do not affect correctness.
    """

    name: str
    memory_bytes: int
    num_sms: int = 28
    warp_size: int = 32
    max_threads_per_block: int = 1024
    pcie_gbps: float = 12.0           # effective host<->device GB/s
    compute_throughput: float = 10e9  # simulated embedding-updates entries/sec

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.memory_bytes


#: The paper's evaluation GPU (Titan X Pascal, 12 GB).
TITAN_X = DeviceSpec(name="TITAN X (Pascal)", memory_bytes=12 * 1024**3, num_sms=28)


@dataclass
class DeviceBuffer:
    """A named allocation living on a simulated device.

    The ``array`` is host memory standing in for device memory; the point is
    the accounting, not the physical location.
    """

    name: str
    array: np.ndarray
    device: "SimulatedDevice"
    freed: bool = False

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def free(self) -> None:
        if not self.freed:
            self.device._release(self)
            self.freed = True

    def __enter__(self) -> "DeviceBuffer":
        return self

    def __exit__(self, *exc) -> None:
        self.free()


@dataclass
class SimulatedDevice:
    """Tracks allocations, transfers and simulated kernel time for one GPU."""

    spec: DeviceSpec = field(default_factory=lambda: TITAN_X)
    allocated_bytes: int = 0
    peak_allocated_bytes: int = 0
    bytes_transferred_h2d: int = 0
    bytes_transferred_d2h: int = 0
    num_kernel_launches: int = 0
    simulated_transfer_seconds: float = 0.0
    simulated_compute_seconds: float = 0.0
    _live_buffers: dict[int, DeviceBuffer] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Memory management
    # ------------------------------------------------------------------ #
    @property
    def free_bytes(self) -> int:
        return self.spec.memory_bytes - self.allocated_bytes

    def can_allocate(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def allocate(self, shape: tuple[int, ...], dtype: np.dtype | type = np.float32,
                 *, name: str = "buffer") -> DeviceBuffer:
        """Allocate a zero-initialised device buffer or raise ``DeviceMemoryError``."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        # Armed 'device-oom' raises DeviceMemoryError here — the same error,
        # from the same frame, as a genuinely full device — so the trainer's
        # degradation path is tested against the production failure shape.
        FAULTS.crossing("device-oom", name=name, nbytes=nbytes)
        if not self.can_allocate(nbytes):
            raise DeviceMemoryError(
                f"cannot allocate {nbytes} bytes for {name!r}: "
                f"{self.free_bytes} of {self.spec.memory_bytes} bytes free"
            )
        arr = np.zeros(shape, dtype=dtype)
        buf = DeviceBuffer(name=name, array=arr, device=self)
        self.allocated_bytes += nbytes
        self.peak_allocated_bytes = max(self.peak_allocated_bytes, self.allocated_bytes)
        self._live_buffers[id(buf)] = buf
        return buf

    def upload(self, host_array: np.ndarray, *, name: str = "upload") -> DeviceBuffer:
        """Copy a host array to the device (counts as an H2D transfer)."""
        buf = self.allocate(host_array.shape, host_array.dtype, name=name)
        buf.array[...] = host_array
        self._record_transfer(host_array.nbytes, direction="h2d")
        return buf

    def download(self, buf: DeviceBuffer) -> np.ndarray:
        """Copy a device buffer back to the host (counts as a D2H transfer)."""
        self._record_transfer(buf.nbytes, direction="d2h")
        return buf.array.copy()

    def _release(self, buf: DeviceBuffer) -> None:
        if id(buf) in self._live_buffers:
            del self._live_buffers[id(buf)]
            self.allocated_bytes -= buf.nbytes

    def reset(self) -> None:
        """Free everything and zero the counters (between benchmark runs)."""
        for buf in list(self._live_buffers.values()):
            buf.free()
        self.allocated_bytes = 0
        self.peak_allocated_bytes = 0
        self.bytes_transferred_h2d = 0
        self.bytes_transferred_d2h = 0
        self.num_kernel_launches = 0
        self.simulated_transfer_seconds = 0.0
        self.simulated_compute_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def _record_transfer(self, nbytes: int, *, direction: str) -> None:
        if direction == "h2d":
            self.bytes_transferred_h2d += int(nbytes)
        else:
            self.bytes_transferred_d2h += int(nbytes)
        self.simulated_transfer_seconds += nbytes / (self.spec.pcie_gbps * 1e9)

    def record_kernel(self, work_items: int, *, efficiency: float = 1.0) -> None:
        """Account one kernel launch touching ``work_items`` embedding entries.

        ``efficiency`` models utilisation effects (e.g. idle warp lanes when
        d < warp size without the small-dimension packing of Section 3.1.1).
        """
        self.num_kernel_launches += 1
        effective = max(efficiency, 1e-6)
        self.simulated_compute_seconds += work_items / (self.spec.compute_throughput * effective)

    def memory_report(self) -> dict[str, int | float]:
        return {
            "capacity_bytes": self.spec.memory_bytes,
            "allocated_bytes": self.allocated_bytes,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "h2d_bytes": self.bytes_transferred_h2d,
            "d2h_bytes": self.bytes_transferred_d2h,
            "kernel_launches": self.num_kernel_launches,
            "sim_transfer_s": self.simulated_transfer_seconds,
            "sim_compute_s": self.simulated_compute_seconds,
        }


def embedding_fits_on_device(num_vertices: int, dim: int, graph_bytes: int,
                             device: SimulatedDevice, *, itemsize: int = 4,
                             safety_fraction: float = 0.9) -> bool:
    """The check on Line 5 of Algorithm 2: do G_i and M_i fit on the GPU?"""
    matrix_bytes = num_vertices * dim * itemsize
    return (matrix_bytes + graph_bytes) <= device.spec.memory_bytes * safety_fraction
