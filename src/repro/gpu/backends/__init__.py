"""Kernel backend layer: swappable implementations of the training kernels.

Two built-in backends implement the :class:`~repro.gpu.backends.base.KernelBackend`
protocol:

* ``"reference"`` — the original loop-based kernels (chunked staging, exact
  sigmoid, ``np.add.at`` accumulation).  Semantic oracle.
* ``"vectorized"`` — whole-epoch batched NumPy ops (fused sigmoid LUT,
  deterministic last-writer-wins scatter, precomputed index arrays); ≥5×
  faster on 50k-edge graphs, numerically close to the reference (tolerances
  pinned by the kernel-parity suite).  Default.

Selection is wired through :class:`~repro.embedding.config.GoshConfig`
(``kernel_backend``), :class:`~repro.embedding.trainer.LevelTrainer`
(``backend``), :class:`~repro.large.scheduler.LargeGraphConfig`
(``kernel_backend``), every registered embedding tool, and the CLI's
``--kernel-backend`` flag.  Third-party backends plug in with
:func:`register_backend`.
"""

from __future__ import annotations

from typing import Callable

from .base import EPOCH_KERNELS, KernelBackend
from .reference import ReferenceBackend
from .vectorized import VectorizedBackend

__all__ = [
    "EPOCH_KERNELS",
    "KernelBackend",
    "ReferenceBackend",
    "VectorizedBackend",
    "UnknownBackendError",
    "DEFAULT_BACKEND",
    "register_backend",
    "get_backend",
    "available_backends",
]

#: The backend used when nothing selects one explicitly.  The reference
#: backend remains the semantic oracle for the parity suites.
DEFAULT_BACKEND = "vectorized"

#: name -> zero-argument factory; instances are created lazily and cached.
_FACTORIES: dict[str, Callable[[], KernelBackend]] = {
    "reference": ReferenceBackend,
    "vectorized": VectorizedBackend,
}
_INSTANCES: dict[str, KernelBackend] = {}


class UnknownBackendError(KeyError):
    """Raised when a kernel-backend name is not registered."""

    def __init__(self, name: str, options: list[str]):
        super().__init__(
            f"unknown kernel backend {name!r}; registered backends: {', '.join(options)}")
        self.name = name
        self.options = options

    def __str__(self) -> str:
        return self.args[0]


def register_backend(name: str, factory: Callable[[], KernelBackend], *,
                     replace: bool = False) -> None:
    """Register a zero-argument ``factory`` under ``name`` (case-insensitive)."""
    key = name.strip().lower()
    if not replace and key in _FACTORIES:
        raise ValueError(f"backend {key!r} is already registered (pass replace=True to override)")
    _FACTORIES[key] = factory
    _INSTANCES.pop(key, None)


def get_backend(backend: str | KernelBackend | None) -> KernelBackend:
    """Resolve ``backend`` to an instance.

    Accepts a registered name (cached singleton per name), an object already
    implementing the protocol (returned as-is, so callers can inject
    pre-configured or third-party backends), or ``None`` for the default.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if not isinstance(backend, str):
        return backend
    key = backend.strip().lower()
    if key not in _FACTORIES:
        raise UnknownBackendError(backend, available_backends())
    if key not in _INSTANCES:
        _INSTANCES[key] = _FACTORIES[key]()
    return _INSTANCES[key]


def available_backends() -> list[str]:
    """Registered backend names, built-ins first."""
    return list(_FACTORIES)
