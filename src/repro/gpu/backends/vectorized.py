"""The ``"vectorized"`` backend — whole-epoch batched kernels.

The reference kernels process an epoch in 2048-source chunks, evaluate an
exact ``float64`` sigmoid per round, and scatter sample updates with
``np.add.at`` (which is an order of magnitude slower than plain fancy
indexing because it resolves duplicate indices by accumulation).  This
backend computes whole sample-rounds as single batched NumPy expressions:

* **Fused sigmoid LUT** — scores go through a ``float32`` lookup table
  (:class:`~repro.gpu.kernels.SigmoidTable` with 8192 bins over ``[-6, 6]``),
  the GraphVite/word2vec trick; maximum quantisation error per update is
  ``lr * 0.5 * (12 / 8192)`` — two orders of magnitude below the update
  magnitude itself.
* **Gather–update–scatter with deterministic last-writer-wins** — sample
  rounds of the epoch kernels write updated sample vectors back with fancy
  index assignment.  When the same vertex is sampled twice in one round, the
  later occurrence (in sample order) wins, which is deterministic across
  runs; the reference backend accumulates both.  This mirrors the paper's
  benign write-races (Section 3.1) more literally than accumulation does —
  on the GPU a lost concurrent update is exactly what a race produces.
* **Precomputed index arrays** — the pair kernel maps global vertex ids
  through :func:`~repro.gpu.kernels.build_index_lookup` arrays instead of
  per-call Python dicts, and accepts partition-wide cached arrays from the
  large-graph scheduler.

The pair kernel keeps *accumulation* semantics for its conflicts (positive
pools repeat each source ``B`` times, so dropping conflicting updates would
change training quality) but resolves them with a deterministic sort +
``np.add.reduceat`` segment sum instead of ``np.add.at``.

Parity with the reference backend is pinned by
``tests/gpu/test_kernel_backends.py``; the documented tolerances are
``atol = 2e-2`` on embeddings after a handful of epochs (LUT quantisation +
conflict policy) and ``atol = 1e-5`` for a single pair-kernel call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..device import SimulatedDevice
from ..warp import WarpConfig
from ..kernels import (
    SigmoidTable,
    record_epoch_cost,
    record_pair_cost,
    resolve_pair_locals,
)
from .base import EPOCH_KERNELS

__all__ = ["VectorizedBackend", "ScatterPlan", "PairPlan", "plan_scatter"]


@dataclass(frozen=True)
class ScatterPlan:
    """Precomputed index structure for one deterministic segment scatter-add.

    The expensive part of ``target[idx] += updates`` with duplicate
    accumulation is the stable sort of ``idx`` — which depends only on the
    indices, never on the update values.  A plan captures that sort (the
    permutation, the duplicate-segment starts, and the unique target rows) so
    the value-dependent half can run later, possibly on another thread's
    schedule: the pipelined large-graph engine builds plans on the producer
    while the consumer applies them against live sub-matrices.
    """

    order: np.ndarray    # stable argsort of idx
    starts: np.ndarray   # duplicate-segment boundaries in the sorted order
    heads: np.ndarray    # unique target rows, one per segment

    def apply(self, target: np.ndarray, updates: np.ndarray) -> None:
        """``target[idx] += updates`` using the precomputed sort."""
        if self.order.size == 0:
            return
        target[self.heads] += np.add.reduceat(updates[self.order], self.starts, axis=0)


def plan_scatter(idx: np.ndarray) -> ScatterPlan:
    """Build the :class:`ScatterPlan` for an index array (value-independent)."""
    if idx.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return ScatterPlan(order=empty, starts=empty, heads=empty)
    order = np.argsort(idx, kind="stable")
    sorted_idx = idx[order]
    # Segment boundaries straight off the sorted array (np.unique would
    # needlessly re-sort it).
    starts = np.concatenate(([0], np.flatnonzero(sorted_idx[1:] != sorted_idx[:-1]) + 1))
    return ScatterPlan(order=order, starts=starts, heads=sorted_idx[starts])


def _segment_scatter_add(target: np.ndarray, idx: np.ndarray,
                         updates: np.ndarray) -> None:
    """Deterministic ``target[idx] += updates`` with duplicate accumulation.

    Sorts the indices (stable) and reduces each duplicate segment with
    ``np.add.reduceat`` before a single conflict-free scatter, replacing
    ``np.add.at`` at a fraction of its cost.  The fixed summation order makes
    the result deterministic run-to-run.
    """
    plan_scatter(idx).apply(target, updates)


@dataclass(frozen=True)
class PairPlan:
    """Device-ready preparation of one pair-kernel launch.

    Everything ``train_pair`` needs that does *not* read embedding values:
    resolved local index arrays, scatter plans for the positive rounds, and
    the pre-drawn negative targets (one row per round) with their plans.
    Built by :meth:`VectorizedBackend.prepare_pair` — on the pipelined
    engine's producer thread — and consumed by passing ``plan=`` to
    :meth:`VectorizedBackend.train_pair`, which is then bit-identical to the
    unprepared call with the same generator (the plan drew the same negative
    stream the kernel would have drawn inline).
    """

    local_src: np.ndarray
    local_dst: np.ndarray
    pos_src_scatter: ScatterPlan
    pos_dst_scatter: ScatterPlan
    neg_targets: np.ndarray          # (rounds, |part_a|) pre-drawn negatives
    neg_scatters: tuple[ScatterPlan, ...]

    def nbytes(self) -> int:
        arrays = [self.local_src, self.local_dst, self.neg_targets]
        for plan in (self.pos_src_scatter, self.pos_dst_scatter, *self.neg_scatters):
            arrays += [plan.order, plan.starts, plan.heads]
        return int(sum(a.nbytes for a in arrays))


class VectorizedBackend:
    """Whole-epoch batched kernels (fused LUT, last-writer-wins scatter).

    Parameters
    ----------
    table_size, bound:
        Resolution and clip range of the fused sigmoid lookup table.
    sig:
        Optional callable overriding the LUT entirely (the parity tests pass
        the exact sigmoid here to isolate conflict-policy differences).
    """

    name = "vectorized"

    def __init__(self, *, table_size: int = 8192, bound: float = 6.0, sig=None):
        self._sig = sig if sig is not None else SigmoidTable(
            bound=bound, size=table_size, dtype=np.float32)

    # ------------------------------------------------------------------ #
    # Epoch kernels
    # ------------------------------------------------------------------ #
    def train_epoch(self, embedding: np.ndarray, sources: np.ndarray,
                    positives: np.ndarray, negatives: np.ndarray, lr: float, *,
                    kernel: str = "optimized",
                    device: SimulatedDevice | None = None,
                    warp_config: WarpConfig | None = None) -> None:
        if kernel not in EPOCH_KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; options: {', '.join(EPOCH_KERNELS)}")
        sources = np.asarray(sources, dtype=np.int64)
        if sources.size == 0:
            return
        ns = negatives.shape[1] if negatives.ndim == 2 else 0
        if kernel == "optimized":
            if np.unique(sources).shape[0] != sources.shape[0]:
                raise ValueError("sources must be unique within an epoch")
            self._epoch_optimized(embedding, sources, positives, negatives, lr, ns)
        else:
            self._epoch_naive(embedding, sources, positives, negatives, lr, ns)

        record_epoch_cost(device, kernel, sources.shape[0], ns, embedding.shape[1],
                          warp_config=warp_config)

    def _epoch_optimized(self, embedding: np.ndarray, sources: np.ndarray,
                         positives: np.ndarray, negatives: np.ndarray,
                         lr: float, ns: int) -> None:
        """Source-staged epoch as one whole-epoch chunk.

        Same structure as the reference kernel with ``chunk_size = |sources|``:
        stage every source vector once, run the positive round and ``ns``
        negative rounds against global memory, then merge the staged source
        deltas with whatever the same rows received as samples.
        """
        sig = self._sig
        original = embedding[sources]
        staged = original.copy()
        valid_pos = positives >= 0
        if np.any(valid_pos):
            samples = positives[valid_pos]
            sub = staged[valid_pos]
            sample_vecs = embedding[samples]
            scores = (1.0 - sig(np.einsum("ij,ij->i", sub, sample_vecs))) * lr
            sub += sample_vecs * scores[:, None]
            staged[valid_pos] = sub
            # Fancy assignment: duplicate samples resolve last-writer-wins.
            embedding[samples] = sample_vecs + sub * scores[:, None]
        for k in range(ns):
            samples = negatives[:, k]
            sample_vecs = embedding[samples]
            scores = (0.0 - sig(np.einsum("ij,ij->i", staged, sample_vecs))) * lr
            staged += sample_vecs * scores[:, None]
            embedding[samples] = sample_vecs + staged * scores[:, None]
        received = embedding[sources] - original
        embedding[sources] = staged + received

    def _epoch_naive(self, embedding: np.ndarray, sources: np.ndarray,
                     positives: np.ndarray, negatives: np.ndarray,
                     lr: float, ns: int) -> None:
        """Unstaged epoch: re-gather and re-scatter the source every round."""
        sig = self._sig
        valid_pos = positives >= 0
        rounds = [(sources[valid_pos], 1.0, positives[valid_pos])]
        rounds += [(sources, 0.0, negatives[:, k]) for k in range(ns)]
        for srcs, b, samples in rounds:
            if srcs.size == 0:
                continue
            src_vecs = embedding[srcs]
            sample_vecs = embedding[samples]
            scores = (b - sig(np.einsum("ij,ij->i", src_vecs, sample_vecs))) * lr
            new_src = src_vecs + sample_vecs * scores[:, None]
            embedding[srcs] = new_src
            # Re-gather: a vertex can be source and sample of the same round,
            # and the reference applies the sample delta on top of the source
            # write that just happened.
            embedding[samples] = embedding[samples] + new_src * scores[:, None]

    # ------------------------------------------------------------------ #
    # Pair kernel (large-graph engine)
    # ------------------------------------------------------------------ #
    def prepare_pair(self, part_a: np.ndarray, part_b: np.ndarray,
                     pos_src: np.ndarray, pos_dst: np.ndarray,
                     ns: int, rng: np.random.Generator, *,
                     index_a: np.ndarray | None = None,
                     index_b: np.ndarray | None = None) -> PairPlan:
        """Precompute the value-independent half of one ``train_pair`` call.

        Resolves the global→local index maps, builds the scatter plans for
        the positive rounds, and pre-draws the negative rounds from ``rng``
        — consuming it exactly as the inline kernel would (one
        ``integers(0, |part_b|, |part_a|)`` call per round), so a prepared
        launch and an unprepared launch sharing a generator produce
        bit-identical embeddings.  Reads no embedding data, which is what
        lets the pipelined engine run it on the pool-producer thread.
        """
        if pos_src.shape[0] != pos_dst.shape[0]:
            raise ValueError("pos_src and pos_dst must have equal length")
        local_src, local_dst = resolve_pair_locals(pos_src, pos_dst, part_a, part_b,
                                                   index_a, index_b)
        rounds = ns if (ns > 0 and part_a.shape[0] and part_b.shape[0]) else 0
        neg_targets = np.stack([
            rng.integers(0, part_b.shape[0], size=part_a.shape[0])
            for _ in range(rounds)
        ]) if rounds else np.zeros((0, part_a.shape[0]), dtype=np.int64)
        return PairPlan(
            local_src=local_src, local_dst=local_dst,
            pos_src_scatter=plan_scatter(local_src),
            pos_dst_scatter=plan_scatter(local_dst),
            neg_targets=neg_targets,
            neg_scatters=tuple(plan_scatter(row) for row in neg_targets),
        )

    def train_pair(self, part_a: np.ndarray, part_b: np.ndarray,
                   sub_a: np.ndarray, sub_b: np.ndarray,
                   pos_src: np.ndarray, pos_dst: np.ndarray,
                   ns: int, lr: float, rng: np.random.Generator, *,
                   device: SimulatedDevice | None = None,
                   warp_config: WarpConfig | None = None,
                   index_a: np.ndarray | None = None,
                   index_b: np.ndarray | None = None,
                   plan: PairPlan | None = None) -> None:
        if plan is None:
            plan = self.prepare_pair(part_a, part_b, pos_src, pos_dst, ns, rng,
                                     index_a=index_a, index_b=index_b)
        sig = self._sig
        local_src, local_dst = plan.local_src, plan.local_dst

        # Positive updates: scores from the pre-update vectors, conflicts
        # accumulated with the deterministic segment sum (positive pools
        # repeat every source B times — dropping those would lose training
        # signal, so last-writer-wins is wrong here).
        if local_src.size:
            src_vecs = sub_a[local_src]
            dst_vecs = sub_b[local_dst]
            scores = (1.0 - sig(np.einsum("ij,ij->i", src_vecs, dst_vecs))) * lr
            new_src = src_vecs + dst_vecs * scores[:, None]
            plan.pos_src_scatter.apply(sub_a, dst_vecs * scores[:, None])
            plan.pos_dst_scatter.apply(sub_b, new_src * scores[:, None])

        # Negative rounds: one per ns, sources are every vertex of part A
        # (unique, so the source side needs no conflict resolution at all).
        for neg_targets, neg_scatter in zip(plan.neg_targets, plan.neg_scatters):
            src_vecs = sub_a
            dst_vecs = sub_b[neg_targets]
            scores = (0.0 - sig(np.einsum("ij,ij->i", src_vecs, dst_vecs))) * lr
            new_src = src_vecs + dst_vecs * scores[:, None]
            sub_a += dst_vecs * scores[:, None]
            neg_scatter.apply(sub_b, new_src * scores[:, None])

        record_pair_cost(device, local_src.shape[0], part_a.shape[0], ns,
                         sub_a.shape[1], warp_config=warp_config)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}()"
