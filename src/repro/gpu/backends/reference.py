"""The ``"reference"`` backend — the original loop-based kernels, unchanged.

This backend is a thin adapter over :mod:`repro.gpu.kernels`: chunked source
staging, exact ``float64`` sigmoid, and ``np.add.at`` scatter-adds (the
benign-race accumulation semantics of the paper's GPU kernels).  It is the
semantic oracle the ``"vectorized"`` backend is tested against, and the right
choice when bit-stable, accumulate-on-conflict updates matter more than
throughput.
"""

from __future__ import annotations

import numpy as np

from ..device import SimulatedDevice
from ..warp import WarpConfig
from ..kernels import train_epoch_naive, train_epoch_optimized, train_pair_kernel
from .base import EPOCH_KERNELS

__all__ = ["ReferenceBackend"]


class ReferenceBackend:
    """Loop-based kernels (chunked staging, exact sigmoid, scatter-add)."""

    name = "reference"

    def train_epoch(self, embedding: np.ndarray, sources: np.ndarray,
                    positives: np.ndarray, negatives: np.ndarray, lr: float, *,
                    kernel: str = "optimized",
                    device: SimulatedDevice | None = None,
                    warp_config: WarpConfig | None = None) -> None:
        if kernel not in EPOCH_KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; options: {', '.join(EPOCH_KERNELS)}")
        if kernel == "optimized":
            train_epoch_optimized(embedding, sources, positives, negatives, lr,
                                  device=device, warp_config=warp_config)
        else:
            train_epoch_naive(embedding, sources, positives, negatives, lr, device=device)

    def train_pair(self, part_a: np.ndarray, part_b: np.ndarray,
                   sub_a: np.ndarray, sub_b: np.ndarray,
                   pos_src: np.ndarray, pos_dst: np.ndarray,
                   ns: int, lr: float, rng: np.random.Generator, *,
                   device: SimulatedDevice | None = None,
                   warp_config: WarpConfig | None = None,
                   index_a: np.ndarray | None = None,
                   index_b: np.ndarray | None = None) -> None:
        train_pair_kernel(part_a, part_b, sub_a, sub_b, pos_src, pos_dst,
                          ns, lr, rng, device=device, warp_config=warp_config,
                          index_a=index_a, index_b=index_b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}()"
