"""The :class:`KernelBackend` protocol — the contract every kernel layer obeys.

A backend bundles the two training kernels the rest of the system calls into
one swappable object:

* :meth:`KernelBackend.train_epoch` — one synchronised epoch of the in-memory
  trainer (Algorithm 3's body), in either the ``"optimized"`` (staged) or
  ``"naive"`` (per-sample global traffic) variant.
* :meth:`KernelBackend.train_pair` — one (V^a, V^b) sub-matrix pair of the
  large-graph engine (Section 3.3).

Both methods mutate their embedding arrays in place and must honour the
epoch-synchronisation semantics of the paper: no sample round may observe
source vectors from a later round.  Backends may differ in *conflict
resolution* for concurrently-sampled vertices (scatter-add accumulation vs
deterministic last-writer-wins) and in sigmoid evaluation (exact vs lookup
table); the kernel-parity test suite pins how far the results may diverge
(see ``tests/gpu/test_kernel_backends.py`` for the documented tolerances).

Backends must also keep the simulated-device cost accounting identical — the
:class:`~repro.gpu.device.SimulatedDevice` models the *paper's* GPU, not the
host, so swapping backends changes wall-clock, never modelled work.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..device import SimulatedDevice
from ..warp import WarpConfig

__all__ = ["KernelBackend", "EPOCH_KERNELS"]

#: The two epoch-kernel variants of Figure 4 every backend must provide.
EPOCH_KERNELS = ("optimized", "naive")


@runtime_checkable
class KernelBackend(Protocol):
    """Uniform interface over the loop-based and batched kernel layers."""

    #: Registry name ("reference", "vectorized", …).
    name: str

    def train_epoch(self, embedding: np.ndarray, sources: np.ndarray,
                    positives: np.ndarray, negatives: np.ndarray, lr: float, *,
                    kernel: str = "optimized",
                    device: SimulatedDevice | None = None,
                    warp_config: WarpConfig | None = None) -> None:
        """Run one synchronised epoch over ``embedding`` in place.

        ``kernel`` selects the ``"optimized"`` (source-staged) or ``"naive"``
        variant; ``sources`` must be unique for the optimized variant.
        """
        ...

    def train_pair(self, part_a: np.ndarray, part_b: np.ndarray,
                   sub_a: np.ndarray, sub_b: np.ndarray,
                   pos_src: np.ndarray, pos_dst: np.ndarray,
                   ns: int, lr: float, rng: np.random.Generator, *,
                   device: SimulatedDevice | None = None,
                   warp_config: WarpConfig | None = None,
                   index_a: np.ndarray | None = None,
                   index_b: np.ndarray | None = None) -> None:
        """Process one sub-matrix pair of the large-graph engine in place.

        ``index_a``/``index_b`` are optional pre-built global→local lookup
        arrays (one partition-wide array may serve as both); backends fall
        back to building them per call when omitted.
        """
        ...
