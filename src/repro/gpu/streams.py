"""Stream / transfer-overlap model.

Section 3.3.2 keeps ``P_GPU = 3`` sub-matrices resident so that while one
kernel runs on a pair, the next sub-matrix can be copied in, hiding the PCIe
latency.  Real overlap needs real hardware; here we model it with a simple
event timeline: copies and kernels are given simulated durations (from the
device cost model) and a :class:`StreamTimeline` computes the makespan with
and without overlap, which the ablation/analysis benches report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["StreamEvent", "StreamTimeline"]


@dataclass(frozen=True)
class StreamEvent:
    """One operation on the simulated timeline."""

    kind: str          # "h2d", "d2h", or "kernel"
    duration: float    # simulated seconds
    label: str = ""


@dataclass
class StreamTimeline:
    """Accumulates events and computes serial vs overlapped makespans.

    The overlap model is the one the paper exploits: copy engines and compute
    engines are independent, so a copy can proceed while a kernel runs, but
    two copies in the same direction serialise, and a kernel that *depends*
    on a copy (marked via ``barrier=True``) must wait for all pending copies.
    """

    events: list[StreamEvent] = field(default_factory=list)
    _copy_ready_at: float = 0.0
    _kernel_ready_at: float = 0.0
    overlapped_makespan: float = 0.0

    def record_copy(self, duration: float, *, label: str = "", direction: str = "h2d") -> None:
        self.events.append(StreamEvent(kind=direction, duration=duration, label=label))
        start = self._copy_ready_at
        self._copy_ready_at = start + duration
        self.overlapped_makespan = max(self.overlapped_makespan, self._copy_ready_at)

    def record_kernel(self, duration: float, *, label: str = "",
                      wait_for_copies: bool = False) -> None:
        self.events.append(StreamEvent(kind="kernel", duration=duration, label=label))
        start = self._kernel_ready_at
        if wait_for_copies:
            start = max(start, self._copy_ready_at)
        self._kernel_ready_at = start + duration
        self.overlapped_makespan = max(self.overlapped_makespan, self._kernel_ready_at)

    @property
    def serial_makespan(self) -> float:
        """Total time if nothing overlapped (the P_GPU = 2 worst case)."""
        return sum(e.duration for e in self.events)

    @property
    def overlap_savings(self) -> float:
        """Fraction of time hidden by copy/compute overlap."""
        serial = self.serial_makespan
        if serial <= 0:
            return 0.0
        return 1.0 - self.overlapped_makespan / serial

    def reset(self) -> None:
        self.events.clear()
        self._copy_ready_at = 0.0
        self._kernel_ready_at = 0.0
        self.overlapped_makespan = 0.0
