"""Warp-level execution model.

Section 3.1 assigns one *source vertex per warp*: the 32 threads of a warp
cooperate on the d-dimensional vector of that source, staging it in shared
memory and walking the positive + negative samples one after another.
Section 3.1.1 adds the small-dimension mode: when ``d <= 16`` a warp hosts
2 or 4 source vertices (each handled by the smallest multiple of 8 threads
that covers ``d``), otherwise ``32 - d`` lanes idle.

The NumPy kernels do not need warps to be correct, but the *utilisation*
model (how many lanes do useful work) is what Table 8 measures, so we model
it explicitly here and let the kernels ask for the efficiency factor and the
source-vertex grouping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WarpConfig", "warp_lane_efficiency", "vertices_per_warp", "WarpSchedule"]


def vertices_per_warp(dim: int, *, warp_size: int = 32, small_dim_mode: bool = True) -> int:
    """How many source vertices share one warp.

    Without the small-dimension optimisation a warp always hosts exactly one
    source.  With it, the per-source thread group is the smallest multiple of
    8 that is >= d (8 or 16), so a warp hosts 4 sources for d <= 8 and 2
    sources for 8 < d <= 16.
    """
    if dim <= 0:
        raise ValueError("dim must be positive")
    if not small_dim_mode or dim > 16:
        return 1
    group = 8 if dim <= 8 else 16
    return max(1, warp_size // group)


def warp_lane_efficiency(dim: int, *, warp_size: int = 32, small_dim_mode: bool = True) -> float:
    """Fraction of warp lanes doing useful work for a given dimension.

    This feeds the simulated-compute cost model and reproduces the shape of
    Table 8: without SM, d=8/16/32 all cost the same (the idle lanes waste
    the difference); with SM the cost scales with d.
    """
    if dim >= warp_size:
        return 1.0
    if not small_dim_mode:
        return dim / warp_size
    group = 8 if dim <= 8 else (16 if dim <= 16 else warp_size)
    per_warp = warp_size // group
    busy_lanes = per_warp * min(dim, group)
    return busy_lanes / warp_size


@dataclass(frozen=True)
class WarpConfig:
    """Execution geometry for an embedding kernel launch."""

    dim: int
    warp_size: int = 32
    small_dim_mode: bool = True

    @property
    def sources_per_warp(self) -> int:
        return vertices_per_warp(self.dim, warp_size=self.warp_size,
                                 small_dim_mode=self.small_dim_mode)

    @property
    def lane_efficiency(self) -> float:
        return warp_lane_efficiency(self.dim, warp_size=self.warp_size,
                                    small_dim_mode=self.small_dim_mode)

    def num_warps(self, num_sources: int) -> int:
        """Warps needed to cover ``num_sources`` source vertices."""
        per = self.sources_per_warp
        return int(np.ceil(num_sources / per)) if num_sources else 0


@dataclass
class WarpSchedule:
    """Assignment of source vertices to warps for one epoch.

    The schedule is what guarantees the paper's synchronisation property: a
    vertex is the *source* of at most one concurrent update (it has exactly
    one warp), while it may still be sampled concurrently by other warps —
    the benign race the paper accepts.
    """

    config: WarpConfig
    warp_of_source: np.ndarray  # warp id per source vertex
    sources_by_warp: list[np.ndarray]

    @classmethod
    def build(cls, sources: np.ndarray, config: WarpConfig) -> "WarpSchedule":
        sources = np.asarray(sources, dtype=np.int64)
        per = config.sources_per_warp
        num_warps = config.num_warps(sources.shape[0])
        warp_ids = np.arange(sources.shape[0]) // per
        groups = [sources[warp_ids == w] for w in range(num_warps)]
        return cls(config=config, warp_of_source=warp_ids, sources_by_warp=groups)

    def validate_unique_sources(self) -> bool:
        """True iff no source vertex appears in two warps (paper's invariant)."""
        all_sources = np.concatenate(self.sources_by_warp) if self.sources_by_warp else np.zeros(0)
        return np.unique(all_sources).shape[0] == all_sources.shape[0]
