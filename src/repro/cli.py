"""Command-line interface for the GOSH reproduction.

Eleven subcommands cover the day-to-day workflow of the original tool plus
the serving side:

* ``repro-gosh embed``    — embed an edge-list file (or a named synthetic
  twin) with any registered tool and save the matrix as ``.npy`` (and, with
  ``--save``, as a versioned entry in the embedding store).
* ``repro-gosh coarsen``  — run MultiEdgeCollapse and print the per-level
  statistics (a Table 4/5-style report).
* ``repro-gosh evaluate`` — run the full link-prediction pipeline around a
  chosen tool and print the AUCROC.
* ``repro-gosh export``   — list / export / garbage-collect stored embedding
  versions (the :mod:`repro.store` surface).
* ``repro-gosh query``    — k-NN similarity queries over a stored embedding,
  embedding-and-saving first when the store has no entry yet (the
  :mod:`repro.query` surface via ``EmbeddingService.query``).
* ``repro-gosh serve``    — run the resident NDJSON query server over a
  graph (admission control, request timestamping, microbatched serving;
  the :mod:`repro.serve` surface); ``--http-port`` adds the stdlib
  HTTP/1.1 front (``POST /query`` / ``GET /stats`` / ``GET /metrics`` /
  ``GET /ping``).
* ``repro-gosh route``    — run a shard router over N spawned in-process
  shard servers (``--shards``) or externally started ones
  (``--backend-address``), merging per-shard top-k bit-exactly
  (the :mod:`repro.serve.router` surface).
* ``repro-gosh stats``    — poll a running server's stats verb and print the
  snapshot as pretty JSON or (``--metrics``) Prometheus text (the
  :mod:`repro.obs` surface).
* ``repro-gosh load``     — drive one or more running servers with N
  concurrent closed- or open-loop clients and report merged p50/p95/p99
  latency, queries/s, and rejection rate with a per-address breakdown
  (the :mod:`repro.loadgen` surface).
* ``repro-gosh tools``    — list the registered embedding tools.
* ``repro-gosh datasets`` — list the registered synthetic twins (Table 2).

The CLI is intentionally thin: every subcommand is a short wrapper over the
public library API — tools are resolved exclusively through the
:mod:`repro.api` registry — so that scripts remain the primary interface.
"""

from __future__ import annotations

import argparse
import contextlib
import signal
import sys
import threading
from pathlib import Path

import numpy as np

from .api import EmbeddingService, UnknownToolError, get_tool, tool_descriptions
from .coarsening import multi_edge_collapse, parallel_multi_edge_collapse, summarize
from .eval import run_link_prediction
from .graph import CSRGraph, read_edge_list
from .gpu import DeviceSpec, SimulatedDevice
from .harness import dataset_names, load_dataset, paper_table2_rows, print_table
from .query import METRICS, available_query_backends
from .store import EmbeddingStore, StoreError

__all__ = ["main", "build_parser"]

#: Default root of the on-disk embedding store used by --save/export/query.
DEFAULT_STORE_DIR = "embeddings"

#: Exit code for a run killed by a deterministic injected fault (EX_SOFTWARE).
EXIT_INJECTED_FAULT = 70


@contextlib.contextmanager
def _graceful_stop():
    """Install SIGTERM/SIGINT handlers that request a cooperative stop.

    Yields ``(stop_event, received_signals)``: handlers set the event and
    record the signal number instead of killing the process, so the command
    can drain (serve/route) or write a final checkpoint (embed) and exit
    with ``128 + signum``.  Handlers are only installable from the main
    thread; elsewhere (tests driving ``main()`` from a worker) the event
    still works, signals just keep their default behaviour.  Previous
    handlers are restored on exit.
    """
    stop = threading.Event()
    received: list[int] = []

    def handler(signum: int, frame) -> None:
        received.append(signum)
        stop.set()

    installed: list[tuple[int, object]] = []
    if threading.current_thread() is threading.main_thread():
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((sig, signal.signal(sig, handler)))
            except (ValueError, OSError):  # pragma: no cover - exotic platforms
                pass
    try:
        yield stop, received
    finally:
        for sig, previous in installed:
            signal.signal(sig, previous)


def _load_graph(source: str, *, seed: int = 0) -> CSRGraph:
    """Load a graph from an edge-list path or the twin registry."""
    if source in dataset_names():
        return load_dataset(source, seed=seed)
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"{source!r} is neither a registered dataset ({', '.join(dataset_names())}) "
            "nor an existing edge-list file"
        )
    return read_edge_list(path)


def _make_device(memory_mb: float | None) -> SimulatedDevice:
    if memory_mb is None:
        return SimulatedDevice()
    return SimulatedDevice(spec=DeviceSpec(name=f"{memory_mb}MB",
                                           memory_bytes=int(memory_mb * 1024 * 1024)))


def _resolve_tool(args: argparse.Namespace):
    """Build the requested tool from the registry.

    ``--tool`` names any registered tool; the legacy ``--config`` flag keeps
    working by mapping Table 3 configuration names onto the GOSH variants.
    """
    name = args.tool
    if name is None:
        name = f"gosh-{args.config.strip().lower()}"
    device = _make_device(args.device_memory_mb)
    try:
        return get_tool(name, dim=args.dim, epoch_scale=args.epoch_scale,
                        device=device, seed=args.seed,
                        kernel_backend=args.kernel_backend,
                        sampler_backend=args.sampler_backend,
                        execution_mode=args.execution_mode)
    except UnknownToolError as exc:
        raise SystemExit(str(exc)) from exc
    except ValueError as exc:
        # e.g. an unregistered --kernel-backend name
        raise SystemExit(str(exc)) from exc


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def cmd_embed(args: argparse.Namespace) -> int:
    from .embedding.checkpoint import TrainingInterrupted
    from .faults import FAULTS, InjectedFault, UnknownFaultPointError, parse_fault_spec

    graph = _load_graph(args.graph, seed=args.seed)
    tool = _resolve_tool(args)
    if args.trace is not None:
        from .obs import trace
        trace.enable()
    if args.inject_fault is not None:
        try:
            point, at = parse_fault_spec(args.inject_fault)
        except (UnknownFaultPointError, ValueError) as exc:
            raise SystemExit(str(exc)) from exc
        FAULTS.arm(point, at=at)
    checkpointing = args.resume or args.checkpoint_every is not None
    with _graceful_stop() as (stop, received):
        if checkpointing:
            if not hasattr(tool, "configure_checkpointing"):
                raise SystemExit(
                    f"tool {tool.name!r} does not support checkpointing "
                    "(GOSH variants only)")
            tool.configure_checkpointing(
                EmbeddingStore(args.store_dir),
                every_rotations=args.checkpoint_every or None,
                keep=args.checkpoint_keep, auto_resume=args.resume,
                stop_event=stop)
        try:
            result = tool.embed(graph)
        except TrainingInterrupted as exc:
            print(f"interrupted: {exc}")
            print(f"resume with: repro-gosh embed {args.graph} --resume "
                  f"--store-dir {args.store_dir} (same tool/dim/seed flags)")
            return 128 + received[0] if received else 1
        except InjectedFault as exc:
            print(f"injected fault: {exc}")
            if checkpointing:
                print(f"resume with: repro-gosh embed {args.graph} --resume "
                      f"--store-dir {args.store_dir} (same tool/dim/seed flags)")
            return EXIT_INJECTED_FAULT
        finally:
            FAULTS.disarm()
            if args.trace is not None:
                from .obs import trace
                events = trace.export(args.trace)
                trace.disable()
                print(f"trace: {events} event(s) written to {args.trace} "
                      "(open in Perfetto / chrome://tracing)")
    np.save(args.output, result.embedding)
    if args.save:
        store = EmbeddingStore(args.store_dir)
        entry = store.save(result, graph=graph)
        print(f"stored: {entry.path} (version v{entry.version:04d}, "
              f"config {entry.config_hash})")
    if checkpointing:
        # The run landed durably (at least as the --output matrix); its
        # checkpoint lineage is spent.
        swept = tool.sweep_checkpoints(graph.fingerprint())
        if swept:
            print(f"swept {swept} spent checkpoint(s)")
    print(f"graph: {graph}")
    print(f"tool: {result.tool} — {tool.describe()}")
    resumed = result.stats.get("resumed_from")
    if resumed:
        print(f"resumed from checkpoint v{resumed['version']:04d} "
              f"(level {resumed['level']}, rotation {resumed['rotation']})")
    if result.stats.get("checkpoints_saved"):
        print(f"checkpoints saved: {result.stats['checkpoints_saved']}")
    for stage, seconds in result.timings.items():
        print(f"{stage}: {seconds:.3f}s")
    if "level_sizes" in result.stats:
        print(f"levels: {result.stats['level_sizes']}")
    if "epochs_per_level" in result.stats:
        print(f"epochs per level: {result.stats['epochs_per_level']}")
    large = result.stats.get("large_graph")
    if large:
        print("partitioned engine: "
              f"levels={large['levels']}, K={large['parts_per_level']}, "
              f"rotations={large['rotations']}, kernels={large['kernels']}, "
              f"switches={large['submatrix_switches']} "
              f"({large['seconds']:.3f}s, {large['execution_mode']} execution, "
              f"pool stall {large['pool_stall_s']:.3f}s)")
        if large.get("oom_retries"):
            print(f"degraded {large['oom_retries']} time(s) under device OOM: "
                  + "; ".join(
                      f"P_GPU={d['resident_submatrices']}, "
                      f"S_GPU={d['resident_sample_pools']}"
                      for d in large.get("degradations", [])))
    print(f"embedding saved to {args.output} (shape {result.embedding.shape})")
    return 0


def cmd_coarsen(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, seed=args.seed)
    coarsener = parallel_multi_edge_collapse if args.parallel else multi_edge_collapse
    result = coarsener(graph, threshold=args.threshold)
    report = summarize(result)
    rows = [{
        "level": i,
        "|V_i|": result.graphs[i].num_vertices,
        "|E_i|": result.graphs[i].num_undirected_edges,
        "time (s)": round(result.level_times[i - 1], 4) if i > 0 else "-",
    } for i in range(result.num_levels)]
    print_table(rows, title=f"MultiEdgeCollapse on {graph.name} "
                            f"({'parallel' if args.parallel else 'sequential'})")
    print(f"levels: {report.num_levels}, last level: {report.last_level_size}, "
          f"mean shrink rate: {report.mean_shrink_rate:.3f}, total: {report.total_time:.3f}s")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, seed=args.seed)
    tool = _resolve_tool(args)
    result = run_link_prediction(graph, tool, classifier=args.classifier, seed=args.seed)
    print(f"graph: {graph}")
    print(f"tool: {tool.name} — {tool.describe()}")
    print(f"embedding time: {result.embed_seconds:.3f}s")
    print(f"link-prediction AUCROC: {100 * result.auc:.2f}%")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    store = EmbeddingStore(args.store_dir)
    fingerprint = None
    if args.graph is not None:
        fingerprint = _load_graph(args.graph, seed=args.seed).fingerprint()
    if args.gc_keep is not None:
        # gc honours the command's scope: a graph/--tool on the command line
        # must never collect other graphs' or tools' lineages.
        removed = store.gc(args.gc_keep, fingerprint=fingerprint,
                           tool=args.tool if args.tool else None)
        for entry in removed:
            print(f"removed: {entry.path}")
        scope = "matching" if (fingerprint or args.tool) else "every"
        print(f"gc: kept newest {args.gc_keep} version(s) of {scope} lineage, "
              f"removed {len(removed)} entries")
    if args.list or args.gc_keep is not None:
        entries = store.list(fingerprint, args.tool if args.tool else None)
        if entries:
            print_table([e.as_row() for e in entries],
                        title=f"Embedding store at {store.root}")
        else:
            print(f"store at {store.root}: no matching entries")
        return 0
    if args.tool is None:
        raise SystemExit("export needs --tool (or --list to browse the store)")
    if fingerprint is None:
        raise SystemExit("export needs a graph to export (or --list to browse the store)")
    try:
        result = store.load(fingerprint, args.tool, version=args.version, mmap=True)
    except StoreError as exc:
        raise SystemExit(str(exc)) from exc
    np.save(args.output, np.asarray(result.embedding))
    meta = result.metadata["store"]
    print(f"exported {result.tool} v{meta['version']:04d} "
          f"(shape {result.embedding.shape[0]}x{result.embedding.shape[1]}) "
          f"to {args.output}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    from .query import UnknownQueryBackendError, get_query_backend

    if args.query_backend is not None:
        try:
            get_query_backend(args.query_backend)
        except UnknownQueryBackendError as exc:
            raise SystemExit(str(exc)) from exc
    if args.top_k < 1:
        raise SystemExit("--top-k must be >= 1")
    graph = _load_graph(args.graph, seed=args.seed)
    tool = _resolve_tool(args)
    try:
        # The service validates the query knobs eagerly — fail here, before
        # an embed-if-missing spends minutes training.
        service = EmbeddingService(
            dim=args.dim, epoch_scale=args.epoch_scale, seed=args.seed,
            store=args.store_dir, metric=args.metric,
            query_backend=args.query_backend, query_block_rows=args.block_rows)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    # The tool is resolved here (to honour --kernel-backend etc.), so wire it
    # into the service's hierarchy cache ourselves — otherwise the cache
    # counters printed below could never move on the embed-if-missing path.
    if hasattr(tool, "hierarchy_cache") and tool.hierarchy_cache is None:
        tool.hierarchy_cache = service.hierarchy_cache
    if args.query_file is not None:
        # One QueryRequest per file entry through the ONE shared service —
        # the warm path the resident server relies on: the first request
        # resolves (or embeds) the stored entry and builds the engine, every
        # later entry hits the engine cache, and the whole file still lands
        # in microbatched backend calls.
        from .api import QueryRequest

        vectors = np.atleast_2d(np.load(args.query_file))
        labels = [f"q{i}" for i in range(vectors.shape[0])]
        responses = service.query_batch([
            QueryRequest(tool, graph, vectors=vectors[i], k=args.top_k)
            for i in range(vectors.shape[0])])
    else:
        vertices = args.vertex if args.vertex else [0]
        labels = list(vertices)
        responses = [service.query(tool, graph, vertices=vertices, k=args.top_k)]
    first = responses[0]
    print(f"graph: {graph}")
    print(f"tool: {tool.name} — {tool.describe()}")
    entry = first.entry
    source = ("served from store" if first.store_hit
              else "embedded and stored")
    print(f"{source}: v{entry.version:04d} (config {entry.config_hash}) "
          f"under {entry.path.parent.name}")
    if len(responses) == 1:
        rows = first.result.as_rows(labels)
    else:
        rows = [row for label, response in zip(labels, responses)
                for row in response.result.as_rows([label])]
    print_table(rows, title=f"top-{args.top_k} by {first.result.metric} "
                            f"({first.result.backend} backend)")
    _print_serving_stats(service)
    return 0


def _print_serving_stats(service: EmbeddingService) -> None:
    """One observability block per serving command (cache/store/query)."""
    stats = service.stats()
    cache = stats["hierarchy_cache"]
    print(f"hierarchy cache: {cache['entries']} entries, "
          f"{cache['hits']} hits, {cache['misses']} misses")
    store = stats.get("store")
    if store:
        print(f"store: {store['entries']} entries in {store['lineages']} lineage(s), "
              f"{store['bytes']} bytes ({store['saves']} saves, {store['loads']} loads)")
    query = stats.get("query")
    if query:
        print(f"query: {stats['queries_served']} queries in "
              f"{stats['microbatches']} microbatch(es), "
              f"{query['rows_scored']} rows scored in {query['seconds']}s")
    engine_cache = stats.get("engine_cache")
    if engine_cache and (engine_cache["hits"] or engine_cache["misses"]):
        print(f"engine cache: {engine_cache['entries']} engine(s), "
              f"{engine_cache['hits']} hits, {engine_cache['misses']} misses, "
              f"{engine_cache['evictions']} evictions")


def _export_trace(trace_dir: "str | None", name: str) -> None:
    """Write the collected trace (if tracing) to ``trace_dir/<name>.trace.json``."""
    if trace_dir is None:
        return
    from .obs import trace

    path = Path(trace_dir) / f"{name}.trace.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    events = trace.export(str(path))
    trace.disable()
    print(f"trace: {events} event(s) written to {path} "
          "(open in Perfetto / chrome://tracing)")


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import QueryServer, ServerThread

    name = args.tool if args.tool else f"gosh-{args.config.strip().lower()}"
    graph = _load_graph(args.graph, seed=args.seed)
    try:
        service = EmbeddingService(
            dim=args.dim, epoch_scale=args.epoch_scale, seed=args.seed,
            store=args.store_dir, metric=args.metric,
            query_backend=args.query_backend, query_block_rows=args.block_rows)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    if not args.no_warm:
        # The whole point of a resident server: pay graph load + embedding
        # (or store resolution) once, before the first client connects.
        try:
            entry, hit = service.ensure_stored(name, graph)
        except (UnknownToolError, StoreError) as exc:
            raise SystemExit(str(exc)) from exc
        print(f"warm: {'served from store' if hit else 'embedded and stored'} "
              f"v{entry.version:04d} (config {entry.config_hash})")
    try:
        server = QueryServer(
            service, {args.graph: graph}, default_graph=args.graph,
            default_tool=name, host=args.host, port=args.port,
            socket_path=args.socket, max_inflight=args.max_inflight,
            queue_depth=args.queue_depth, max_batch=args.max_batch,
            max_inflight_per_tool=args.max_inflight_per_tool)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    handle = ServerThread(server, http_port=args.http_port,
                          http_host=args.host)
    if args.trace_dir is not None:
        from .obs import trace
        trace.enable()
    address = handle.start()
    print(f"serving graph {args.graph!r} with tool {name!r} on {address} "
          f"(max_inflight={args.max_inflight}, queue_depth={args.queue_depth}, "
          f"max_batch={args.max_batch}); Ctrl-C/SIGTERM drains and exits")
    if handle.http_address is not None:
        print(f"HTTP front on http://{handle.http_address} "
              f"(POST /query, GET /stats, GET /metrics, GET /ping)")
    with _graceful_stop() as (stop, received):
        try:
            stop.wait(args.max_seconds)
        except KeyboardInterrupt:  # handler not installed (non-main thread)
            pass
    if received:
        print(f"\nsignal {received[0]}: draining in-flight requests ...")
    else:
        print("\ndraining in-flight requests ...")
    rc = 0
    try:
        handle.stop()
    except TimeoutError as exc:
        print(f"forced shutdown: {exc}")
        rc = 1
    _export_trace(args.trace_dir, "serve")
    if rc:
        return rc
    print(f"served {server.queries_answered} queries in {server.microbatches} "
          f"microbatch(es); {server.rejected_overload} overload rejection(s), "
          f"{server.query_errors} error(s)")
    _print_serving_stats(service)
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    from .serve import ShardRouter

    if bool(args.shards) == bool(args.backend_address):
        raise SystemExit("pass exactly one of --shards N or --backend-address "
                         "(repeatable)")
    name = args.tool if args.tool else f"gosh-{args.config.strip().lower()}"
    graph = _load_graph(args.graph, seed=args.seed)
    graphs = {args.graph: graph}
    router_kwargs = dict(
        default_graph=args.graph, default_tool=name, host=args.host,
        port=args.port, max_inflight=args.max_inflight,
        queue_depth=args.queue_depth, max_batch=args.max_batch,
        max_inflight_per_tool=args.max_inflight_per_tool,
        replicas=args.replicas, shard_timeout_s=args.shard_timeout,
        probe_interval_s=args.probe_interval,
        probe_backoff_max_s=args.probe_backoff_max,
        http_port=args.http_port, http_host=args.host)
    try:
        if args.shards:
            # Every spawned shard gets its own EmbeddingService over the
            # same store directory: independent serving locks, so shard
            # fan-outs genuinely run in parallel; a shared page cache, so
            # the memory-mapped matrix is still loaded once.
            def shard_service() -> EmbeddingService:
                return EmbeddingService(
                    dim=args.dim, epoch_scale=args.epoch_scale, seed=args.seed,
                    store=args.store_dir, metric=args.metric,
                    query_backend=args.query_backend,
                    query_block_rows=args.block_rows)

            # Warm once before spawning: the first service embeds-if-missing
            # and stores; every shard then serves the same version.
            entry, hit = shard_service().ensure_stored(name, graph)
            print(f"warm: {'served from store' if hit else 'embedded and stored'} "
                  f"v{entry.version:04d} (config {entry.config_hash})")
            router = ShardRouter.spawn(shard_service, graphs,
                                       shard_count=args.shards,
                                       **router_kwargs)
            print(f"spawned {args.shards} shard range(s) x {args.replicas} "
                  f"replica(s): " + ", ".join(router.backend.addresses))
        else:
            router = ShardRouter(graphs, args.backend_address, **router_kwargs)
            print(f"routing over {len(args.backend_address)} external shard(s): "
                  + ", ".join(args.backend_address))
    except (ValueError, UnknownToolError, StoreError, ConnectionError,
            OSError) as exc:
        raise SystemExit(str(exc)) from exc
    if args.trace_dir is not None:
        from .obs import trace
        trace.enable()
    address = router.start()
    ranges = ", ".join(f"[{lo},{hi})" for lo, hi
                       in router.backend._ranges[args.graph])
    print(f"router for graph {args.graph!r} on {address} "
          f"(vertex ranges: {ranges}); Ctrl-C/SIGTERM drains and exits")
    if router.http_address is not None:
        print(f"HTTP front on http://{router.http_address} "
              f"(POST /query, GET /stats, GET /metrics, GET /ping)")
    with _graceful_stop() as (stop, received):
        try:
            stop.wait(args.max_seconds)
        except KeyboardInterrupt:  # handler not installed (non-main thread)
            pass
    if received:
        print(f"\nsignal {received[0]}: draining in-flight requests ...")
    else:
        print("\ndraining in-flight requests ...")
    rc = 0
    try:
        router.stop()
    except TimeoutError as exc:
        print(f"forced shutdown: {exc}")
        rc = 1
    _export_trace(args.trace_dir, "route")
    if rc:
        return rc
    server = router.server
    backend = router.backend
    print(f"routed {server.queries_answered} queries in {server.microbatches} "
          f"microbatch(es); {backend.shard_queries} shard queries, "
          f"{backend.shard_errors} shard error(s), "
          f"{sum(g.failovers for g in backend.groups)} failover(s), "
          f"{sum(l.health.readmissions for g in backend.groups for l in g.links)} "
          f"readmission(s), {server.rejected_overload} overload rejection(s)")
    return 0


def cmd_load(args: argparse.Namespace) -> int:
    import json

    from .loadgen import LoadConfig, LoadGenerator

    try:
        config = LoadConfig(
            address=args.address, clients=args.clients, mode=args.mode,
            duration_s=args.duration, requests_per_client=args.requests_per_client,
            rate_per_client=args.rate, k=args.top_k,
            num_vertices=args.num_vertices, tool=args.tool,
            graph=args.graph_name, seed=args.seed, timeout_s=args.timeout)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    try:
        report = LoadGenerator(config).run()
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"cannot drive {', '.join(config.address)}: {exc}") from exc
    for line in report.summary_lines():
        print(line)
    if args.json is not None:
        payload = report.as_json()
        Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True))
        print(f"report written to {args.json}")
    # A run that never got an answer is a failed measurement, not a report.
    return 0 if report.answered > 0 else 1


def cmd_stats(args: argparse.Namespace) -> int:
    import json
    import time

    from .obs.export import render_stats_metrics
    from .serve import ServeClient

    if args.count < 1:
        raise SystemExit("--count must be >= 1")
    if args.interval < 0:
        raise SystemExit("--interval must be >= 0")
    for i in range(args.count):
        if i:
            time.sleep(args.interval)
        try:
            with ServeClient(args.address, timeout_s=args.timeout) as client:
                if args.metrics:
                    try:
                        text = client.metrics()
                    except ValueError:
                        # A server predating the metrics verb: render its
                        # stats snapshot locally with the same adapter.
                        text = render_stats_metrics(client.stats())
                else:
                    text = json.dumps(client.stats(), indent=2,
                                      sort_keys=True) + "\n"
        except (ConnectionError, OSError) as exc:
            raise SystemExit(f"cannot reach {args.address}: {exc}") from exc
        # Print outside the except scope: a closed stdout pipe (`| head`)
        # is not a server failure — it just ends the poll loop.
        try:
            print(text, end="", flush=True)
        except BrokenPipeError:
            return 0
    return 0


def cmd_tools(args: argparse.Namespace) -> int:
    rows = tool_descriptions(dim=args.dim, epoch_scale=args.epoch_scale)
    print_table(rows, title="Registered embedding tools (repro.api registry)")
    print(f"query backends: {', '.join(available_query_backends())} "
          f"(metrics: {', '.join(METRICS)})")
    if args.store_dir is not None:
        store = EmbeddingStore(args.store_dir)
        stats = store.stats()
        print(f"store at {stats['root']}: {stats['entries']} entries in "
              f"{stats['lineages']} lineage(s), {stats['bytes']} bytes")
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = paper_table2_rows()
    if args.scale:
        rows = [r for r in rows if r["scale"] == args.scale]
    print_table(rows, title="Registered dataset twins (paper Table 2)")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gosh",
        description="GOSH reproduction: multilevel graph embedding on small (simulated) hardware",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", help="edge-list file or registered dataset name")
        p.add_argument("--seed", type=int, default=0)

    def add_tool_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tool", default=None,
                       help="registered tool name (see `repro-gosh tools`); "
                            "overrides --config")
        p.add_argument("--config", default="normal",
                       help="GOSH configuration: fast | normal | slow | no-coarsening "
                            "(shorthand for --tool gosh-<config>)")
        p.add_argument("--device-memory-mb", type=float, default=None,
                       help="simulated device memory (default: Titan X, 12 GB)")
        p.add_argument("--kernel-backend", default=None, metavar="NAME",
                       help="kernel backend for the GOSH update kernels: "
                            "vectorized (whole-epoch batched ops, default) | "
                            "reference (loop-based oracle); third-party backends "
                            "registered via repro.gpu.register_backend are "
                            "accepted by name")
        p.add_argument("--sampler-backend", default=None, metavar="NAME",
                       help="host-side sampler producing the large-graph "
                            "engine's positive pools: vectorized (whole-part "
                            "batched, default) | reference (per-vertex loop "
                            "oracle) | degree_biased (GraphVite-style deg^0.75 "
                            "hub weighting); third-party backends registered "
                            "via repro.graph.register_sampler_backend are "
                            "accepted by name")
        p.add_argument("--execution-mode", default=None, metavar="MODE",
                       help="large-graph pool production scheduling: pipelined "
                            "(background producer thread behind a bounded "
                            "S_GPU queue, default) | sequential "
                            "(single-threaded oracle); results are "
                            "bit-identical either way")

    def add_store_option(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store-dir", default=DEFAULT_STORE_DIR, metavar="DIR",
                       help="root of the versioned embedding store "
                            f"(default: ./{DEFAULT_STORE_DIR})")

    p_embed = sub.add_parser("embed", help="embed a graph and save the matrix as .npy")
    add_common(p_embed)
    p_embed.add_argument("--output", "-o", default="embedding.npy")
    add_tool_options(p_embed)
    p_embed.add_argument("--dim", type=int, default=128)
    p_embed.add_argument("--epoch-scale", type=float, default=1.0)
    p_embed.add_argument("--save", action="store_true",
                         help="also save the result as a new version in the "
                              "embedding store (see --store-dir)")
    p_embed.add_argument("--checkpoint-every", type=int, default=None,
                         metavar="N",
                         help="crash safety: checkpoint the run into the store "
                              "every N rotations of a partitioned level (0: at "
                              "level boundaries only); SIGTERM/Ctrl-C then "
                              "writes a final checkpoint and exits 128+signum")
    p_embed.add_argument("--checkpoint-keep", type=int, default=2, metavar="N",
                         help="newest checkpoint versions retained per run")
    p_embed.add_argument("--resume", action="store_true",
                         help="resume from the newest compatible checkpoint in "
                              "the store (same graph + configuration); "
                              "bit-identical to an uninterrupted run")
    p_embed.add_argument("--trace", default=None, metavar="OUT.json",
                         help="record a Chrome-trace-event profile of the run "
                              "(coarsen/level/rotation/kernel/pool/checkpoint "
                              "spans) and write it here — open in Perfetto")
    p_embed.add_argument("--inject-fault", default=None, metavar="POINT[:N]",
                         help="deterministic fault injection for recovery "
                              "drills: crash at the N-th crossing of a named "
                              "point (level-boundary, rotation-boundary, "
                              "pool-producer, store-commit, device-oom); "
                              f"exits {EXIT_INJECTED_FAULT}")
    add_store_option(p_embed)
    p_embed.set_defaults(func=cmd_embed)

    p_coarsen = sub.add_parser("coarsen", help="run MultiEdgeCollapse and report per-level stats")
    add_common(p_coarsen)
    p_coarsen.add_argument("--threshold", type=int, default=100)
    p_coarsen.add_argument("--parallel", action="store_true")
    p_coarsen.set_defaults(func=cmd_coarsen)

    p_eval = sub.add_parser("evaluate", help="run the link-prediction pipeline")
    add_common(p_eval)
    add_tool_options(p_eval)
    p_eval.add_argument("--dim", type=int, default=32)
    p_eval.add_argument("--epoch-scale", type=float, default=0.2)
    p_eval.add_argument("--classifier", choices=("logistic", "sgd"), default="logistic")
    p_eval.set_defaults(func=cmd_evaluate)

    p_export = sub.add_parser(
        "export", help="list/export/gc stored embedding versions")
    p_export.add_argument("graph", nargs="?", default=None,
                          help="edge-list file or registered dataset name "
                               "(identifies the stored lineage; optional with --list)")
    p_export.add_argument("--seed", type=int, default=0)
    p_export.add_argument("--tool", default=None,
                          help="tool whose stored embedding to export")
    p_export.add_argument("--version", type=int, default=None,
                          help="stored version to export (default: newest)")
    p_export.add_argument("--output", "-o", default="embedding.npy")
    p_export.add_argument("--list", action="store_true",
                          help="list matching store entries instead of exporting")
    p_export.add_argument("--gc-keep", type=int, default=None, metavar="N",
                          help="garbage-collect: keep only the newest N versions "
                               "of every lineage, then list what remains")
    add_store_option(p_export)
    p_export.set_defaults(func=cmd_export)

    p_query = sub.add_parser(
        "query", help="k-NN similarity queries over a stored embedding "
                      "(embeds and stores first if missing)")
    add_common(p_query)
    add_tool_options(p_query)
    # Defaults line up with `embed`: --dim None serves whatever dimension is
    # stored (embedding at the tool default on a miss), so the documented
    # `embed --save` -> `query` flow hits the store instead of silently
    # re-embedding under a different configuration.
    p_query.add_argument("--dim", type=int, default=None,
                         help="embedding dimension; default: serve any stored "
                              "dimension, embed at the tool default if missing")
    p_query.add_argument("--epoch-scale", type=float, default=1.0)
    p_query.add_argument("--vertex", type=int, action="append", default=None,
                         metavar="V",
                         help="query vertex id (repeatable; default: 0)")
    p_query.add_argument("--query-file", default=None, metavar="NPY",
                         help=".npy file of raw query vectors (overrides --vertex)")
    p_query.add_argument("--top-k", type=int, default=10)
    p_query.add_argument("--metric", choices=METRICS, default="cosine")
    p_query.add_argument("--query-backend", default=None, metavar="NAME",
                         help="top-k backend: blocked (chunked matmul, default) "
                              "| exact (brute-force oracle); third-party "
                              "backends registered via "
                              "repro.query.register_query_backend are accepted "
                              "by name")
    p_query.add_argument("--block-rows", type=int, default=4096,
                         help="rows per scoring block for the blocked backend")
    add_store_option(p_query)
    p_query.set_defaults(func=cmd_query)

    p_serve = sub.add_parser(
        "serve", help="run the resident NDJSON query server over a graph "
                      "(warms the store, then answers k-NN queries until Ctrl-C)")
    add_common(p_serve)
    p_serve.add_argument("--tool", default=None,
                         help="registered tool name served by default "
                              "(frames may still name any tool); overrides --config")
    p_serve.add_argument("--config", default="normal",
                         help="GOSH configuration shorthand for --tool gosh-<config>")
    p_serve.add_argument("--dim", type=int, default=None,
                         help="embedding dimension; default: serve any stored "
                              "dimension, embed at the tool default if missing")
    p_serve.add_argument("--epoch-scale", type=float, default=1.0)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7654,
                         help="TCP port to listen on (0 picks a free port)")
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="serve on a Unix socket instead of TCP")
    p_serve.add_argument("--max-inflight", type=int, default=64,
                         help="admission control: max admitted-but-unanswered "
                              "requests before 'overloaded' replies")
    p_serve.add_argument("--queue-depth", type=int, default=128,
                         help="admission control: max requests waiting for a batch")
    p_serve.add_argument("--max-inflight-per-tool", type=int, default=None,
                         metavar="N",
                         help="per-tool admission quota (default: no quota)")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="max requests drained into one query_batch call")
    p_serve.add_argument("--metric", choices=METRICS, default="cosine")
    p_serve.add_argument("--query-backend", default=None, metavar="NAME")
    p_serve.add_argument("--block-rows", type=int, default=4096)
    p_serve.add_argument("--no-warm", action="store_true",
                         help="skip the startup embed-if-missing warm-up")
    p_serve.add_argument("--max-seconds", type=float, default=None,
                         help="serve for N seconds then drain and exit "
                              "(default: until Ctrl-C)")
    p_serve.add_argument("--http-port", type=int, default=None, metavar="PORT",
                         help="also serve HTTP/1.1 on this port (0 picks a "
                              "free one): POST /query, GET /stats, GET /metrics, GET /ping")
    add_store_option(p_serve)
    p_serve.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="enable request tracing and write a Chrome "
                              "trace-event profile to DIR/serve.trace.json "
                              "at shutdown")
    p_serve.set_defaults(func=cmd_serve)

    p_route = sub.add_parser(
        "route", help="run a shard router: partition a graph's vertex ranges "
                      "across N query servers and merge their top-k bit-exactly")
    add_common(p_route)
    p_route.add_argument("--shards", type=int, default=None, metavar="N",
                         help="spawn N in-process shard servers (each with its "
                              "own service over the shared store)")
    p_route.add_argument("--backend-address", action="append", default=None,
                         metavar="ADDR",
                         help="route over an externally started shard server "
                              "(repeatable; shard order = flag order = vertex "
                              "range order)")
    p_route.add_argument("--tool", default=None,
                         help="registered tool name served by default; "
                              "overrides --config")
    p_route.add_argument("--config", default="normal",
                         help="GOSH configuration shorthand for --tool gosh-<config>")
    p_route.add_argument("--dim", type=int, default=None,
                         help="embedding dimension for spawned shards; default: "
                              "serve any stored dimension")
    p_route.add_argument("--epoch-scale", type=float, default=1.0)
    p_route.add_argument("--host", default="127.0.0.1")
    p_route.add_argument("--port", type=int, default=7653,
                         help="router TCP port (0 picks a free port)")
    p_route.add_argument("--max-inflight", type=int, default=64)
    p_route.add_argument("--queue-depth", type=int, default=128)
    p_route.add_argument("--max-batch", type=int, default=32)
    p_route.add_argument("--metric", choices=METRICS, default="cosine")
    p_route.add_argument("--query-backend", default=None, metavar="NAME")
    p_route.add_argument("--block-rows", type=int, default=4096)
    p_route.add_argument("--shard-timeout", type=float, default=30.0,
                         help="per-shard exchange wall-clock deadline in "
                              "seconds (a hung shard fails its batch within "
                              "this bound)")
    p_route.add_argument("--replicas", type=int, default=1, metavar="R",
                         help="replica servers per vertex range; with "
                              "--shards, spawns N*R servers; with "
                              "--backend-address, groups consecutive "
                              "addresses into R-sized replica sets")
    p_route.add_argument("--probe-interval", type=float, default=1.0,
                         metavar="SECONDS",
                         help="base interval for re-probing unhealthy shard "
                              "replicas (doubles per consecutive failure, "
                              "capped at --probe-backoff-max)")
    p_route.add_argument("--probe-backoff-max", type=float, default=30.0,
                         metavar="SECONDS",
                         help="cap on the probe backoff interval")
    p_route.add_argument("--max-inflight-per-tool", type=int, default=None,
                         metavar="N",
                         help="per-tool admission quota (default: no quota)")
    p_route.add_argument("--max-seconds", type=float, default=None,
                         help="route for N seconds then drain and exit "
                              "(default: until Ctrl-C)")
    p_route.add_argument("--http-port", type=int, default=None, metavar="PORT",
                         help="also serve HTTP/1.1 on this port (0 picks a "
                              "free one)")
    add_store_option(p_route)
    p_route.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="enable request tracing and write a Chrome "
                              "trace-event profile to DIR/route.trace.json "
                              "at shutdown")
    p_route.set_defaults(func=cmd_route)

    p_load = sub.add_parser(
        "load", help="drive one or more running query servers with concurrent "
                     "clients and report latency percentiles + queries/s")
    p_load.add_argument("address", nargs="+",
                        help="server address(es): host:port or unix:<path>; "
                             "with several, clients are assigned round-robin "
                             "and the report merges them with a per-address "
                             "breakdown")
    p_load.add_argument("--clients", type=int, default=4)
    p_load.add_argument("--mode", choices=("closed", "open"), default="closed",
                        help="closed: one in-flight request per client; "
                             "open: fixed-rate arrivals regardless of replies")
    p_load.add_argument("--duration", type=float, default=2.0, metavar="SECONDS")
    p_load.add_argument("--requests-per-client", type=int, default=None,
                        metavar="N", help="closed loop: stop each client after N requests")
    p_load.add_argument("--rate", type=float, default=50.0,
                        help="open loop: requests per second per client")
    p_load.add_argument("--top-k", type=int, default=10)
    p_load.add_argument("--num-vertices", type=int, default=100,
                        help="query vertex ids are drawn from [0, N)")
    p_load.add_argument("--tool", default=None,
                        help="tool name to put in frames (default: server default)")
    p_load.add_argument("--graph-name", default=None,
                        help="served graph name to put in frames (default: server default)")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--timeout", type=float, default=30.0,
                        help="per-reply wait bound in seconds")
    p_load.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full report as JSON")
    p_load.set_defaults(func=cmd_load)

    p_stats = sub.add_parser(
        "stats", help="poll a running query server's stats (pretty JSON) or "
                      "Prometheus text (--metrics)")
    p_stats.add_argument("address",
                         help="server address: host:port or unix:<path>")
    p_stats.add_argument("--metrics", action="store_true",
                         help="print Prometheus text (the metrics verb; falls "
                              "back to rendering the stats snapshot locally "
                              "against servers predating the verb)")
    p_stats.add_argument("--count", type=int, default=1, metavar="N",
                         help="number of polls (default: 1)")
    p_stats.add_argument("--interval", type=float, default=2.0,
                         metavar="SECONDS",
                         help="sleep between polls (default: 2.0)")
    p_stats.add_argument("--timeout", type=float, default=10.0,
                         help="per-request wait bound in seconds")
    p_stats.set_defaults(func=cmd_stats)

    p_tools = sub.add_parser("tools", help="list the registered embedding tools")
    p_tools.add_argument("--dim", type=int, default=32)
    p_tools.add_argument("--epoch-scale", type=float, default=1.0)
    p_tools.add_argument("--store-dir", default=None, metavar="DIR",
                         help="also report the embedding store at DIR")
    p_tools.set_defaults(func=cmd_tools)

    p_data = sub.add_parser("datasets", help="list the registered synthetic twins")
    p_data.add_argument("--scale", choices=("medium", "large"), default=None)
    p_data.set_defaults(func=cmd_datasets)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
