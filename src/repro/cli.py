"""Command-line interface for the GOSH reproduction.

Five subcommands cover the day-to-day workflow of the original tool:

* ``repro-gosh embed``    — embed an edge-list file (or a named synthetic
  twin) with any registered tool and save the matrix as ``.npy``.
* ``repro-gosh coarsen``  — run MultiEdgeCollapse and print the per-level
  statistics (a Table 4/5-style report).
* ``repro-gosh evaluate`` — run the full link-prediction pipeline around a
  chosen tool and print the AUCROC.
* ``repro-gosh tools``    — list the registered embedding tools.
* ``repro-gosh datasets`` — list the registered synthetic twins (Table 2).

The CLI is intentionally thin: every subcommand is a short wrapper over the
public library API — tools are resolved exclusively through the
:mod:`repro.api` registry — so that scripts remain the primary interface.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from .api import UnknownToolError, get_tool, tool_descriptions
from .coarsening import multi_edge_collapse, parallel_multi_edge_collapse, summarize
from .eval import run_link_prediction
from .graph import CSRGraph, read_edge_list
from .gpu import DeviceSpec, SimulatedDevice
from .harness import dataset_names, load_dataset, paper_table2_rows, print_table

__all__ = ["main", "build_parser"]


def _load_graph(source: str, *, seed: int = 0) -> CSRGraph:
    """Load a graph from an edge-list path or the twin registry."""
    if source in dataset_names():
        return load_dataset(source, seed=seed)
    path = Path(source)
    if not path.exists():
        raise SystemExit(
            f"{source!r} is neither a registered dataset ({', '.join(dataset_names())}) "
            "nor an existing edge-list file"
        )
    return read_edge_list(path)


def _make_device(memory_mb: float | None) -> SimulatedDevice:
    if memory_mb is None:
        return SimulatedDevice()
    return SimulatedDevice(spec=DeviceSpec(name=f"{memory_mb}MB",
                                           memory_bytes=int(memory_mb * 1024 * 1024)))


def _resolve_tool(args: argparse.Namespace):
    """Build the requested tool from the registry.

    ``--tool`` names any registered tool; the legacy ``--config`` flag keeps
    working by mapping Table 3 configuration names onto the GOSH variants.
    """
    name = args.tool
    if name is None:
        name = f"gosh-{args.config.strip().lower()}"
    device = _make_device(args.device_memory_mb)
    try:
        return get_tool(name, dim=args.dim, epoch_scale=args.epoch_scale,
                        device=device, seed=args.seed,
                        kernel_backend=args.kernel_backend,
                        sampler_backend=args.sampler_backend,
                        execution_mode=args.execution_mode)
    except UnknownToolError as exc:
        raise SystemExit(str(exc)) from exc
    except ValueError as exc:
        # e.g. an unregistered --kernel-backend name
        raise SystemExit(str(exc)) from exc


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def cmd_embed(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, seed=args.seed)
    tool = _resolve_tool(args)
    result = tool.embed(graph)
    np.save(args.output, result.embedding)
    print(f"graph: {graph}")
    print(f"tool: {result.tool} — {tool.describe()}")
    for stage, seconds in result.timings.items():
        print(f"{stage}: {seconds:.3f}s")
    if "level_sizes" in result.stats:
        print(f"levels: {result.stats['level_sizes']}")
    if "epochs_per_level" in result.stats:
        print(f"epochs per level: {result.stats['epochs_per_level']}")
    large = result.stats.get("large_graph")
    if large:
        print("partitioned engine: "
              f"levels={large['levels']}, K={large['parts_per_level']}, "
              f"rotations={large['rotations']}, kernels={large['kernels']}, "
              f"switches={large['submatrix_switches']} "
              f"({large['seconds']:.3f}s, {large['execution_mode']} execution, "
              f"pool stall {large['pool_stall_s']:.3f}s)")
    print(f"embedding saved to {args.output} (shape {result.embedding.shape})")
    return 0


def cmd_coarsen(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, seed=args.seed)
    coarsener = parallel_multi_edge_collapse if args.parallel else multi_edge_collapse
    result = coarsener(graph, threshold=args.threshold)
    report = summarize(result)
    rows = [{
        "level": i,
        "|V_i|": result.graphs[i].num_vertices,
        "|E_i|": result.graphs[i].num_undirected_edges,
        "time (s)": round(result.level_times[i - 1], 4) if i > 0 else "-",
    } for i in range(result.num_levels)]
    print_table(rows, title=f"MultiEdgeCollapse on {graph.name} "
                            f"({'parallel' if args.parallel else 'sequential'})")
    print(f"levels: {report.num_levels}, last level: {report.last_level_size}, "
          f"mean shrink rate: {report.mean_shrink_rate:.3f}, total: {report.total_time:.3f}s")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph, seed=args.seed)
    tool = _resolve_tool(args)
    result = run_link_prediction(graph, tool, classifier=args.classifier, seed=args.seed)
    print(f"graph: {graph}")
    print(f"tool: {tool.name} — {tool.describe()}")
    print(f"embedding time: {result.embed_seconds:.3f}s")
    print(f"link-prediction AUCROC: {100 * result.auc:.2f}%")
    return 0


def cmd_tools(args: argparse.Namespace) -> int:
    rows = tool_descriptions(dim=args.dim, epoch_scale=args.epoch_scale)
    print_table(rows, title="Registered embedding tools (repro.api registry)")
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = paper_table2_rows()
    if args.scale:
        rows = [r for r in rows if r["scale"] == args.scale]
    print_table(rows, title="Registered dataset twins (paper Table 2)")
    return 0


# --------------------------------------------------------------------------- #
# Parser
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gosh",
        description="GOSH reproduction: multilevel graph embedding on small (simulated) hardware",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("graph", help="edge-list file or registered dataset name")
        p.add_argument("--seed", type=int, default=0)

    def add_tool_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--tool", default=None,
                       help="registered tool name (see `repro-gosh tools`); "
                            "overrides --config")
        p.add_argument("--config", default="normal",
                       help="GOSH configuration: fast | normal | slow | no-coarsening "
                            "(shorthand for --tool gosh-<config>)")
        p.add_argument("--device-memory-mb", type=float, default=None,
                       help="simulated device memory (default: Titan X, 12 GB)")
        p.add_argument("--kernel-backend", default=None, metavar="NAME",
                       help="kernel backend for the GOSH update kernels: "
                            "vectorized (whole-epoch batched ops, default) | "
                            "reference (loop-based oracle); third-party backends "
                            "registered via repro.gpu.register_backend are "
                            "accepted by name")
        p.add_argument("--sampler-backend", default=None, metavar="NAME",
                       help="host-side sampler producing the large-graph "
                            "engine's positive pools: vectorized (whole-part "
                            "batched, default) | reference (per-vertex loop "
                            "oracle) | degree_biased (GraphVite-style deg^0.75 "
                            "hub weighting); third-party backends registered "
                            "via repro.graph.register_sampler_backend are "
                            "accepted by name")
        p.add_argument("--execution-mode", default=None, metavar="MODE",
                       help="large-graph pool production scheduling: pipelined "
                            "(background producer thread behind a bounded "
                            "S_GPU queue, default) | sequential "
                            "(single-threaded oracle); results are "
                            "bit-identical either way")

    p_embed = sub.add_parser("embed", help="embed a graph and save the matrix as .npy")
    add_common(p_embed)
    p_embed.add_argument("--output", "-o", default="embedding.npy")
    add_tool_options(p_embed)
    p_embed.add_argument("--dim", type=int, default=128)
    p_embed.add_argument("--epoch-scale", type=float, default=1.0)
    p_embed.set_defaults(func=cmd_embed)

    p_coarsen = sub.add_parser("coarsen", help="run MultiEdgeCollapse and report per-level stats")
    add_common(p_coarsen)
    p_coarsen.add_argument("--threshold", type=int, default=100)
    p_coarsen.add_argument("--parallel", action="store_true")
    p_coarsen.set_defaults(func=cmd_coarsen)

    p_eval = sub.add_parser("evaluate", help="run the link-prediction pipeline")
    add_common(p_eval)
    add_tool_options(p_eval)
    p_eval.add_argument("--dim", type=int, default=32)
    p_eval.add_argument("--epoch-scale", type=float, default=0.2)
    p_eval.add_argument("--classifier", choices=("logistic", "sgd"), default="logistic")
    p_eval.set_defaults(func=cmd_evaluate)

    p_tools = sub.add_parser("tools", help="list the registered embedding tools")
    p_tools.add_argument("--dim", type=int, default=32)
    p_tools.add_argument("--epoch-scale", type=float, default=1.0)
    p_tools.set_defaults(func=cmd_tools)

    p_data = sub.add_parser("datasets", help="list the registered synthetic twins")
    p_data.add_argument("--scale", choices=("medium", "large"), default=None)
    p_data.set_defaults(func=cmd_datasets)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
