"""Train/test edge splitting for link prediction (Section 4.1).

The paper's protocol:

1. split the edges of ``G`` 80/20 into ``G_train`` and a test edge set,
2. remove isolated vertices from ``G_train``,
3. drop every test edge with an endpoint that is no longer in ``G_train``
   (guaranteeing ``V_test ⊆ V_train``),
4. embed ``G_train`` and evaluate a classifier on the test edges plus an
   equal number of sampled non-edges.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["LinkPredictionSplit", "train_test_split", "sample_negative_edges"]


@dataclass
class LinkPredictionSplit:
    """The result of the 80/20 protocol.

    ``train_graph`` uses the *original* vertex ids (vertices that became
    isolated keep their id but have no edges), so embeddings indexed by
    original id can be used directly for both train and test pairs.
    """

    train_graph: CSRGraph
    train_edges: np.ndarray      # (m_train, 2), u < v
    test_edges: np.ndarray       # (m_test, 2), u < v, both endpoints non-isolated in train
    train_fraction: float

    @property
    def num_train_edges(self) -> int:
        return int(self.train_edges.shape[0])

    @property
    def num_test_edges(self) -> int:
        return int(self.test_edges.shape[0])


def train_test_split(graph: CSRGraph, *, train_fraction: float = 0.8,
                     seed: int = 0) -> LinkPredictionSplit:
    """Split ``graph`` into train graph + held-out test edges (paper protocol)."""
    if not (0.0 < train_fraction < 1.0):
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    edges = graph.undirected_edge_array()
    m = edges.shape[0]
    if m == 0:
        raise ValueError("cannot split a graph with no edges")
    perm = rng.permutation(m)
    num_train = max(1, int(round(train_fraction * m)))
    train_edges = edges[perm[:num_train]]
    test_edges = edges[perm[num_train:]]

    train_graph = CSRGraph.from_edges(graph.num_vertices, train_edges, undirected=True,
                                      name=f"{graph.name}_train")
    # Step 3: keep only test edges whose endpoints still have degree > 0.
    deg = train_graph.degrees
    if test_edges.shape[0]:
        keep = (deg[test_edges[:, 0]] > 0) & (deg[test_edges[:, 1]] > 0)
        test_edges = test_edges[keep]
    return LinkPredictionSplit(
        train_graph=train_graph,
        train_edges=train_edges,
        test_edges=test_edges,
        train_fraction=train_fraction,
    )


def sample_negative_edges(graph: CSRGraph, count: int, *, seed: int = 0,
                          exclude: CSRGraph | None = None,
                          restrict_to_active: bool = True,
                          max_attempts_factor: int = 20) -> np.ndarray:
    """Sample ``count`` vertex pairs that are not edges of ``graph`` (nor of ``exclude``).

    Rejection sampling against the CSR membership test; ``restrict_to_active``
    draws endpoints only from vertices with degree > 0 (the paper samples
    negatives from ``V_train × V_train``).
    """
    rng = np.random.default_rng(seed)
    if restrict_to_active:
        candidates = np.flatnonzero(graph.degrees > 0)
    else:
        candidates = np.arange(graph.num_vertices, dtype=np.int64)
    if candidates.shape[0] < 2:
        raise ValueError("not enough active vertices to sample negative edges")
    collected: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    attempts = 0
    max_attempts = max_attempts_factor * max(count, 1)
    while len(collected) < count and attempts < max_attempts:
        batch = min(4 * (count - len(collected)) + 16, 1 << 16)
        us = candidates[rng.integers(0, candidates.shape[0], size=batch)]
        vs = candidates[rng.integers(0, candidates.shape[0], size=batch)]
        for u, v in zip(us, vs):
            attempts += 1
            if u == v:
                continue
            a, b = (int(u), int(v)) if u < v else (int(v), int(u))
            if (a, b) in seen:
                continue
            if graph.has_edge(a, b):
                continue
            if exclude is not None and exclude.has_edge(a, b):
                continue
            seen.add((a, b))
            collected.append((a, b))
            if len(collected) >= count:
                break
    if len(collected) < count:
        raise RuntimeError(
            f"could only sample {len(collected)} of {count} negative edges; "
            "graph may be too dense"
        )
    return np.asarray(collected, dtype=np.int64)
