"""Evaluation pipeline: splits, features, classifiers, metrics, link prediction."""

from .features import EDGE_OPERATORS, build_dataset, edge_features
from .link_prediction import LinkPredictionResult, evaluate_embedding, run_link_prediction
from .logistic import LogisticRegression, SGDLogisticClassifier
from .metrics import accuracy, auc_roc, average_precision, precision_recall_f1, roc_curve
from .node_classification import NodeClassificationResult, node_classification
from .split import LinkPredictionSplit, sample_negative_edges, train_test_split

__all__ = [
    "EDGE_OPERATORS",
    "build_dataset",
    "edge_features",
    "LinkPredictionResult",
    "evaluate_embedding",
    "run_link_prediction",
    "LogisticRegression",
    "SGDLogisticClassifier",
    "accuracy",
    "auc_roc",
    "average_precision",
    "precision_recall_f1",
    "roc_curve",
    "NodeClassificationResult",
    "node_classification",
    "LinkPredictionSplit",
    "sample_negative_edges",
    "train_test_split",
]
