"""Edge feature construction for the link-prediction classifier.

The paper builds each classifier input row as the element-wise (Hadamard)
product of the two endpoint embedding vectors, with the label appended during
training.  Alternative binary operators (average, L1, L2) are provided for
completeness — they are standard in the link-prediction literature
(node2vec) and are used by an ablation bench.
"""

from __future__ import annotations

import numpy as np

__all__ = ["edge_features", "build_dataset", "EDGE_OPERATORS"]


def _hadamard(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


def _average(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return 0.5 * (a + b)


def _weighted_l1(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.abs(a - b)


def _weighted_l2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a - b) ** 2


EDGE_OPERATORS = {
    "hadamard": _hadamard,
    "average": _average,
    "l1": _weighted_l1,
    "l2": _weighted_l2,
}


def edge_features(embedding: np.ndarray, pairs: np.ndarray, *,
                  operator: str = "hadamard") -> np.ndarray:
    """Feature matrix for vertex pairs: ``op(M[u], M[v])`` row per pair."""
    if operator not in EDGE_OPERATORS:
        raise ValueError(f"unknown edge operator {operator!r}; options: {sorted(EDGE_OPERATORS)}")
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError("pairs must be an (m, 2) array")
    a = embedding[pairs[:, 0]]
    b = embedding[pairs[:, 1]]
    return EDGE_OPERATORS[operator](a, b).astype(np.float64)


def build_dataset(embedding: np.ndarray, positive_pairs: np.ndarray,
                  negative_pairs: np.ndarray, *, operator: str = "hadamard",
                  shuffle: bool = True, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Stack positive and negative pairs into (features, labels)."""
    pos = edge_features(embedding, positive_pairs, operator=operator)
    neg = edge_features(embedding, negative_pairs, operator=operator)
    features = np.vstack([pos, neg])
    labels = np.concatenate([np.ones(pos.shape[0]), np.zeros(neg.shape[0])])
    if shuffle:
        rng = np.random.default_rng(seed)
        perm = rng.permutation(features.shape[0])
        features, labels = features[perm], labels[perm]
    return features, labels
