"""End-to-end link-prediction pipeline (Section 4.1 of the paper).

Given an input graph and an embedding function, the pipeline:

1. splits the graph 80/20 (``train_test_split``),
2. embeds the training graph with the supplied embedder,
3. builds balanced train/test sets: all train (resp. test) edges as
   positives plus an equal number of sampled non-edges as negatives, featured
   with the Hadamard product of the endpoint vectors,
4. fits a logistic-regression classifier on the train set (the full-batch
   model for medium graphs, SGD for large ones),
5. reports the AUCROC on the test set.

:func:`evaluate_embedding` also closes the loop with the serving side: a
matrix loaded from the :mod:`repro.store` (``store.load(...).embedding``,
memory-mapped or not) evaluates exactly like a freshly trained one.  The
:mod:`repro.query` layer's ``sigmoid`` metric is this pipeline's — and the
trainer's — edge-probability model sigma(u . v), so serving-time similarity
scores are calibrated consistently with what link prediction optimises.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable

import numpy as np

from ..graph.csr import CSRGraph
from .features import build_dataset
from .logistic import LogisticRegression, SGDLogisticClassifier
from .metrics import auc_roc
from .split import LinkPredictionSplit, sample_negative_edges, train_test_split

__all__ = ["LinkPredictionResult", "evaluate_embedding", "run_link_prediction"]

#: An embedder maps a training graph to a (|V|, d) embedding matrix.
Embedder = Callable[[CSRGraph], np.ndarray]


@dataclass
class LinkPredictionResult:
    """Outcome of one link-prediction evaluation."""

    auc: float
    embed_seconds: float
    classifier_seconds: float
    num_train_edges: int
    num_test_edges: int
    classifier: str

    def as_row(self) -> dict[str, object]:
        return {
            "AUCROC(%)": round(100.0 * self.auc, 2),
            "embed_s": round(self.embed_seconds, 3),
            "clf_s": round(self.classifier_seconds, 3),
            "train_edges": self.num_train_edges,
            "test_edges": self.num_test_edges,
        }


def evaluate_embedding(embedding: np.ndarray, split: LinkPredictionSplit, *,
                       classifier: str = "logistic", operator: str = "hadamard",
                       seed: int = 0, embed_seconds: float = 0.0) -> LinkPredictionResult:
    """Steps 3–5 of the pipeline for a pre-computed embedding."""
    if embedding.shape[0] < split.train_graph.num_vertices:
        raise ValueError("embedding must cover every vertex of the training graph")
    t0 = perf_counter()
    train_negatives = sample_negative_edges(
        split.train_graph, split.num_train_edges, seed=seed,
    )
    test_negatives = sample_negative_edges(
        split.train_graph, max(split.num_test_edges, 1), seed=seed + 1,
    )
    X_train, y_train = build_dataset(embedding, split.train_edges, train_negatives,
                                     operator=operator, seed=seed)
    X_test, y_test = build_dataset(embedding, split.test_edges, test_negatives,
                                   operator=operator, seed=seed + 1)
    if classifier == "logistic":
        model = LogisticRegression()
    elif classifier == "sgd":
        model = SGDLogisticClassifier(seed=seed)
    else:
        raise ValueError(f"unknown classifier {classifier!r}; options: logistic, sgd")
    model.fit(X_train, y_train)
    scores = model.decision_function(X_test)
    clf_seconds = perf_counter() - t0
    return LinkPredictionResult(
        auc=auc_roc(y_test, scores),
        embed_seconds=embed_seconds,
        classifier_seconds=clf_seconds,
        num_train_edges=split.num_train_edges,
        num_test_edges=split.num_test_edges,
        classifier=classifier,
    )


def run_link_prediction(graph: CSRGraph, embedder: "Embedder | str | object", *,
                        train_fraction: float = 0.8, classifier: str = "logistic",
                        operator: str = "hadamard", seed: int = 0) -> LinkPredictionResult:
    """The full Section 4.1 pipeline around any embedder spelling.

    ``embedder`` may be a registered tool name (``"gosh-fast"``), an
    :class:`~repro.api.protocol.EmbeddingTool`, or a bare
    ``graph -> embedding`` callable; names and tools are resolved through
    :func:`repro.api.as_embedder`, which also forwards ``seed`` to the
    embedding so one seed governs the whole pipeline (bare callables keep
    their own seeding).
    """
    from ..api.protocol import as_embedder

    embed_fn = as_embedder(embedder, seed=seed)
    split = train_test_split(graph, train_fraction=train_fraction, seed=seed)
    t0 = perf_counter()
    embedding = embed_fn(split.train_graph)
    embed_seconds = perf_counter() - t0
    return evaluate_embedding(embedding, split, classifier=classifier,
                              operator=operator, seed=seed, embed_seconds=embed_seconds)
