"""Node classification on embeddings — the paper's stated future-work task.

The conclusion of the paper lists node classification as the next ML task to
support.  We include a one-vs-rest logistic-regression evaluator so the
library covers it: given per-vertex labels (e.g. the planted blocks of an SBM
graph), it trains one binary classifier per class on a fraction of the
vertices and reports micro/macro F1 on the rest — the standard protocol of
DeepWalk/node2vec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .logistic import LogisticRegression
from .metrics import precision_recall_f1

__all__ = ["NodeClassificationResult", "node_classification"]


@dataclass
class NodeClassificationResult:
    micro_f1: float
    macro_f1: float
    accuracy: float
    num_classes: int
    train_fraction: float


def node_classification(embedding: np.ndarray, labels: np.ndarray, *,
                        train_fraction: float = 0.5, seed: int = 0) -> NodeClassificationResult:
    """One-vs-rest logistic regression over vertex embeddings."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape[0] != embedding.shape[0]:
        raise ValueError("labels must have one entry per vertex")
    if not (0.0 < train_fraction < 1.0):
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = labels.shape[0]
    perm = rng.permutation(n)
    n_train = max(1, int(round(train_fraction * n)))
    train_idx, test_idx = perm[:n_train], perm[n_train:]
    if test_idx.size == 0:
        raise ValueError("train_fraction leaves no test vertices")

    classes = np.unique(labels)
    scores = np.zeros((test_idx.shape[0], classes.shape[0]), dtype=np.float64)
    for ci, cls in enumerate(classes):
        binary = (labels == cls).astype(np.float64)
        model = LogisticRegression(max_iter=200)
        model.fit(embedding[train_idx], binary[train_idx])
        scores[:, ci] = model.decision_function(embedding[test_idx])
    predictions = classes[np.argmax(scores, axis=1)]
    truth = labels[test_idx]

    acc = float(np.mean(predictions == truth))
    f1s = []
    tp_total = fp_total = fn_total = 0.0
    for cls in classes:
        p, r, f1 = precision_recall_f1(truth == cls, predictions == cls)
        f1s.append(f1)
        tp_total += float(np.sum((truth == cls) & (predictions == cls)))
        fp_total += float(np.sum((truth != cls) & (predictions == cls)))
        fn_total += float(np.sum((truth == cls) & (predictions != cls)))
    micro_p = tp_total / (tp_total + fp_total) if tp_total + fp_total > 0 else 0.0
    micro_r = tp_total / (tp_total + fn_total) if tp_total + fn_total > 0 else 0.0
    micro_f1 = (2 * micro_p * micro_r / (micro_p + micro_r)) if micro_p + micro_r > 0 else 0.0
    return NodeClassificationResult(
        micro_f1=float(micro_f1),
        macro_f1=float(np.mean(f1s)),
        accuracy=acc,
        num_classes=int(classes.shape[0]),
        train_fraction=train_fraction,
    )
