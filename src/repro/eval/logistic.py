"""Logistic-regression classifiers (scikit-learn substitutes).

The paper trains ``sklearn.linear_model.LogisticRegression`` on medium graphs
and ``SGDClassifier(loss="log")`` on large graphs.  Neither library is
available offline here, so both are reimplemented on NumPy:

* :class:`LogisticRegression` — full-batch gradient descent with momentum
  and L2 regularisation (adequate for the few-hundred-thousand-row feature
  matrices the medium-scale experiments produce),
* :class:`SGDLogisticClassifier` — mini-batch SGD with the same logistic
  loss, matching the scalable path used for large graphs.

Both expose the sklearn-ish ``fit`` / ``predict_proba`` / ``decision_function``
surface the evaluation pipeline expects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.kernels import sigmoid

__all__ = ["LogisticRegression", "SGDLogisticClassifier"]


def _add_intercept_column(features: np.ndarray) -> np.ndarray:
    return np.hstack([features, np.ones((features.shape[0], 1), dtype=features.dtype)])


@dataclass
class LogisticRegression:
    """Full-batch logistic regression with momentum gradient descent."""

    learning_rate: float = 0.1
    max_iter: int = 300
    l2: float = 1e-4
    momentum: float = 0.9
    tol: float = 1e-6
    fit_intercept: bool = True
    weights_: np.ndarray | None = field(default=None, repr=False)
    losses_: list[float] = field(default_factory=list, repr=False)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegression":
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("features and labels must have the same number of rows")
        if not np.all(np.isin(np.unique(y), [0.0, 1.0])):
            raise ValueError("labels must be binary (0/1)")
        if self.fit_intercept:
            X = _add_intercept_column(X)
        n, d = X.shape
        w = np.zeros(d, dtype=np.float64)
        velocity = np.zeros_like(w)
        prev_loss = np.inf
        for _ in range(self.max_iter):
            p = sigmoid(X @ w)
            grad = X.T @ (p - y) / n + self.l2 * w
            velocity = self.momentum * velocity - self.learning_rate * grad
            w = w + velocity
            eps = 1e-12
            loss = float(-np.mean(y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps))
                         + 0.5 * self.l2 * np.dot(w, w))
            self.losses_.append(loss)
            if abs(prev_loss - loss) < self.tol:
                break
            prev_loss = loss
        self.weights_ = w
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(features, dtype=np.float64)
        if self.fit_intercept:
            X = _add_intercept_column(X)
        return X @ self.weights_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = sigmoid(self.decision_function(features))
        return np.column_stack([1.0 - scores, scores])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0.0).astype(np.int64)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Accuracy (sklearn-compatible convenience)."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))


@dataclass
class SGDLogisticClassifier:
    """Mini-batch SGD logistic regression (the large-graph classifier)."""

    learning_rate: float = 0.05
    epochs: int = 20
    batch_size: int = 4096
    l2: float = 1e-5
    shuffle: bool = True
    seed: int = 0
    fit_intercept: bool = True
    weights_: np.ndarray | None = field(default=None, repr=False)

    def partial_fit(self, features: np.ndarray, labels: np.ndarray) -> "SGDLogisticClassifier":
        """One pass over the given batch (streaming interface)."""
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if self.fit_intercept:
            X = _add_intercept_column(X)
        if self.weights_ is None:
            self.weights_ = np.zeros(X.shape[1], dtype=np.float64)
        p = sigmoid(X @ self.weights_)
        grad = X.T @ (p - y) / max(X.shape[0], 1) + self.l2 * self.weights_
        self.weights_ = self.weights_ - self.learning_rate * grad
        return self

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SGDLogisticClassifier":
        X = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.weights_ = None
        for _ in range(self.epochs):
            order = rng.permutation(n) if self.shuffle else np.arange(n)
            for start in range(0, n, self.batch_size):
                idx = order[start: start + self.batch_size]
                self.partial_fit(X[idx], y[idx])
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("classifier is not fitted")
        X = np.asarray(features, dtype=np.float64)
        if self.fit_intercept:
            X = _add_intercept_column(X)
        return X @ self.weights_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        scores = sigmoid(self.decision_function(features))
        return np.column_stack([1.0 - scores, scores])

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.decision_function(features) >= 0.0).astype(np.int64)
