"""Evaluation metrics: AUCROC (the paper's headline metric) and friends."""

from __future__ import annotations

import numpy as np

__all__ = ["auc_roc", "roc_curve", "accuracy", "precision_recall_f1", "average_precision"]


def auc_roc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the Mann–Whitney U statistic.

    Equivalent to the probability that a random positive scores higher than a
    random negative; ties contribute half.  O(n log n) and exact.
    """
    labels = np.asarray(labels).astype(np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same shape")
    pos = labels == 1.0
    neg = labels == 0.0
    n_pos = int(pos.sum())
    n_neg = int(neg.sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUCROC needs at least one positive and one negative sample")
    # Rank the scores (average ranks on ties).
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    n = scores.shape[0]
    while i < n:
        j = i
        while j + 1 < n and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i: j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum_pos = float(ranks[pos].sum())
    u = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def roc_curve(labels: np.ndarray, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points (fpr, tpr, thresholds) sorted by decreasing threshold."""
    labels = np.asarray(labels).astype(np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    scores = scores[order]
    distinct = np.concatenate([np.flatnonzero(np.diff(scores)), [labels.shape[0] - 1]])
    tps = np.cumsum(labels)[distinct]
    fps = (distinct + 1) - tps
    n_pos = labels.sum()
    n_neg = labels.shape[0] - n_pos
    tpr = tps / max(n_pos, 1)
    fpr = fps / max(n_neg, 1)
    tpr = np.concatenate([[0.0], tpr])
    fpr = np.concatenate([[0.0], fpr])
    thresholds = np.concatenate([[np.inf], scores[distinct]])
    return fpr, tpr, thresholds


def accuracy(labels: np.ndarray, predictions: np.ndarray) -> float:
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must have the same shape")
    if labels.size == 0:
        raise ValueError("cannot compute accuracy of an empty set")
    return float(np.mean(labels == predictions))


def precision_recall_f1(labels: np.ndarray, predictions: np.ndarray) -> tuple[float, float, float]:
    labels = np.asarray(labels).astype(bool)
    predictions = np.asarray(predictions).astype(bool)
    tp = float(np.sum(labels & predictions))
    fp = float(np.sum(~labels & predictions))
    fn = float(np.sum(labels & ~predictions))
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return precision, recall, f1


def average_precision(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (step-wise interpolation)."""
    labels = np.asarray(labels).astype(np.float64)
    scores = np.asarray(scores, dtype=np.float64)
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    tp_cum = np.cumsum(labels)
    precision = tp_cum / np.arange(1, labels.shape[0] + 1)
    n_pos = labels.sum()
    if n_pos == 0:
        raise ValueError("average precision needs at least one positive")
    return float(np.sum(precision * labels) / n_pos)
