"""Checkpoint/resume for long embedding jobs — bit-exact crash recovery.

A GOSH run is a deterministic walk over a schedule: levels coarsest→0, and —
for levels on the partitioned engine — rotations 0…R-1 per level, where every
random draw is keyed by content (``(seed, stream, rotation, pair)`` for the
engine, ``seed + level`` for the in-memory trainer, and the coarsening is a
deterministic simulation).  That makes a checkpoint nothing more than the
embedding matrix plus a **cursor** ``(level, rotation)``: restart the walk at
the cursor and every subsequent draw is the one the uninterrupted run would
have made, so the resumed embedding is bit-identical — proven, not hoped,
by ``tests/faults/test_checkpoint_resume.py``.

Checkpoints are ordinary :class:`~repro.store.EmbeddingStore` versions (same
atomic staging-dir commit, same manifests) in a **sibling lineage** named
``<tool>.ckpt``, so they are crash-safe for free and can never be served as
a finished embedding by ``latest(fingerprint, tool)``.  Cursor semantics:

* ``(level=L, rotation=0)`` — the matrix as expanded *into* level ``L``;
  level ``L`` has not trained yet.
* ``(level=L, rotation=r>0)`` — level ``L`` on the partitioned engine with
  ``r`` rotations complete.

The cursor rides in ``metadata["checkpoint"]``, which the store's config
hash excludes — every checkpoint of a run therefore lands in one lineage
whose hash equals the final result's lineage hash, which is how
:func:`latest_checkpoint` finds compatible checkpoints by hash alone (a
checkpoint from different settings can never be resumed by accident).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..store.store import EmbeddingStore, StoreEntry

__all__ = [
    "CHECKPOINT_SUFFIX",
    "CheckpointMismatchError",
    "CheckpointPolicy",
    "ResumeState",
    "TrainingInterrupted",
    "latest_checkpoint",
]

#: Appended to the tool name to form the checkpoint lineage's tool field.
CHECKPOINT_SUFFIX = ".ckpt"


class CheckpointMismatchError(RuntimeError):
    """A checkpoint's cursor or shape contradicts the run being resumed.

    Config hashes already gate resume to identical settings, so hitting this
    means the *environment* drifted between runs — e.g. a level that trained
    on the partitioned engine now fits in device memory, which would change
    the draw schedule and silently break bit-exactness.
    """


class TrainingInterrupted(RuntimeError):
    """Raised at a checkpoint boundary when a graceful stop was requested.

    Carries the final checkpoint entry so the caller (the ``embed`` CLI's
    SIGTERM path) can report where to resume from.
    """

    def __init__(self, entry: "StoreEntry | None", *, level: int, rotation: int):
        where = f"level {level}" + (f", rotation {rotation}" if rotation else "")
        saved = f"; checkpoint v{entry.version:04d} saved" if entry is not None else ""
        super().__init__(f"training interrupted at {where}{saved}")
        self.entry = entry
        self.level = level
        self.rotation = rotation


@dataclass
class ResumeState:
    """A loaded checkpoint: the cursor plus the matrix to restart from."""

    level: int
    rotation: int
    embedding: np.ndarray
    entry: "StoreEntry"

    def describe(self) -> str:
        return (f"checkpoint v{self.entry.version:04d} "
                f"(level {self.level}, rotation {self.rotation})")


@dataclass
class CheckpointPolicy:
    """When and where to write checkpoints during one embedding run.

    Parameters
    ----------
    store, fingerprint, tool, metadata:
        The run's identity: checkpoints land in lineage
        ``<fingerprint>-<hash(metadata)>-<tool>.ckpt`` under ``store``.
        ``metadata`` must be the run's configuration echo (what the final
        result will carry) so the hashes line up.
    every_rotations:
        Write a rotation checkpoint each time this many rotations of a
        partitioned level complete (``None`` disables rotation checkpoints;
        level-boundary checkpoints still apply).
    at_level_boundaries:
        Write a checkpoint after each level is expanded into the next.
    keep:
        Newest checkpoint versions retained per run (older ones are gc'd on
        each save — a crashed run leaves at most ``keep`` matrices behind).
    stop_event:
        Cooperative cancellation: when set, the trainer saves a final
        checkpoint at the next boundary and raises
        :class:`TrainingInterrupted` (the CLI's SIGTERM/SIGINT path).
    """

    store: "EmbeddingStore"
    fingerprint: str
    tool: str
    metadata: dict[str, object]
    graph_name: str = "graph"
    every_rotations: int | None = None
    at_level_boundaries: bool = True
    keep: int = 2
    stop_event: threading.Event | None = None
    saves: int = field(default=0, init=False)

    @property
    def lineage_tool(self) -> str:
        return self.tool + CHECKPOINT_SUFFIX

    def stop_requested(self) -> bool:
        return self.stop_event is not None and self.stop_event.is_set()

    def due_at_rotation(self, completed_rotations: int) -> bool:
        return (self.every_rotations is not None and self.every_rotations > 0
                and completed_rotations % self.every_rotations == 0)

    def save(self, embedding: np.ndarray, *, level: int,
             rotation: int) -> "StoreEntry":
        """Commit one checkpoint version (atomic, like any store save)."""
        from ..api.result import EmbeddingResult

        result = EmbeddingResult(
            embedding=np.ascontiguousarray(embedding, dtype=np.float32),
            tool=self.lineage_tool,
            graph=self.graph_name,
            seconds=0.0,
            stats={},
            metadata={**self.metadata,
                      "checkpoint": {"tool": self.tool, "level": int(level),
                                     "rotation": int(rotation)}},
        )
        entry = self.store.save(result, fingerprint=self.fingerprint)
        self.saves += 1
        if self.keep > 0:
            self.store.gc(self.keep, fingerprint=self.fingerprint,
                          tool=self.lineage_tool)
        return entry

    def sweep(self) -> int:
        """Drop the whole checkpoint lineage (the run finished durably)."""
        removed = self.store.gc(0, fingerprint=self.fingerprint,
                                tool=self.lineage_tool)
        return len(removed)


def latest_checkpoint(store: "EmbeddingStore", fingerprint: str, tool: str, *,
                      metadata: dict[str, object]) -> ResumeState | None:
    """The newest resumable checkpoint for this exact run configuration.

    ``metadata`` is hashed the same way the final result's will be, pinning
    the lookup to the matching checkpoint lineage; ``None`` when no
    compatible checkpoint exists (a fresh run starts from scratch).
    """
    from ..store.store import config_hash

    pin = config_hash(metadata)
    entry = store.latest(fingerprint, tool + CHECKPOINT_SUFFIX, config_hash=pin)
    if entry is None:
        return None
    cursor = entry.manifest.get("metadata", {}).get("checkpoint")
    if not isinstance(cursor, dict):
        return None
    loaded = store.load_entry(entry)
    return ResumeState(
        level=int(cursor["level"]),
        rotation=int(cursor.get("rotation", 0)),
        embedding=np.ascontiguousarray(loaded.embedding, dtype=np.float32),
        entry=entry,
    )
