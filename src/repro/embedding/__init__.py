"""Embedding core: configs, epoch distribution, trainers, GOSH pipeline, VERSE baseline."""

from .checkpoint import (
    CheckpointMismatchError,
    CheckpointPolicy,
    ResumeState,
    TrainingInterrupted,
    latest_checkpoint,
)
from .config import CONFIGURATIONS, FAST, NO_COARSE, NORMAL, SLOW, GoshConfig, get_config
from .epochs import distribute_epochs, learning_rate_schedule, per_epoch_learning_rate
from .gosh import GoshEmbedder, GoshResult, embed
from .trainer import LevelTrainer, TrainingStats, init_embedding, train_level
from .verse import VerseConfig, VerseResult, verse_embed

__all__ = [
    "CheckpointMismatchError",
    "CheckpointPolicy",
    "ResumeState",
    "TrainingInterrupted",
    "latest_checkpoint",
    "CONFIGURATIONS",
    "FAST",
    "NO_COARSE",
    "NORMAL",
    "SLOW",
    "GoshConfig",
    "get_config",
    "distribute_epochs",
    "learning_rate_schedule",
    "per_epoch_learning_rate",
    "GoshEmbedder",
    "GoshResult",
    "embed",
    "LevelTrainer",
    "TrainingStats",
    "init_embedding",
    "train_level",
    "VerseConfig",
    "VerseResult",
    "verse_embed",
]
