"""Level trainer — the reproduction of ``TrainInGPU`` (Algorithm 3).

One *epoch* processes every vertex of the level's graph as a source exactly
once: it draws one positive sample from the source's neighbourhood and ``ns``
negative samples from the noise distribution, then applies Algorithm 1
updates through the (simulated-GPU) kernel.  Epochs are synchronised — the
kernel for epoch ``j + 1`` is not launched until epoch ``j`` finished — and
the learning rate decays linearly within the level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.samplers import NegativeSampler, PositiveSampler
from ..gpu.backends import KernelBackend, get_backend
from ..gpu.device import SimulatedDevice
from ..gpu.warp import WarpConfig
from .epochs import per_epoch_learning_rate

__all__ = ["init_embedding", "TrainingStats", "LevelTrainer", "train_level"]


def init_embedding(num_vertices: int, dim: int,
                   rng: np.random.Generator | int | None = 0,
                   *, scale: float | None = None,
                   dtype=np.float32) -> np.ndarray:
    """Random initial embedding matrix.

    Uses the word2vec-style uniform initialisation in ``[-0.5/d, 0.5/d)``
    unless an explicit ``scale`` is given.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    s = (0.5 / dim) if scale is None else scale
    return ((rng.random((num_vertices, dim)) - 0.5) * 2.0 * s).astype(dtype)


@dataclass
class TrainingStats:
    """Per-level training record (feeds the speedup-breakdown figure)."""

    level: int = 0
    epochs: int = 0
    updates: int = 0
    seconds: float = 0.0
    final_lr: float = 0.0
    per_epoch_seconds: list[float] = field(default_factory=list)


@dataclass
class LevelTrainer:
    """Trains one coarsening level's embedding matrix in place.

    Parameters
    ----------
    kernel:
        ``"optimized"`` (staged, the GOSH kernel) or ``"naive"`` (per-sample
        global traffic, the Figure 4 reference point).
    backend:
        Kernel backend executing the epochs: a registered name
        (``"vectorized"`` — whole-epoch batched ops, the default — or
        ``"reference"`` — the loop-based oracle) or any object
        implementing :class:`~repro.gpu.backends.KernelBackend`.
    device:
        Optional :class:`SimulatedDevice` used for memory accounting and the
        simulated cost model.  When given, the embedding matrix is notionally
        resident on it (the in-memory path of Algorithm 2, lines 5–7).
    """

    negative_samples: int = 3
    learning_rate: float = 0.035
    lr_decay_floor: float = 1e-4
    kernel: str = "optimized"
    backend: str | KernelBackend = "vectorized"
    small_dim_mode: bool = True
    seed: int = 0
    device: SimulatedDevice | None = None

    def __post_init__(self) -> None:
        if self.kernel not in ("optimized", "naive"):
            raise ValueError(f"unknown kernel {self.kernel!r}")
        self._backend = get_backend(self.backend)

    def train(self, graph: CSRGraph, embedding: np.ndarray, epochs: int, *,
              level: int = 0, base_lr: float | None = None,
              rng: np.random.Generator | None = None) -> TrainingStats:
        """Run ``epochs`` synchronised epochs over ``graph``, updating ``embedding``."""
        if embedding.shape[0] != graph.num_vertices:
            raise ValueError(
                f"embedding has {embedding.shape[0]} rows, graph has {graph.num_vertices} vertices"
            )
        rng = rng or np.random.default_rng(self.seed + level)
        lr0 = self.learning_rate if base_lr is None else base_lr
        pos_sampler = PositiveSampler(graph, strategy="adjacency", seed=rng)
        neg_sampler = NegativeSampler(graph.num_vertices, seed=rng)
        warp_config = WarpConfig(dim=embedding.shape[1], small_dim_mode=self.small_dim_mode)

        stats = TrainingStats(level=level, epochs=epochs)
        sources = np.arange(graph.num_vertices, dtype=np.int64)
        lr = lr0
        for epoch in range(epochs):
            t0 = perf_counter()
            lr = per_epoch_learning_rate(lr0, epoch, epochs, floor=self.lr_decay_floor)
            positives = pos_sampler.sample(sources)
            negatives = neg_sampler.sample((sources.shape[0], self.negative_samples))
            self._backend.train_epoch(embedding, sources, positives, negatives, lr,
                                      kernel=self.kernel, device=self.device,
                                      warp_config=warp_config)
            dt = perf_counter() - t0
            stats.per_epoch_seconds.append(dt)
            stats.seconds += dt
            stats.updates += sources.shape[0] * (1 + self.negative_samples)
        stats.final_lr = lr
        return stats


def train_level(graph: CSRGraph, embedding: np.ndarray, epochs: int, *,
                negative_samples: int = 3, learning_rate: float = 0.035,
                kernel: str = "optimized", backend: str | KernelBackend = "reference",
                small_dim_mode: bool = True,
                device: SimulatedDevice | None = None, seed: int = 0,
                level: int = 0) -> TrainingStats:
    """Functional wrapper around :class:`LevelTrainer` for one-off calls."""
    trainer = LevelTrainer(
        negative_samples=negative_samples,
        learning_rate=learning_rate,
        kernel=kernel,
        backend=backend,
        small_dim_mode=small_dim_mode,
        device=device,
        seed=seed,
    )
    return trainer.train(graph, embedding, epochs, level=level)
