"""Epoch distribution across coarsening levels.

Section 3 ("Using multilevel coarsening arises an interesting problem ..."):
given a total budget of ``e`` epochs and ``D`` levels, GOSH distributes a
fraction ``p`` (the *smoothing ratio*) uniformly and the remaining
``e * (1 - p)`` geometrically, doubling towards the coarser levels:

    e_i = (p * e) / D + e'_i        with   e'_i = e'_{i+1} / 2

i.e. the coarsest level (i = D-1) receives the largest geometric share and
each finer level half of the previous one.  Training a coarse level is cheap
(few vertices) and its embedding seeds every level below it, so weighting the
coarse levels is both faster and surprisingly effective — the trade-off the
smoothing ratio exposes.

The learning-rate schedule within a level is also defined here:
``lr_j = lr * max(1 - j / e_i, 1e-4)`` for epoch j of level i.
"""

from __future__ import annotations

import numpy as np

__all__ = ["distribute_epochs", "learning_rate_schedule", "per_epoch_learning_rate"]


def distribute_epochs(total_epochs: int, num_levels: int, smoothing_ratio: float) -> list[int]:
    """Split ``total_epochs`` across ``num_levels`` levels (index 0 = original graph).

    Returns a list ``e[0..D-1]`` of per-level epoch counts that sums to
    ``total_epochs`` (up to integer rounding, corrected so the sum is exact
    and every level gets at least one epoch whenever the budget allows).
    """
    if num_levels <= 0:
        raise ValueError("num_levels must be positive")
    if total_epochs <= 0:
        raise ValueError("total_epochs must be positive")
    if not (0.0 <= smoothing_ratio <= 1.0):
        raise ValueError("smoothing_ratio must be in [0, 1]")
    if num_levels == 1:
        return [total_epochs]

    uniform_budget = smoothing_ratio * total_epochs
    geometric_budget = total_epochs - uniform_budget

    uniform_share = uniform_budget / num_levels
    # Geometric shares: level D-1 gets weight 2^{D-1}, level 0 gets weight 1,
    # normalised to the geometric budget (each finer level = half the coarser).
    weights = np.power(2.0, np.arange(num_levels, dtype=np.float64))
    weights /= weights.sum()
    raw = uniform_share + geometric_budget * weights

    # Round to integers while preserving the exact total (largest-remainder).
    floor = np.floor(raw).astype(np.int64)
    remainder = int(total_epochs - floor.sum())
    if remainder > 0:
        order = np.argsort(-(raw - floor), kind="stable")
        floor[order[:remainder]] += 1
    elif remainder < 0:
        order = np.argsort(raw - floor, kind="stable")
        for idx in order:
            if remainder == 0:
                break
            if floor[idx] > 0:
                floor[idx] -= 1
                remainder += 1

    # Guarantee at least one epoch per level when the budget allows it.
    if total_epochs >= num_levels:
        for i in range(num_levels):
            if floor[i] == 0:
                donor = int(np.argmax(floor))
                if floor[donor] > 1:
                    floor[donor] -= 1
                    floor[i] += 1
    return [int(x) for x in floor]


def per_epoch_learning_rate(base_lr: float, epoch: int, level_epochs: int,
                            *, floor: float = 1e-4) -> float:
    """lr for epoch ``epoch`` (0-based) of a level trained for ``level_epochs`` epochs."""
    if level_epochs <= 0:
        return base_lr * floor
    return base_lr * max(1.0 - epoch / level_epochs, floor)


def learning_rate_schedule(base_lr: float, level_epochs: int, *, floor: float = 1e-4) -> np.ndarray:
    """Vector of per-epoch learning rates for one level."""
    if level_epochs <= 0:
        return np.zeros(0, dtype=np.float64)
    epochs = np.arange(level_epochs, dtype=np.float64)
    return base_lr * np.maximum(1.0 - epochs / level_epochs, floor)
