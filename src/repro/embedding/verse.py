"""VERSE baseline — CPU, single-level noise-contrastive embedding.

VERSE (Tsitsulin et al., 2018) is the embedding method GOSH builds on: the
same Algorithm 1 update, but trained on the original graph only (no
coarsening) on the CPU.  The paper uses it both as the quality reference and
as the speed baseline for every speedup number in Tables 6 and 7.

Two execution modes are provided:

* ``mode="loop"`` — a faithful per-vertex Python loop in the spirit of the
  original single-thread C++ implementation.  Slow, used only on tiny graphs
  and as the CPU reference point of the Figure 4 breakdown.
* ``mode="vectorized"`` — the same update schedule expressed as NumPy batch
  operations, standing in for the 16-thread OpenMP build the paper measures
  (this is the fair "CPU parallel" baseline on this substrate).

Both support the adjacency and PPR similarity measures (the paper runs VERSE
with PPR, alpha = 0.85).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from ..graph.csr import CSRGraph
from ..graph.samplers import NegativeSampler, PositiveSampler
from ..gpu.kernels import sigmoid, train_epoch_optimized
from .trainer import init_embedding

__all__ = ["VerseConfig", "VerseResult", "verse_embed"]


@dataclass(frozen=True)
class VerseConfig:
    """Hyper-parameters for the VERSE baseline (paper Section 4.3 settings)."""

    dim: int = 128
    epochs: int = 600
    learning_rate: float = 0.0025
    negative_samples: int = 3
    similarity: str = "ppr"      # "ppr" (paper default, alpha=0.85) or "adjacency"
    ppr_alpha: float = 0.85
    mode: str = "vectorized"     # "vectorized" or "loop"
    seed: int = 0


@dataclass
class VerseResult:
    embedding: np.ndarray
    seconds: float
    epochs: int


def _ppr_walk_length(alpha: float, rng: np.random.Generator) -> int:
    """Geometric walk length with continuation probability ``alpha``."""
    return 1 + int(rng.geometric(1.0 - alpha))


def verse_embed(graph: CSRGraph, config: VerseConfig | None = None) -> VerseResult:
    """Train a VERSE embedding of ``graph``."""
    cfg = config or VerseConfig()
    rng = np.random.default_rng(cfg.seed)
    embedding = init_embedding(graph.num_vertices, cfg.dim, rng)
    pos_sampler = PositiveSampler(
        graph,
        strategy="adjacency" if cfg.similarity == "adjacency" else "ppr",
        walk_length=max(1, int(round(1.0 / max(1e-6, 1.0 - cfg.ppr_alpha)))) if cfg.similarity == "ppr" else 1,
        seed=rng,
    )
    neg_sampler = NegativeSampler(graph.num_vertices, seed=rng)
    sources = np.arange(graph.num_vertices, dtype=np.int64)

    t0 = perf_counter()
    if cfg.mode == "vectorized":
        for epoch in range(cfg.epochs):
            lr = cfg.learning_rate * max(1.0 - epoch / cfg.epochs, 1e-4)
            positives = pos_sampler.sample(sources)
            negatives = neg_sampler.sample((sources.shape[0], cfg.negative_samples))
            train_epoch_optimized(embedding, sources, positives, negatives, lr)
    elif cfg.mode == "loop":
        _loop_train(graph, embedding, cfg, pos_sampler, neg_sampler, rng)
    else:
        raise ValueError(f"unknown mode {cfg.mode!r}")
    return VerseResult(embedding=embedding, seconds=perf_counter() - t0, epochs=cfg.epochs)


def _loop_train(graph: CSRGraph, embedding: np.ndarray, cfg: VerseConfig,
                pos_sampler: PositiveSampler, neg_sampler: NegativeSampler,
                rng: np.random.Generator) -> None:
    """Per-vertex scalar updates — the single-thread CPU reference path."""
    n = graph.num_vertices
    for epoch in range(cfg.epochs):
        lr = cfg.learning_rate * max(1.0 - epoch / cfg.epochs, 1e-4)
        order = rng.permutation(n)
        for v in order:
            v = int(v)
            pos = pos_sampler.sample(np.array([v]))[0]
            if pos >= 0:
                _scalar_update(embedding, v, int(pos), 1.0, lr)
            for _ in range(cfg.negative_samples):
                neg = int(neg_sampler.sample(1)[0])
                _scalar_update(embedding, v, neg, 0.0, lr)


def _scalar_update(embedding: np.ndarray, v: int, s: int, b: float, lr: float) -> None:
    score = (b - float(sigmoid(float(np.dot(embedding[v], embedding[s]))))) * lr
    embedding[v] = embedding[v] + embedding[s] * score
    embedding[s] = embedding[s] + embedding[v] * score
