"""GOSH — the end-to-end multilevel embedding pipeline (Algorithm 2).

Given a graph ``G_0`` and a :class:`~repro.embedding.config.GoshConfig`, the
pipeline:

1. coarsens ``G_0`` into a hierarchy ``G_0 … G_{D-1}`` with
   MultiEdgeCollapse (parallel by default, sequential or disabled via the
   config — the latter reproduces the Gosh-NoCoarse rows of Table 6),
2. distributes the epoch budget over the levels with the smoothing ratio,
3. randomly initialises ``M_{D-1}`` and trains level by level from coarsest
   to finest, expanding the embedding through the coarsening mapping between
   levels,
4. per level, trains in-memory when ``G_i`` and ``M_i`` fit on the simulated
   device, and falls back to the partitioned large-graph engine otherwise
   (lines 5–10 of Algorithm 2).

The returned :class:`GoshResult` carries the final embedding plus per-level
statistics used by the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..coarsening.hierarchy import CoarseningHierarchy
from ..coarsening.multi_edge_collapse import multi_edge_collapse
from ..coarsening.parallel_collapse import parallel_multi_edge_collapse
from ..faults import FAULTS
from ..gpu.device import SimulatedDevice, embedding_fits_on_device
from ..large.scheduler import LargeGraphConfig, LargeGraphStats, LargeGraphTrainer
from ..graph.csr import CSRGraph
from ..obs import trace
from .checkpoint import CheckpointMismatchError, CheckpointPolicy, ResumeState, TrainingInterrupted
from .config import GoshConfig, NORMAL
from .epochs import distribute_epochs
from .trainer import LevelTrainer, TrainingStats, init_embedding

__all__ = ["GoshResult", "GoshEmbedder", "embed"]


@dataclass
class GoshResult:
    """Output of a GOSH run."""

    embedding: np.ndarray
    hierarchy: CoarseningHierarchy
    config: GoshConfig
    coarsening_seconds: float = 0.0
    training_seconds: float = 0.0
    total_seconds: float = 0.0
    epochs_per_level: list[int] = field(default_factory=list)
    level_stats: list[TrainingStats] = field(default_factory=list)
    large_graph_stats: list[LargeGraphStats] = field(default_factory=list)
    checkpoints_saved: int = 0
    resumed_from: dict | None = None  # {"level", "rotation", "version"}

    @property
    def num_levels(self) -> int:
        return self.hierarchy.num_levels

    def summary(self) -> dict[str, object]:
        return {
            "config": self.config.name,
            "levels": self.num_levels,
            "level_sizes": self.hierarchy.level_sizes(),
            "epochs_per_level": self.epochs_per_level,
            "coarsening_s": round(self.coarsening_seconds, 4),
            "training_s": round(self.training_seconds, 4),
            "total_s": round(self.total_seconds, 4),
        }


class GoshEmbedder:
    """Drives Algorithm 2 for a given configuration and simulated device."""

    def __init__(self, config: GoshConfig | None = None,
                 device: SimulatedDevice | None = None):
        self.config = config or NORMAL
        self.config.validate()
        self.device = device or SimulatedDevice()

    # ------------------------------------------------------------------ #
    def coarsen(self, graph: CSRGraph) -> tuple[CoarseningHierarchy, float]:
        """Stage 1 of Algorithm 2: build the coarsening hierarchy."""
        cfg = self.config
        t0 = perf_counter()
        if not cfg.use_coarsening:
            hierarchy = CoarseningHierarchy.trivial(graph)
        else:
            coarsener = (parallel_multi_edge_collapse if cfg.use_parallel_coarsening
                         else multi_edge_collapse)
            result = coarsener(graph, threshold=cfg.coarsening_threshold,
                               max_levels=cfg.max_coarsening_levels)
            hierarchy = CoarseningHierarchy.from_result(result)
        seconds = perf_counter() - t0
        if trace.enabled:
            trace.add_complete("coarsen", seconds,
                               vertices=graph.num_vertices,
                               levels=hierarchy.num_levels)
        return hierarchy, seconds

    # ------------------------------------------------------------------ #
    def embed(self, graph: CSRGraph, *, epochs: int | None = None,
              hierarchy: CoarseningHierarchy | None = None,
              checkpoint: CheckpointPolicy | None = None,
              resume: ResumeState | None = None) -> GoshResult:
        """Run the full pipeline and return the level-0 embedding.

        A pre-built ``hierarchy`` (e.g. from the :mod:`repro.api` hierarchy
        cache) skips stage 1 entirely; ``coarsening_seconds`` is then 0.

        ``checkpoint`` snapshots the matrix + cursor into the store at level
        boundaries and (optionally) every N rotations of a partitioned level;
        ``resume`` restarts from such a snapshot.  Because every random draw
        is keyed by content (seed, stream, rotation, pair) — never by wall
        clock or call order — a resumed run is bit-identical to an
        uninterrupted one.  Cursor semantics: ``(L, 0)`` is the matrix as
        expanded *into* level ``L`` (untrained); ``(L, r > 0)`` means ``r``
        rotations of partitioned level ``L`` are complete.
        """
        cfg = self.config
        total_start = perf_counter()
        if hierarchy is not None:
            coarsening_seconds = 0.0
        else:
            # coarsen() records its own trace span, covering this path and
            # the tool wrapper's cache-aware pre-coarsening alike.
            hierarchy, coarsening_seconds = self.coarsen(graph)

        budget = epochs if epochs is not None else cfg.epochs
        epochs_per_level = distribute_epochs(budget, hierarchy.num_levels, cfg.smoothing_ratio)

        rng = np.random.default_rng(cfg.seed)
        result = GoshResult(
            embedding=np.zeros((0, cfg.dim), dtype=np.float32),
            hierarchy=hierarchy,
            config=cfg,
            coarsening_seconds=coarsening_seconds,
            epochs_per_level=epochs_per_level,
        )

        trainer = LevelTrainer(
            negative_samples=cfg.negative_samples,
            learning_rate=cfg.learning_rate,
            lr_decay_floor=cfg.learning_rate_decay_floor,
            kernel="optimized",
            backend=cfg.kernel_backend,
            small_dim_mode=cfg.small_dim_mode,
            seed=cfg.seed,
            device=self.device,
        )
        large_trainer = LargeGraphTrainer(
            self.device,
            LargeGraphConfig(
                positive_batch_per_vertex=cfg.positive_batch_per_vertex,
                resident_submatrices=cfg.resident_submatrices,
                resident_sample_pools=cfg.resident_sample_pools,
                negative_samples=cfg.negative_samples,
                learning_rate=cfg.learning_rate,
                lr_decay_floor=cfg.learning_rate_decay_floor,
                small_dim_mode=cfg.small_dim_mode,
                kernel_backend=cfg.kernel_backend,
                sampler_backend=cfg.sampler_backend,
                execution_mode=cfg.execution_mode,
                seed=cfg.seed,
            ),
        )

        training_start = perf_counter()
        # Line 2: random initialisation of the coarsest level's matrix.
        coarsest = hierarchy.coarsest()
        embedding = init_embedding(coarsest.num_vertices, cfg.dim, rng)

        if resume is not None:
            result.resumed_from = {"level": resume.level, "rotation": resume.rotation,
                                   "version": resume.entry.version}

        # Lines 3–11: train from the coarsest level down to level 0.
        for level in hierarchy.training_order():
            start_rotation = 0
            if resume is not None:
                if level > resume.level:
                    # Already trained and expanded through this level in the
                    # interrupted run; the checkpoint matrix carries it.
                    continue
                if level == resume.level:
                    expected = hierarchy.level(level).num_vertices
                    rows, rdim = resume.embedding.shape
                    if rows != expected or rdim != cfg.dim:
                        raise CheckpointMismatchError(
                            f"checkpoint {resume.describe()} has shape "
                            f"({rows}, {rdim}); level {level} needs "
                            f"({expected}, {cfg.dim})")
                    embedding = np.array(resume.embedding, dtype=np.float32, copy=True)
                    start_rotation = resume.rotation
            level_graph = hierarchy.level(level)
            level_epochs = epochs_per_level[level]
            if level_epochs > 0:
                with trace.span("level", level=level,
                                vertices=level_graph.num_vertices,
                                epochs=level_epochs):
                    if embedding_fits_on_device(level_graph.num_vertices, cfg.dim,
                                                level_graph.nbytes(), self.device):
                        if start_rotation > 0:
                            raise CheckpointMismatchError(
                                f"checkpoint cursor (level={level}, rotation="
                                f"{start_rotation}) points inside a partitioned "
                                "level, but the level now fits in device memory "
                                "— was the device or dim changed?")
                        stats = trainer.train(level_graph, embedding, level_epochs,
                                              level=level, base_lr=cfg.learning_rate)
                        result.level_stats.append(stats)
                    else:
                        on_rotation = None
                        if checkpoint is not None:
                            on_rotation = self._make_rotation_hook(
                                checkpoint, result, level, embedding)
                        lstats = large_trainer.train(level_graph, embedding, level_epochs,
                                                     base_lr=cfg.learning_rate, level=level,
                                                     start_rotation=start_rotation,
                                                     on_rotation=on_rotation)
                        result.large_graph_stats.append(lstats)
            if level > 0:
                # Line 11: project M_i onto M_{i-1} through map_{i-1}.
                embedding = hierarchy.expand(level, embedding)
                if checkpoint is not None and (checkpoint.at_level_boundaries
                                               or checkpoint.stop_requested()):
                    with trace.span("checkpoint", level=level - 1, rotation=0):
                        entry = checkpoint.save(embedding, level=level - 1,
                                                rotation=0)
                    result.checkpoints_saved += 1
                    if checkpoint.stop_requested():
                        raise TrainingInterrupted(entry, level=level - 1, rotation=0)
            FAULTS.crossing("level-boundary", level=level)

        result.embedding = embedding
        result.training_seconds = perf_counter() - training_start
        result.total_seconds = perf_counter() - total_start
        return result

    @staticmethod
    def _make_rotation_hook(checkpoint: CheckpointPolicy, result: GoshResult,
                            level: int, matrix: np.ndarray):
        """Per-level rotation callback: cadence checkpoints + graceful stop.

        The large trainer calls this with the host matrix already synced
        (see ``GPUState.sync_to_host``), so ``matrix`` is snapshot-safe.
        """
        def on_rotation(completed: int) -> None:
            if checkpoint.stop_requested():
                with trace.span("checkpoint", level=level, rotation=completed):
                    entry = checkpoint.save(matrix, level=level, rotation=completed)
                result.checkpoints_saved += 1
                raise TrainingInterrupted(entry, level=level, rotation=completed)
            if checkpoint.due_at_rotation(completed):
                with trace.span("checkpoint", level=level, rotation=completed):
                    checkpoint.save(matrix, level=level, rotation=completed)
                result.checkpoints_saved += 1
        return on_rotation


def embed(graph: CSRGraph, config: GoshConfig | None = None, *,
          device: SimulatedDevice | None = None, epochs: int | None = None,
          checkpoint: CheckpointPolicy | None = None,
          resume: ResumeState | None = None) -> GoshResult:
    """One-call convenience API: ``repro.embed(graph, config)``."""
    return GoshEmbedder(config=config, device=device).embed(
        graph, epochs=epochs, checkpoint=checkpoint, resume=resume)
